"""Integration tests that walk through the paper's own examples end to end.

Covered here:

* Example 1.1 / Figure 1 — the emergency-services PDMS, including the ad hoc
  addition of the Earthquake Command Center and transitive reuse of all
  existing sources.
* Example 2.2 — GAV-style (SkilledPerson) and LAV-style (Lakeview beds)
  mappings.
* Example 2.3 — First Hospital's storage descriptions.
* Section 3 — the replication equality ``ECC:Vehicle = 9DC:Vehicle``.
* Example 4.1 / Figure 2 — the reformulation rule-goal tree.
"""

import pytest

from repro.datalog import parse_query
from repro.pdms import answer_query, certain_answers, reformulate
from repro.workload import (
    add_earthquake_command_center,
    build_emergency_services,
    example_queries,
    sample_instance,
)


class TestEmergencyServicesScenario:
    def test_every_example_query_matches_the_oracle(self, emergency_pdms, emergency_data):
        for name, query in example_queries().items():
            answers = answer_query(emergency_pdms, query, emergency_data)
            oracle = certain_answers(emergency_pdms, query, emergency_data)
            assert answers == oracle, f"query {name!r} disagrees with the oracle"

    def test_skilled_doctors_found_through_two_levels(self, emergency_pdms, emergency_data):
        query = parse_query('Q(pid) :- 9DC:SkilledPerson(pid, "Doctor")')
        answers = answer_query(emergency_pdms, query, emergency_data)
        # The three doctors stored at First Hospital (Example 2.3's doc relation).
        assert answers == {("d1",), ("d2",), ("d3",)}

    def test_fire_emts_found_through_fs_chain(self, emergency_pdms, emergency_data):
        query = parse_query('Q(pid) :- 9DC:SkilledPerson(pid, "EMT")')
        answers = answer_query(emergency_pdms, query, emergency_data)
        # f7 is scheduled on engine 31, which did a first response, and has
        # the "medical" skill — the three-way join of the third GAV rule.
        assert ("f7",) in answers

    def test_lakeview_critical_beds_reachable_from_9dc(self, emergency_pdms, emergency_data):
        query = parse_query('Q(bid) :- 9DC:Bed(bid, loc, "critical")')
        answers = answer_query(emergency_pdms, query, emergency_data)
        assert {("bed20",), ("bed21",)} <= answers

    def test_transitivity_after_ecc_joins(self, emergency_data):
        """Queries over the ECC use sources mapped only to the 9DC (Example 1.1)."""
        without_ecc = build_emergency_services(include_ecc=False)
        with pytest.raises(Exception):
            # The ECC peer does not even exist yet.
            without_ecc.peer("ECC")
        add_earthquake_command_center(without_ecc)
        query = parse_query("Q(vid, type) :- ECC:Vehicle(vid, type, c, g, d)")
        answers = answer_query(without_ecc, query, emergency_data)
        assert ("amb1", "ambulance") in answers
        assert ("eng12", "engine") in answers

    def test_replication_equality_gives_same_vehicles_on_both_peers(
        self, emergency_pdms, emergency_data
    ):
        ecc_query = parse_query("Q(vid) :- ECC:Vehicle(vid, t, c, g, d)")
        ninedc_query = parse_query("Q(vid) :- 9DC:Vehicle(vid, t, c, g, d)")
        assert answer_query(emergency_pdms, ecc_query, emergency_data) == answer_query(
            emergency_pdms, ninedc_query, emergency_data
        )

    def test_doctor_hours_join_across_mappings(self, emergency_pdms, emergency_data):
        query = parse_query(
            'Q(pid, s, e) :- 9DC:SkilledPerson(pid, "Doctor"), 9DC:Hours(pid, s, e)')
        answers = answer_query(emergency_pdms, query, emergency_data)
        assert ("d1", 8, 16) in answers

    def test_reformulations_use_only_stored_relations(self, emergency_pdms):
        stored = emergency_pdms.stored_relation_names()
        for query in example_queries().values():
            result = reformulate(emergency_pdms, query)
            for rewriting in result.all_rewritings():
                assert {a.predicate for a in rewriting.relational_body()} <= stored


class TestFigure2EndToEnd:
    def test_answers_equal_certain_answers(self, figure2_pdms, figure2_query):
        data = {
            "S1": [("alice", "e1", 17), ("bob", "e1", 18), ("carol", "e2", 17)],
            "S2": [("alice", "bob")],
        }
        answers = answer_query(figure2_pdms, figure2_query, data)
        oracle = certain_answers(figure2_pdms, figure2_query, data)
        assert answers == oracle
        assert ("alice", "bob") in answers and ("bob", "alice") in answers

    def test_no_skill_overlap_means_no_answer(self, figure2_pdms, figure2_query):
        data = {
            "S1": [("alice", "e1", 17), ("bob", "e1", 18)],
            "S2": [],
        }
        assert answer_query(figure2_pdms, figure2_query, data) == set()
