"""A PDMS restricted to two tiers must behave like classic data integration.

The paper: "A data integration system can be viewed as a special case of a
PDMS."  These tests build the same mediation scenario twice — once with the
classic GAV/LAV mediators of :mod:`repro.integration`, once as a two-peer
PDMS — and check that query answers coincide.
"""

import pytest

from repro.datalog import evaluate_union, parse_atom, parse_query
from repro.integration import GAVMediator, LAVMediator, View
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    StorageDescription,
    answer_query,
    lav_style,
)


SOURCE_DATA = {
    "src_doctor": [("d1", "FH", "ICU"), ("d2", "LH", "ER")],
    "src_emt": [("e1", "FH"), ("e2", "LH")],
}


def _gav_pdms() -> PDMS:
    pdms = PDMS("gav-as-pdms")
    mediator = pdms.add_peer("M")
    mediator.add_relation("Person", ["pid", "role"])
    source = pdms.add_peer("S")
    source.add_relation("Doctor", ["pid", "hosp", "loc"])
    source.add_relation("EMT", ["pid", "hosp"])
    pdms.add_peer_mapping(DefinitionalMapping(
        parse_query('M:Person(p, "Doctor") :- S:Doctor(p, h, l)')))
    pdms.add_peer_mapping(DefinitionalMapping(
        parse_query('M:Person(p, "EMT") :- S:EMT(p, h)')))
    pdms.add_storage_description(StorageDescription(
        "S", "src_doctor", parse_query("V(p, h, l) :- S:Doctor(p, h, l)")))
    pdms.add_storage_description(StorageDescription(
        "S", "src_emt", parse_query("V(p, h) :- S:EMT(p, h)")))
    return pdms


class TestGAVEquivalence:
    def test_same_answers_as_classic_gav_mediator(self):
        # Classic two-tier GAV: mediated Person defined over the source relations,
        # where the source relations *are* the stored data.
        mediator = GAVMediator([
            View(parse_query('Person(p, "Doctor") :- src_doctor(p, h, l)')),
            View(parse_query('Person(p, "EMT") :- src_emt(p, h)')),
        ])
        query = parse_query('Q(p, r) :- Person(p, r)')
        classic = evaluate_union(mediator.unfold(query), SOURCE_DATA)

        pdms_answers = answer_query(
            _gav_pdms(), parse_query("Q(p, r) :- M:Person(p, r)"), SOURCE_DATA)
        assert classic == pdms_answers == {
            ("d1", "Doctor"), ("d2", "Doctor"), ("e1", "EMT"), ("e2", "EMT")}

    def test_selection_query(self):
        pdms_answers = answer_query(
            _gav_pdms(), parse_query('Q(p) :- M:Person(p, "EMT")'), SOURCE_DATA)
        assert pdms_answers == {("e1",), ("e2",)}


def _lav_pdms() -> PDMS:
    pdms = PDMS("lav-as-pdms")
    mediator = pdms.add_peer("M")
    mediator.add_relation("CritBed", ["bed", "hosp", "room"])
    mediator.add_relation("Patient", ["pid", "bed", "status"])
    source = pdms.add_peer("LH")
    source.add_relation("CritBed", ["bed", "room", "pid", "status"])
    pdms.add_peer_mapping(lav_style(
        parse_atom("LH:CritBed(bed, room, pid, status)"),
        parse_query("R(bed, room, pid, status) :- M:CritBed(bed, h, room), "
                    "M:Patient(pid, bed, status)")))
    pdms.add_storage_description(StorageDescription(
        "LH", "lh_crit", parse_query("V(b, r, p, s) :- LH:CritBed(b, r, p, s)")))
    return pdms


LAV_DATA = {"lh_crit": [("bed20", "icu", "p9", "critical"), ("bed21", "icu", "p10", "stable")]}


class TestLAVEquivalence:
    def test_same_answers_as_classic_lav_mediator(self):
        # Classic two-tier LAV: the stored relation described as a view over
        # the mediated schema (Example 2.2 of the paper).
        mediator = LAVMediator([
            View(parse_query("lh_crit(bed, room, pid, status) :- CritBed(bed, h, room), "
                             "Patient(pid, bed, status)")),
        ])
        query = parse_query("Q(pid, bed) :- CritBed(bed, h, room), Patient(pid, bed, status)")
        classic = mediator.answer(query, LAV_DATA)
        assert classic == mediator.certain_answers(query, LAV_DATA)

        pdms_answers = answer_query(
            _lav_pdms(),
            parse_query("Q(pid, bed) :- M:CritBed(bed, h, room), M:Patient(pid, bed, status)"),
            LAV_DATA)
        assert pdms_answers == classic == {("p9", "bed20"), ("p10", "bed21")}

    def test_query_on_projected_attribute_has_no_certain_answer(self):
        # The hospital attribute of M:CritBed is projected away by the view,
        # so no binding for it is certain.
        query = parse_query("Q(h) :- M:CritBed(bed, h, room)")
        assert answer_query(_lav_pdms(), query, LAV_DATA) == set()
