"""Golden regression tests for the emergency-services scenario.

These pin the externally observable behaviour of the reformulation
algorithm on the paper's Figure-1 scenario — rewriting counts, rule-goal
tree sizes, the first rewriting produced by the streaming enumeration,
and the answer sets — under all three execution engines and every
:class:`ReformulationConfig` optimization toggle, so the Section 4.3
ablations can't silently regress.

The pinned values were produced by the current implementation and
verified stable across ``PYTHONHASHSEED`` values; a diff here means the
algorithm's output changed, which must be deliberate.
"""

import pytest

from repro.pdms import (
    ExpansionOrder,
    ReformulationConfig,
    evaluate_reformulation,
    reformulate,
)
from repro.workload import build_emergency_services, example_queries, sample_instance

#: query name -> (rewriting count, total tree nodes, first rewriting str).
GOLDEN_SHAPE = {
    "critical_beds": (0, 5, None),
    "doctor_hours": (12, 34, "Q(pid, s, e) :- doc(pid, _mv30, l_2), sched(pid, s, e)"),
    "ecc_medical_responders": (5, 33, "Q(pid) :- fh_emts(pid, vid_11)"),
    "ecc_vehicles": (3, 23, 'Q(vid, "ambulance", gps) :- fh_ambulances(vid, gps, dest)'),
    "skilled_doctors": (4, 17, "Q(pid) :- doc(pid, _mv19, l_2)"),
    "skilled_people": (9, 45, 'Q(pid, "Doctor") :- doc(pid, _mv19, l_2)'),
}

#: query name -> the full answer set over ``sample_instance()``.
GOLDEN_ANSWERS = {
    "critical_beds": set(),
    "doctor_hours": {("d1", 8, 16), ("d2", 16, 24), ("d3", 8, 12)},
    "ecc_medical_responders": {("e1",), ("e2",), ("f7",)},
    "ecc_vehicles": {
        ("amb1", "ambulance", "45.52,-122.68"),
        ("amb2", "ambulance", "45.60,-122.60"),
        ("eng12", "engine", "45.51,-122.66"),
        ("eng13", "engine", "45.53,-122.70"),
        ("eng31", "engine", "45.63,-122.67"),
    },
    "skilled_doctors": {("d1",), ("d2",), ("d3",)},
    "skilled_people": {
        ("d1", "Doctor"), ("d2", "Doctor"), ("d3", "Doctor"),
        ("e1", "EMT"), ("e2", "EMT"), ("f7", "EMT"),
    },
}

#: One config per flipped optimization toggle (Section 4.3 ablations).
TOGGLED_CONFIGS = {
    "default": ReformulationConfig(),
    "no_dead_end_pruning": ReformulationConfig(prune_dead_ends=False),
    "no_unsat_pruning": ReformulationConfig(prune_unsatisfiable=False),
    "no_mcd_memoization": ReformulationConfig(memoize_mcds=False),
    "redundancy_removal": ReformulationConfig(remove_redundant_rewritings=True),
    "minimized_rewritings": ReformulationConfig(minimize_rewritings=True),
    "depth_first": ReformulationConfig(expansion_order=ExpansionOrder.DEPTH_FIRST),
    "fewest_options_first": ReformulationConfig(
        expansion_order=ExpansionOrder.FEWEST_OPTIONS_FIRST
    ),
    "no_optimizations": ReformulationConfig().without_optimizations(),
}


@pytest.fixture(scope="module")
def scenario():
    return build_emergency_services(), sample_instance(), example_queries()


class TestGoldenShape:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SHAPE))
    def test_rewriting_count_and_tree_size(self, scenario, name):
        pdms, _, queries = scenario
        result = reformulate(pdms, queries[name])
        count, nodes, _ = GOLDEN_SHAPE[name]
        assert len(result.all_rewritings()) == count
        assert result.statistics.total_nodes == nodes

    @pytest.mark.parametrize("name", sorted(GOLDEN_SHAPE))
    def test_first_rewriting_is_stable(self, scenario, name):
        """The streaming enumeration's first rewriting is pinned — it is
        what a ``limit=1`` service call pays for (Figure 4's x-axis)."""
        pdms, _, queries = scenario
        result = reformulate(pdms, queries[name])
        first = result.first_rewritings(1)
        _, _, expected = GOLDEN_SHAPE[name]
        if expected is None:
            assert first == []
        else:
            assert str(first[0]) == expected


class TestGoldenAnswers:
    @pytest.mark.parametrize("engine", ["backtracking", "plan", "shared", "columnar"])
    @pytest.mark.parametrize("name", sorted(GOLDEN_ANSWERS))
    def test_answers_under_all_engines(self, scenario, name, engine):
        pdms, data, queries = scenario
        result = reformulate(pdms, queries[name])
        assert evaluate_reformulation(result, data, engine=engine) == GOLDEN_ANSWERS[name]

    @pytest.mark.parametrize("config_name", sorted(TOGGLED_CONFIGS))
    @pytest.mark.parametrize("name", sorted(GOLDEN_ANSWERS))
    def test_answers_invariant_under_optimization_toggles(
        self, scenario, name, config_name
    ):
        """Section 4.3 optimizations change cost, never answers."""
        pdms, data, queries = scenario
        result = reformulate(pdms, queries[name], config=TOGGLED_CONFIGS[config_name])
        assert evaluate_reformulation(result, data) == GOLDEN_ANSWERS[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN_ANSWERS))
    def test_rewriting_count_invariant_under_cost_only_toggles(self, scenario, name):
        """Toggles that only change *how* the tree is built (pruning
        order, memoization) must not change how many rewritings come out;
        dead-end pruning removes only rewriting-free subtrees."""
        pdms, _, queries = scenario
        expected = GOLDEN_SHAPE[name][0]
        for config in (
            ReformulationConfig(prune_dead_ends=False),
            ReformulationConfig(memoize_mcds=False),
            ReformulationConfig(expansion_order=ExpansionOrder.DEPTH_FIRST),
        ):
            result = reformulate(pdms, queries[name], config=config)
            assert len(result.all_rewritings()) == expected
