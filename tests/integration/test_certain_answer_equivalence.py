"""Cross-validation of the reformulation algorithm against the chase oracle.

The paper claims the algorithm is *sound* (only certain answers) for every
PDMS, and *complete* (all certain answers) under the tractable conditions of
Theorems 3.2/3.3.  These tests generate many small random PDMSs plus random
stored data and check both properties against the independent chase-based
oracle of :mod:`repro.pdms.semantics`.
"""

import pytest

from repro.pdms import answer_query, certain_answers, reformulate
from repro.workload import GeneratorParameters, generate_workload, populate_workload


def _roundtrip(num_peers, diameter, definitional_ratio, seed):
    workload = generate_workload(GeneratorParameters(
        num_peers=num_peers,
        diameter=diameter,
        definitional_ratio=definitional_ratio,
        seed=seed,
    ))
    data = populate_workload(workload, rows_per_relation=6, domain_size=4)
    answers = answer_query(workload.pdms, workload.query, data)
    oracle = certain_answers(workload.pdms, workload.query, data)
    return workload, answers, oracle


class TestSoundnessAndCompleteness:
    @pytest.mark.parametrize("seed", range(12))
    def test_inclusion_only_workloads(self, seed):
        """Acyclic inclusion-only PDMSs: Theorem 3.1(2), algorithm complete."""
        _, answers, oracle = _roundtrip(8, 2, 0.0, seed)
        assert answers == oracle

    @pytest.mark.parametrize("seed", range(12))
    def test_mixed_workloads_diameter_three(self, seed):
        """Mixed definitional + inclusion mappings across three strata."""
        _, answers, oracle = _roundtrip(9, 3, 0.3, 100 + seed)
        assert answers == oracle

    @pytest.mark.parametrize("seed", range(8))
    def test_definitional_heavy_workloads(self, seed):
        _, answers, oracle = _roundtrip(8, 2, 0.8, 200 + seed)
        assert answers == oracle

    @pytest.mark.parametrize("seed", range(6))
    def test_deeper_chains(self, seed):
        _, answers, oracle = _roundtrip(12, 4, 0.2, 300 + seed)
        assert answers == oracle

    def test_soundness_on_scenario_even_outside_tractable_fragment(
        self, emergency_pdms, emergency_data
    ):
        """The emergency scenario violates the Theorem 3.2 head restriction
        (ECC definitions reuse 9DC relations that also appear in equalities),
        so completeness is not guaranteed — but soundness always is."""
        from repro.workload import example_queries

        for query in example_queries().values():
            answers = answer_query(emergency_pdms, query, emergency_data)
            oracle = certain_answers(emergency_pdms, query, emergency_data)
            assert answers <= oracle
