"""Unit tests for repro.integration.views and repro.integration.gav."""

import pytest

from repro.datalog import evaluate_union, parse_query
from repro.errors import MappingError, ReformulationError
from repro.integration import GAVMediator, View, ViewKind, ViewSet


class TestViewSet:
    def test_index_by_name_and_predicate(self):
        first = View(parse_query("V1(x) :- R(x, y)"))
        second = View(parse_query("V2(x) :- S(x), R(x, z)"))
        views = ViewSet([first, second])
        assert views.by_name("V1") is first
        assert set(v.name for v in views.with_predicate("R")) == {"V1", "V2"}
        assert views.with_predicate("missing") == ()
        assert "V1" in views and "V3" not in views
        assert len(views) == 2

    def test_duplicate_names_rejected(self):
        views = ViewSet([View(parse_query("V(x) :- R(x)"))])
        with pytest.raises(MappingError):
            views.add(View(parse_query("V(x) :- S(x)")))

    def test_unknown_name_raises(self):
        with pytest.raises(MappingError):
            ViewSet().by_name("V")

    def test_view_kind_rendering(self):
        exact = View(parse_query("V(x) :- R(x)"), ViewKind.EXACT)
        contained = View(parse_query("V(x) :- R(x)"))
        assert "=" in str(exact)
        assert "⊆" in str(contained)


class TestGAVMediator:
    def test_example_2_2_unfolding(self):
        """The paper's Example 2.2: SkilledPerson as a GAV union over H and FS."""
        gav = GAVMediator([
            View(parse_query('SkilledPerson(sid, "Doctor") :- HDoctor(sid, h, l, s, e)')),
            View(parse_query('SkilledPerson(sid, "EMT") :- HEMT(sid, h, vid, s, e)')),
            View(parse_query('SkilledPerson(sid, "EMT") :- FSSchedule(sid, vid), '
                             'FSFirstResponse(vid, s, l, d), FSSkills(sid, "medical")')),
        ])
        union = gav.unfold(parse_query('Q(p) :- SkilledPerson(p, "EMT")'))
        # Two of the three definitions produce EMTs.
        assert len(union) == 2
        predicates = union.predicates()
        assert "HEMT" in predicates and "FSSkills" in predicates

    def test_unfolding_evaluates_correctly(self):
        gav = GAVMediator([
            View(parse_query("M(x, y) :- A(x, y)")),
            View(parse_query("M(x, y) :- B(x, y)")),
        ])
        union = gav.unfold(parse_query("Q(x) :- M(x, y), M(y, z)"))
        data = {"A": [(1, 2)], "B": [(2, 3)]}
        assert evaluate_union(union, data) == {(1,)}
        # Four combinations: A/A, A/B, B/A, B/B.
        assert len(union) == 4

    def test_source_atoms_left_alone(self):
        gav = GAVMediator([View(parse_query("M(x) :- A(x)"))])
        union = gav.unfold(parse_query("Q(x) :- M(x), Src(x)"))
        assert len(union) == 1
        assert "Src" in union.disjuncts[0].predicates()

    def test_nested_mediated_relations(self):
        gav = GAVMediator([
            View(parse_query("Top(x) :- Mid(x)")),
            View(parse_query("Mid(x) :- Source(x)")),
        ])
        union = gav.unfold(parse_query("Q(x) :- Top(x)"))
        assert len(union) == 1
        assert union.disjuncts[0].predicates() == frozenset({"Source"})

    def test_recursive_definitions_rejected(self):
        gav = GAVMediator([View(parse_query("Loop(x) :- Loop(x), Src(x)"))])
        with pytest.raises(ReformulationError):
            gav.unfold(parse_query("Q(x) :- Loop(x)"))

    def test_mediated_relation_without_usable_definition(self):
        gav = GAVMediator([View(parse_query("M(a, 8) :- A(a)"))])
        union = gav.unfold(parse_query("Q(x) :- M(x, 7)"))
        assert union.is_empty()

    def test_definition_head_constant_propagates_into_disjunct_head(self):
        gav = GAVMediator([View(parse_query("M(a, 5) :- A(a)"))])
        union = gav.unfold(parse_query("Q(x, y) :- M(x, y)"))
        assert len(union) == 1
        head = union.disjuncts[0].head
        assert str(head.args[1]) == "5"

    def test_existential_variables_are_freshened(self):
        gav = GAVMediator([View(parse_query("M(x) :- A(x, hidden)"))])
        union = gav.unfold(parse_query("Q(x) :- M(x), B(hidden)"))
        disjunct = union.disjuncts[0]
        a_atom = next(a for a in disjunct.relational_body() if a.predicate == "A")
        b_atom = next(a for a in disjunct.relational_body() if a.predicate == "B")
        # The view's existential must not capture the query's own variable.
        assert a_atom.args[1] != b_atom.args[0]

    def test_mediated_relations_listing(self):
        gav = GAVMediator([View(parse_query("M(x) :- A(x)"))])
        assert gav.mediated_relations() == frozenset({"M"})
        assert len(gav.definitions_for("M")) == 1
        assert gav.definitions_for("unknown") == ()
