"""Unit tests for the tail-latency layer (ISSUE 9).

Covers the shared policy pieces (:class:`HalfOpenBreaker`,
:class:`PeerLatencyTracker`, :class:`ScanPolicy`), the half-open breaker
regressions in :class:`ProcessTransport` and :class:`CacheTierClient`
(both previously tripped *permanently*), the retry / hedge / deadline /
delta behaviour of :class:`RemotePeerFactSource`, and the
:class:`AsyncSocketTransport` socket backend.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.database import Instance
from repro.datalog.indexing import WILDCARD
from repro.errors import TransportError
from repro.pdms import (
    AsyncSocketTransport,
    HalfOpenBreaker,
    LoopbackTransport,
    PeerLatencyTracker,
    ProcessTransport,
    RemotePeerFactSource,
    ScanPolicy,
    ServiceCluster,
    ShardMap,
)
from repro.pdms.distributed.cache_tier import (
    CACHE_PEER,
    CacheTierClient,
    FragmentStore,
)
from repro.pdms.distributed.transport import encode_pattern

ALL = (WILDCARD, WILDCARD)

#: No-sleep, no-jitter policies so tests stay fast and deterministic.
FAST = dict(backoff=0.0, backoff_cap=0.0, jitter=0.0)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# HalfOpenBreaker
# ---------------------------------------------------------------------------


class TestHalfOpenBreaker:
    def test_closed_until_max_consecutive_failures(self):
        clock = FakeClock()
        breaker = HalfOpenBreaker(max_failures=3, cooldown=1.0, clock=clock)
        assert breaker.allow()
        assert not breaker.record_failure("a")
        assert not breaker.record_failure("b")
        assert breaker.allow() and not breaker.tripped
        breaker.record_success()  # success resets the consecutive count
        assert breaker.failures == 0
        breaker.record_failure("c")
        breaker.record_failure("d")
        assert breaker.allow()
        assert breaker.record_failure("e")  # third consecutive: open
        assert breaker.tripped and breaker.reason == "e"
        assert not breaker.allow()

    def test_probe_after_cooldown_is_granted_exactly_once(self):
        clock = FakeClock()
        breaker = HalfOpenBreaker(max_failures=1, cooldown=2.0, clock=clock)
        breaker.record_failure("boom")
        assert not breaker.allow()
        clock.advance(1.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the half-open probe
        assert not breaker.allow()  # concurrent callers keep waiting
        breaker.record_success()
        assert not breaker.tripped and breaker.allow()

    def test_failed_probe_rearms_the_cooldown(self):
        clock = FakeClock()
        breaker = HalfOpenBreaker(max_failures=1, cooldown=2.0, clock=clock)
        breaker.record_failure("boom")
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure("still down")
        assert not breaker.allow()  # fresh cooldown window
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.allow()

    def test_trip_and_reset_are_immediate(self):
        clock = FakeClock()
        breaker = HalfOpenBreaker(max_failures=5, cooldown=1.0, clock=clock)
        breaker.trip("operator")
        assert breaker.tripped and not breaker.allow()
        breaker.reset()
        assert not breaker.tripped and breaker.allow()

    def test_max_failures_must_be_positive(self):
        with pytest.raises(ValueError):
            HalfOpenBreaker(max_failures=0)


# ---------------------------------------------------------------------------
# PeerLatencyTracker
# ---------------------------------------------------------------------------


class TestPeerLatencyTracker:
    def test_p95_needs_min_samples(self):
        tracker = PeerLatencyTracker()
        assert tracker.p95("A", min_samples=3) is None
        tracker.observe("A", 0.010)
        tracker.observe("A", 0.010)
        assert tracker.p95("A", min_samples=3) is None
        tracker.observe("A", 0.010)
        assert tracker.p95("A", min_samples=3) == pytest.approx(0.010, abs=1e-6)

    def test_constant_latency_gives_tight_p95(self):
        tracker = PeerLatencyTracker()
        for _ in range(50):
            tracker.observe("A", 0.020)
        assert tracker.mean("A") == pytest.approx(0.020, abs=1e-6)
        assert tracker.p95("A") == pytest.approx(0.020, abs=1e-4)

    def test_variance_pushes_p95_above_mean(self):
        tracker = PeerLatencyTracker()
        for i in range(100):
            tracker.observe("A", 0.010 if i % 2 else 0.030)
        assert tracker.p95("A") > tracker.mean("A")

    def test_snapshot_shape(self):
        tracker = PeerLatencyTracker()
        tracker.observe("A", 0.005)
        snap = tracker.snapshot()
        assert set(snap) == {"A"}
        assert set(snap["A"]) == {"count", "mean_ms", "p95_ms"}
        assert snap["A"]["count"] == 1.0
        assert snap["A"]["mean_ms"] == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# ScanPolicy
# ---------------------------------------------------------------------------


class _FixedRng:
    def __init__(self, value):
        self._value = value

    def random(self):
        return self._value


class TestScanPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = ScanPolicy(backoff=0.01, backoff_cap=0.05, jitter=0.0)
        rng = _FixedRng(0.0)
        delays = [policy.backoff_delay(a, rng=rng) for a in range(5)]
        assert delays[:3] == pytest.approx([0.01, 0.02, 0.04])
        assert delays[3] == delays[4] == pytest.approx(0.05)

    def test_jitter_adds_bounded_relative_slack(self):
        policy = ScanPolicy(backoff=0.01, jitter=0.5)
        assert policy.backoff_delay(0, rng=_FixedRng(1.0)) == pytest.approx(0.015)

    def test_hedge_delay_fixed_adaptive_and_disabled(self):
        tracker = PeerLatencyTracker()
        assert ScanPolicy(hedging=False).hedge_delay(tracker, "A") is None
        assert ScanPolicy(hedge=0.02).hedge_delay(tracker, "A") == 0.02
        # Adaptive: no estimate yet -> no hedging.
        adaptive = ScanPolicy(hedge=None, min_hedge_samples=2)
        assert adaptive.hedge_delay(tracker, "A") is None
        tracker.observe("A", 0.010)
        tracker.observe("A", 0.010)
        assert adaptive.hedge_delay(tracker, "A") == pytest.approx(0.010, abs=1e-4)

    def test_from_env_reads_the_three_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_RETRIES", "5")
        monkeypatch.setenv("REPRO_HEDGE_MS", "25")
        monkeypatch.setenv("REPRO_SCAN_DEADLINE_MS", "250")
        policy = ScanPolicy.from_env()
        assert policy.retries == 5
        assert policy.hedging and policy.hedge == pytest.approx(0.025)
        assert policy.deadline == pytest.approx(0.25)

    def test_from_env_defaults_and_sentinels(self, monkeypatch):
        for knob in ("REPRO_SCAN_RETRIES", "REPRO_HEDGE_MS", "REPRO_SCAN_DEADLINE_MS"):
            monkeypatch.delenv(knob, raising=False)
        policy = ScanPolicy.from_env()
        assert policy.retries == 2
        assert policy.hedging and policy.hedge is None  # 0 = adaptive
        assert policy.deadline is None  # 0 = unbounded
        monkeypatch.setenv("REPRO_HEDGE_MS", "-1")
        assert not ScanPolicy.from_env().hedging


# ---------------------------------------------------------------------------
# ProcessTransport: the breaker is no longer permanent
# ---------------------------------------------------------------------------


class TestProcessTransportHalfOpen:
    def test_timed_out_peer_recovers_after_cooldown(self):
        transport = ProcessTransport(
            {"P1": Instance.from_dict({"r": [(1,)]})},
            timeout=0.05,
            breaker_cooldown=0.15,
        )
        try:
            with pytest.raises(TransportError):
                transport.sleep("P1", 0.3)
            assert "P1" in transport.failed_peers()
            # Still inside the cooldown: fail fast, no probe.
            with pytest.raises(TransportError):
                transport.ping("P1")
            # Past the cooldown *and* past the worker's busy window: the
            # half-open probe drains the straggling response and closes
            # the breaker — the old behaviour fenced the peer forever.
            time.sleep(0.45)
            assert transport.ping("P1")
            assert "P1" not in transport.failed_peers()
            rows = transport.scan_batch("P1", [("r", encode_pattern((WILDCARD,)))])
            assert rows[0] == ((1,),)
        finally:
            transport.close()

    def test_probe_against_still_busy_worker_rearms(self):
        transport = ProcessTransport(
            {"P1": Instance.from_dict({"r": [(1,)]})},
            timeout=0.05,
            breaker_cooldown=0.1,
        )
        try:
            with pytest.raises(TransportError):
                transport.sleep("P1", 0.6)
            time.sleep(0.15)
            # Cooldown elapsed but the worker is still sleeping: the probe
            # cannot drain the straggler and must re-arm, not hang.
            with pytest.raises(TransportError):
                transport.ping("P1")
            assert "P1" in transport.failed_peers()
            time.sleep(0.6)
            assert transport.ping("P1")
        finally:
            transport.close()


# ---------------------------------------------------------------------------
# CacheTierClient: shared breaker machinery, cooldown recovery
# ---------------------------------------------------------------------------


class TestCacheTierBreakerRecovery:
    def test_restored_cache_peer_rejoins_after_cooldown(self):
        transport = LoopbackTransport({CACHE_PEER: FragmentStore()})
        client = CacheTierClient(transport, max_failures=2, breaker_cooldown=0.1)
        token = ("t", 1)
        assert client.put("k", token, ["r"], {"rows": (1,)})
        transport.fail_peer(CACHE_PEER)
        assert client.get("k", token) == ("error", None)
        assert not client.degraded  # one failure, threshold is two
        assert client.get("k", token) == ("error", None)
        assert client.degraded and client.failures == 2
        transport.restore_peer(CACHE_PEER)
        # Inside the cooldown the breaker still refuses (no RPC made).
        before = transport.rpc_count
        assert client.get("k", token) == ("error", None)
        assert transport.rpc_count == before
        time.sleep(0.12)
        status, value = client.get("k", token)  # the half-open probe
        assert (status, value) == ("hit", {"rows": (1,)})
        assert not client.degraded

    def test_manual_reset_still_short_circuits_the_cooldown(self):
        transport = LoopbackTransport({CACHE_PEER: FragmentStore()})
        client = CacheTierClient(transport, max_failures=1, breaker_cooldown=60.0)
        transport.fail_peer(CACHE_PEER)
        assert client.get("k", ("t", 1)) == ("error", None)
        assert client.degraded
        transport.restore_peer(CACHE_PEER)
        client.reset()
        assert not client.degraded
        assert client.get("k", ("t", 1)) == ("miss", None)


# ---------------------------------------------------------------------------
# RemotePeerFactSource: retries, hedging, deadlines
# ---------------------------------------------------------------------------


def _single_peer():
    instance = Instance.from_dict({"r": [(1, 10), (2, 20), (3, 30)]})
    return {"A": instance}, {(1, 10), (2, 20), (3, 30)}


def _replicated_pair():
    """Two transport peers sharing one live instance: perfect replicas."""
    instance = Instance.from_dict({"r": [(1, 10), (2, 20), (3, 30)]})
    shard_map = ShardMap().shard_by_hash("r", 0, [("A", "B")])
    return {"A": instance, "B": instance}, shard_map, {(1, 10), (2, 20), (3, 30)}


class TestRetries:
    def test_retry_heals_a_transient_drop_and_reearns_complete(self):
        data, expected = _single_peer()
        transport = LoopbackTransport(data, drop_every_n=2)
        source = RemotePeerFactSource(
            transport, policy=ScanPolicy(retries=2, hedging=False, **FAST)
        )
        assert set(source.get_matching("r", ALL)) == expected  # scan #1: fine
        # Scan #2 is dropped by the chaos hook; the retry (#3) heals it.
        assert set(source.get_matching("r", (1, WILDCARD))) == {(1, 10)}
        stats = source.scatter_stats()
        assert stats["retries"] >= 1
        assert source.failure_count == 0
        assert source.complete
        assert source.data_version("r") is not None

    def test_exhausted_retries_record_one_failure_not_one_per_attempt(self):
        data, _ = _single_peer()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport, policy=ScanPolicy(retries=3, hedging=False, **FAST)
        )
        transport.fail_peer("A")
        assert source.prefetch([("r", ALL)]) == 1
        stats = source.scatter_stats()
        assert stats["retries"] == 3
        assert source.failure_count == 1  # one ScanFailure, four attempts
        assert source.degraded_relations == ("r",)
        assert not source.complete

    def test_describe_round_retries_transient_faults(self):
        data, _ = _single_peer()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport, policy=ScanPolicy(retries=1, hedging=False, **FAST)
        )

        calls = {"n": 0}
        real_describe = transport.describe

        def flaky_describe(peer):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransportError("transient", peer=peer)
            return real_describe(peer)

        transport.describe = flaky_describe
        source.refresh()
        assert source.unreachable_peers == ()
        assert calls["n"] == 2


class TestHedging:
    def test_hedge_beats_a_slow_primary(self):
        data, shard_map, expected = _replicated_pair()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            shard_map=shard_map,
            policy=ScanPolicy(retries=0, hedge=0.01, **FAST),
        )
        transport.set_peer_delay("A", 0.5)
        start = time.monotonic()
        rows = source.get_matching("r", ALL)
        elapsed = time.monotonic() - start
        assert set(rows) == expected
        assert elapsed < 0.4  # did not wait out the slow primary
        stats = source.scatter_stats()
        assert stats["hedges_fired"] == 1
        assert stats["hedges_won"] == 1
        assert source.complete and source.failure_count == 0

    def test_fast_primary_never_hedges(self):
        data, shard_map, expected = _replicated_pair()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            shard_map=shard_map,
            policy=ScanPolicy(retries=0, hedge=0.5, **FAST),
        )
        assert set(source.get_matching("r", ALL)) == expected
        assert source.scatter_stats()["hedges_fired"] == 0

    def test_adaptive_hedging_waits_for_latency_samples(self):
        data, shard_map, expected = _replicated_pair()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            shard_map=shard_map,
            policy=ScanPolicy(retries=0, hedge=None, min_hedge_samples=50, **FAST),
        )
        for bound in (1, 2, 3):
            source.get_matching("r", (bound, WILDCARD))
        # Too few samples for a p95 estimate: no hedge ever fired.
        assert source.scatter_stats()["hedges_fired"] == 0
        assert set(source.get_matching("r", ALL)) == expected

    def test_retry_rotates_to_the_replica(self):
        data, shard_map, expected = _replicated_pair()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            shard_map=shard_map,
            policy=ScanPolicy(retries=1, hedging=False, **FAST),
        )
        transport.fail_peer("A")
        # Attempt 0 hits the failed primary; attempt 1 rotates to B.
        assert set(source.get_matching("r", ALL)) == expected
        assert source.failure_count == 0
        assert source.complete


class TestDeadlines:
    def test_deadline_expiry_degrades_honestly(self):
        data, _ = _single_peer()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            policy=ScanPolicy(retries=2, hedging=False, deadline=0.05, **FAST),
        )
        transport.set_peer_delay("A", 0.5)
        start = time.monotonic()
        rows = source.get_matching("r", ALL)
        elapsed = time.monotonic() - start
        assert rows == ()
        assert elapsed < 0.4  # gave up at the deadline, not the peer's pace
        stats = source.scatter_stats()
        assert stats["deadline_expiries"] == 1  # counted once, not per retry
        assert source.failure_count == 1
        assert not source.complete
        assert source.data_version("r") is None  # degraded: cache-barred
        failure = source.failures()[-1]
        assert "deadline" in failure.error

    def test_deadline_bounds_a_whole_prefetch_wave(self):
        instance = Instance.from_dict({"r": [(1,)], "s": [(2,)]})
        transport = LoopbackTransport({"A": instance})
        source = RemotePeerFactSource(
            transport,
            policy=ScanPolicy(retries=1, hedging=False, deadline=0.05, **FAST),
        )
        transport.set_peer_delay("A", 0.5)
        start = time.monotonic()
        source.prefetch([("r", (WILDCARD,)), ("s", (WILDCARD,))])
        assert time.monotonic() - start < 0.45
        assert source.scatter_stats()["deadline_expiries"] >= 1
        assert not source.complete

    def test_generous_deadline_changes_nothing(self):
        data, expected = _single_peer()
        source = RemotePeerFactSource(
            LoopbackTransport(data),
            policy=ScanPolicy(retries=0, hedging=False, deadline=30.0, **FAST),
        )
        assert set(source.get_matching("r", ALL)) == expected
        assert source.scatter_stats()["deadline_expiries"] == 0
        assert source.complete


# ---------------------------------------------------------------------------
# Delta-shipping re-scans
# ---------------------------------------------------------------------------


class TestDeltaRescans:
    def test_rescan_after_insert_ships_only_the_delta(self):
        instance = Instance.from_dict({"r": [(1,), (2,)]})
        source = RemotePeerFactSource(LoopbackTransport({"A": instance}))
        assert set(source.get_matching("r", (WILDCARD,))) == {(1,), (2,)}
        first = source.scatter_stats()
        assert first["full_scans"] >= 1 and first["delta_scans"] == 0
        instance.add("r", (3,))
        source.refresh()  # token moved: memo dropped, cursor kept
        assert set(source.get_matching("r", (WILDCARD,))) == {(1,), (2,), (3,)}
        stats = source.scatter_stats()
        assert stats["delta_scans"] == 1
        assert stats["delta_rows_shipped"] == 1  # only (3,) crossed the wire

    def test_merged_delta_equals_full_rescan(self):
        instance = Instance.from_dict({"r": [(1, 1), (2, 2)]})
        transport = LoopbackTransport({"A": instance})
        delta_source = RemotePeerFactSource(transport)
        for round_no in range(3, 8):
            instance.add("r", (round_no, round_no))
            delta_source.refresh()
            merged = set(delta_source.get_matching("r", ALL))
            oracle = set(instance.get_matching("r", (WILDCARD, WILDCARD)))
            assert merged == oracle
        assert delta_source.scatter_stats()["delta_scans"] >= 4

    def test_removal_invalidates_the_log_and_forces_a_full_rescan(self):
        instance = Instance.from_dict({"r": [(1,), (2,), (3,)]})
        source = RemotePeerFactSource(LoopbackTransport({"A": instance}))
        assert set(source.get_matching("r", (WILDCARD,))) == {(1,), (2,), (3,)}
        instance.remove("r", (2,))
        source.refresh()
        assert set(source.get_matching("r", (WILDCARD,))) == {(1,), (3,)}
        stats = source.scatter_stats()
        # Deletions cannot ride the insert-only log: full rescan, no delta.
        assert stats["delta_scans"] == 0
        assert stats["full_scans"] >= 2

    def test_delta_disabled_always_rescans_in_full(self):
        instance = Instance.from_dict({"r": [(1,), (2,)]})
        source = RemotePeerFactSource(
            LoopbackTransport({"A": instance}), delta=False
        )
        source.get_matching("r", (WILDCARD,))
        instance.add("r", (3,))
        source.refresh()
        assert set(source.get_matching("r", (WILDCARD,))) == {(1,), (2,), (3,)}
        stats = source.scatter_stats()
        assert stats["delta_scans"] == 0 and stats["full_scans"] >= 2

    def test_unchanged_relation_ships_an_empty_delta(self):
        instance = Instance.from_dict({"r": [(1,), (2,)], "s": [(9,)]})
        other = Instance.from_dict({})
        transport = LoopbackTransport({"A": instance, "B": other})
        source = RemotePeerFactSource(transport)
        source.get_matching("r", (WILDCARD,))
        instance.add("s", (10,))  # moves s's token; r's memo survives? no —
        source.refresh()  # only s was invalidated, r's memo is intact
        # r's memo survived (token unchanged), so no rescan at all:
        before = source.scatter_stats()["delta_scans"]
        assert set(source.get_matching("r", (WILDCARD,))) == {(1,), (2,)}
        assert source.scatter_stats()["delta_scans"] == before


# ---------------------------------------------------------------------------
# AsyncSocketTransport
# ---------------------------------------------------------------------------


@pytest.fixture()
def socket_transport():
    instances = {
        "P1": Instance.from_dict({"sa": [(1, 2), (2, 3), (5, 6)]}),
        "P2": Instance.from_dict({"sb": [(2, 10), (3, 11)]}),
    }
    transport = AsyncSocketTransport(instances)
    yield transport
    transport.close()


class TestAsyncSocketTransport:
    def test_describe_matches_the_live_instance(self, socket_transport):
        info = socket_transport.describe("P1")
        arity, cardinality, token = info["sa"]
        assert (arity, cardinality) == (2, 3)
        assert token == socket_transport.instance("P1").data_version("sa")

    def test_scan_batch_filters_and_counts(self, socket_transport):
        rows, all_rows = socket_transport.scan_batch(
            "P1",
            [("sa", encode_pattern((1, WILDCARD))), ("sa", encode_pattern(ALL))],
        )
        assert set(rows) == {(1, 2)}
        assert len(all_rows) == 3
        assert socket_transport.scan_count("P1") == 2

    def test_insert_round_trips(self, socket_transport):
        assert socket_transport.insert("P2", "sb", [(7, 70)]) == 1
        rows = socket_transport.scan_batch("P2", [("sb", encode_pattern(ALL))])
        assert (7, 70) in rows[0]

    def test_unknown_peer_and_failed_peer_raise(self, socket_transport):
        with pytest.raises(TransportError):
            socket_transport.describe("nope")
        socket_transport.fail_peer("P1")
        with pytest.raises(TransportError):
            socket_transport.scan_batch("P1", [("sa", encode_pattern(ALL))])
        socket_transport.restore_peer("P1")
        assert socket_transport.ping("P1")

    def test_data_errors_cross_the_socket_as_data_errors(self, socket_transport):
        with pytest.raises(ValueError):
            socket_transport.scan_batch(
                "P1", [("sa", encode_pattern((WILDCARD,)))]  # arity clash
            )
        assert socket_transport.ping("P1")  # the connection survives

    def test_concurrent_scans_to_delayed_peers_overlap(self, socket_transport):
        socket_transport.set_peer_delay("P1", 0.15)
        socket_transport.set_peer_delay("P2", 0.15)
        results = {}

        def scan(peer, relation):
            results[peer] = socket_transport.scan_batch(
                peer, [(relation, encode_pattern(ALL))]
            )

        start = time.monotonic()
        threads = [
            threading.Thread(target=scan, args=("P1", "sa")),
            threading.Thread(target=scan, args=("P2", "sb")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - start
        assert elapsed < 0.27  # genuinely overlapped, not serialized
        assert len(results["P1"][0]) == 3 and len(results["P2"][0]) == 2

    def test_scan_batch_since_ships_deltas(self, socket_transport):
        encoded = encode_pattern(ALL)
        [(full, token, rows)] = socket_transport.scan_batch_since(
            "P1", [("sa", encoded, None)]
        )
        assert full and token is not None and len(rows) == 3
        socket_transport.instance("P1").add("sa", (9, 9))
        [(full2, token2, delta)] = socket_transport.scan_batch_since(
            "P1", [("sa", encoded, token)]
        )
        assert not full2 and token2 != token
        assert delta == ((9, 9),)
        # An unchanged token yields an empty delta.
        [(full3, token3, rows3)] = socket_transport.scan_batch_since(
            "P1", [("sa", encoded, token2)]
        )
        assert not full3 and token3 == token2 and rows3 == ()

    def test_submit_scan_returns_a_real_future(self, socket_transport):
        future = socket_transport.submit_scan(
            "P1", [("sa", encode_pattern(ALL), None)]
        )
        [(full, _token, rows)] = future.result(timeout=5.0)
        assert full and len(rows) == 3

    def test_closed_transport_fails_fast(self):
        transport = AsyncSocketTransport({"P": Instance.from_dict({"r": [(1,)]})})
        transport.close()
        with pytest.raises(TransportError):
            transport.ping("P")
        transport.close()  # idempotent

    def test_source_over_sockets_matches_loopback(self, socket_transport):
        source = RemotePeerFactSource(socket_transport)
        assert set(source.get_matching("sa", ALL)) == {(1, 2), (2, 3), (5, 6)}
        assert set(source.get_matching("sb", (2, WILDCARD))) == {(2, 10)}
        assert source.complete


# ---------------------------------------------------------------------------
# Cluster surfaces
# ---------------------------------------------------------------------------


class TestClusterTailStats:
    def test_describe_exposes_tail_counters_and_latency(self):
        from repro.pdms import PDMS

        data, _ = _single_peer()
        with ServiceCluster(
            pdms=PDMS("tail"), transport=LoopbackTransport(data)
        ) as cluster:
            cluster.source.get_matching("r", ALL)
            snapshot = cluster.describe()
            scatter = snapshot["scatter"]
            for key in (
                "retries",
                "hedges_fired",
                "hedges_won",
                "deadline_expiries",
                "delta_scans",
                "full_scans",
                "delta_rows_shipped",
                "full_rows_shipped",
            ):
                assert key in scatter
            latency = snapshot["peer_latency"]
            assert latency["schema_version"] == 1
            peers = latency["peers"]
            assert "A" in peers and peers["A"]["count"] >= 1.0

    def test_cluster_accepts_an_explicit_scan_policy(self):
        from repro.pdms import PDMS

        data, expected = _single_peer()
        policy = ScanPolicy(retries=0, hedging=False, **FAST)
        with ServiceCluster(
            pdms=PDMS("tail"),
            transport=LoopbackTransport(data),
            scan_policy=policy,
        ) as cluster:
            assert set(cluster.source.get_matching("r", ALL)) == expected
            assert cluster.source.scatter_stats()["retries"] == 0

    @pytest.mark.parametrize(
        "knob", ["REPRO_SCAN_RETRIES", "REPRO_HEDGE_MS", "REPRO_SCAN_DEADLINE_MS"]
    )
    def test_malformed_tail_knobs_fail_fast_at_construction(
        self, knob, monkeypatch
    ):
        from repro.errors import PDMSConfigurationError
        from repro.pdms import PDMS

        data, _ = _single_peer()
        monkeypatch.setenv(knob, "not-an-int")
        with pytest.raises(PDMSConfigurationError, match=knob):
            ServiceCluster(pdms=PDMS("tail"), transport=LoopbackTransport(data))
