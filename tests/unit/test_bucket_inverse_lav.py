"""Unit tests for the Bucket algorithm, inverse rules, and the LAV facade."""

from repro.datalog import evaluate_union, parse_query
from repro.datalog.containment import is_contained_in
from repro.integration import (
    LAVMediator,
    RewritingAlgorithm,
    SkolemValue,
    View,
    ViewSet,
    bucket_rewrite,
    build_canonical_instance,
    certain_answers,
    certain_answers_by_freezing,
    contains_skolem,
    freeze_canonical_instance,
    minicon_rewrite,
)
from repro.integration.bucket import expand_view_atoms


def _views():
    return ViewSet([
        View(parse_query("V1(a, b) :- e1(a, c), e2(c, b)")),
        View(parse_query("V2(d, e) :- e3(d, e), e4(e)")),
        View(parse_query("V3(u) :- e1(u, z)")),
    ])


class TestBucket:
    def test_bucket_rewriting_is_sound(self):
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        views = _views()
        union = bucket_rewrite(query, views)
        assert not union.is_empty()
        for rewriting in union:
            expansion = expand_view_atoms(rewriting, views)
            assert is_contained_in(expansion, query)

    def test_bucket_and_minicon_agree_on_answers(self):
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        views = _views()
        data = {"V1": [(1, 3), (2, 7)], "V2": [(1, 3), (9, 9)], "V3": [(1,)]}
        bucket_answers = evaluate_union(bucket_rewrite(query, views), data)
        minicon_answers = evaluate_union(minicon_rewrite(query, views), data)
        assert bucket_answers == minicon_answers

    def test_empty_bucket_means_no_rewriting(self):
        query = parse_query("Q(x) :- unknown(x)")
        assert bucket_rewrite(query, _views()).is_empty()


class TestInverseRules:
    def test_canonical_instance_has_skolems_for_existentials(self):
        views = ViewSet([View(parse_query("V1(a, b) :- e1(a, c), e2(c, b)"))])
        canonical = build_canonical_instance(views, {"V1": [(1, 2)]})
        e1_rows = list(canonical.get_tuples("e1"))
        assert len(e1_rows) == 1
        assert contains_skolem(e1_rows[0])
        assert isinstance(e1_rows[0][1], SkolemValue)

    def test_skolems_shared_across_atoms_of_one_view_tuple(self):
        views = ViewSet([View(parse_query("V1(a, b) :- e1(a, c), e2(c, b)"))])
        canonical = build_canonical_instance(views, {"V1": [(1, 2)]})
        e1_row = next(iter(canonical.get_tuples("e1")))
        e2_row = next(iter(canonical.get_tuples("e2")))
        assert e1_row[1] == e2_row[0]

    def test_certain_answers_drop_skolem_rows(self):
        views = ViewSet([View(parse_query("V1(a, b) :- e1(a, c), e2(c, b)"))])
        data = {"V1": [(1, 2)]}
        # The join variable is unknown, so Q asking for it has no certain answer...
        assert certain_answers(parse_query("Q(c) :- e1(a, c)"), views, data) == set()
        # ...but the composed path is certain.
        assert certain_answers(
            parse_query("Q(a, b) :- e1(a, c), e2(c, b)"), views, data
        ) == {(1, 2)}

    def test_view_head_constants_filter_tuples(self):
        views = ViewSet([View(parse_query('V(a, "x") :- r(a)'))])
        canonical = build_canonical_instance(views, {"V": [(1, "x"), (2, "y")]})
        assert set(canonical.get_tuples("r")) == {(1,)}

    def test_repeated_head_variable_requires_equal_values(self):
        views = ViewSet([View(parse_query("V(a, a) :- r(a)"))])
        canonical = build_canonical_instance(views, {"V": [(1, 1), (1, 2)]})
        assert set(canonical.get_tuples("r")) == {(1,)}

    def test_freezing_agrees_with_inverse_rules(self):
        views = _views()
        data = {"V1": [(1, 3), (4, 5)], "V2": [(1, 3)], "V3": [(7,)]}
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        assert certain_answers(query, views, data) == certain_answers_by_freezing(
            query, views, data
        )

    def test_freeze_replaces_nulls_with_distinct_markers(self):
        views = ViewSet([View(parse_query("V1(a, b) :- e1(a, c), e2(c, b)"))])
        canonical = build_canonical_instance(views, {"V1": [(1, 2), (3, 4)]})
        frozen = freeze_canonical_instance(canonical)
        frozen_values = {
            value
            for row in frozen.get_tuples("e1")
            for value in row
            if isinstance(value, str) and value.startswith("⊥")
        }
        assert len(frozen_values) == 2


class TestLAVMediator:
    def test_answers_equal_certain_answers_with_minicon(self):
        views = list(_views())
        mediator = LAVMediator(views)
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        data = {"V1": [(1, 3)], "V2": [(1, 3)], "V3": [(1,)]}
        assert mediator.answer(query, data) == mediator.certain_answers(query, data)

    def test_bucket_algorithm_selectable(self):
        mediator = LAVMediator(list(_views()), algorithm=RewritingAlgorithm.BUCKET)
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        data = {"V1": [(1, 3)], "V2": [(1, 3)], "V3": [(1,)]}
        assert mediator.answer(query, data) == {(1, 3)}
        assert mediator.algorithm is RewritingAlgorithm.BUCKET

    def test_add_source(self):
        mediator = LAVMediator()
        mediator.add_source(View(parse_query("V(a) :- p(a)")))
        assert "V" in mediator.views
