"""Unit tests for the rule-goal-tree reformulation algorithm (Section 4)."""

import pytest

from repro.datalog import parse_atom, parse_query
from repro.datalog.atoms import Atom
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    InclusionMapping,
    ReformulationConfig,
    StorageDescription,
    compute_productive_predicates,
    lav_style,
    reformulate,
    replication,
)
from repro.pdms.rule_goal_tree import RuleNode


class TestFigure2Example:
    """The paper's Figure 2: the worked reformulation example."""

    def test_paper_rewritings_present(self, figure2_pdms, figure2_query):
        result = reformulate(figure2_pdms, figure2_query)
        bodies = {frozenset(str(a) for a in rw.relational_body())
                  for rw in result.all_rewritings()}
        # The two rewritings shown in Figure 2 (S2(f1,f2) and S2(f2,f1)).
        expected_one = frozenset({"S1(f1, e, _mv)", "S1(f2, e, _mv)", "S2(f1, f2)"})
        # Variable names of projected positions differ; compare structurally.
        def structural(body):
            return frozenset(
                (a.split("(")[0], a.count(",")) for a in body
            )
        assert any(
            {"S2(f1, f2)"} <= {s for s in body if s.startswith("S2")}
            for body in bodies
        )
        assert any(
            {"S2(f2, f1)"} <= {s for s in body if s.startswith("S2")}
            for body in bodies
        )

    def test_symmetric_application_of_r1(self, figure2_pdms, figure2_query):
        """r1 must be applied a second time with head variables reversed
        (SameSkill may not be symmetric) — the paper's Example 4.1."""
        result = reformulate(figure2_pdms, figure2_query)
        labels = {
            str(goal.label)
            for goal in result.tree.goal_nodes()
            if goal.label.predicate == "FS:SameSkill"
        }
        assert "FS:SameSkill(f1, f2)" in labels
        assert "FS:SameSkill(f2, f1)" in labels

    def test_unc_labels_cover_both_skill_subgoals(self, figure2_pdms, figure2_query):
        result = reformulate(figure2_pdms, figure2_query)
        inclusion_nodes = [
            rule for rule in result.tree.rule_nodes()
            if rule.kind == RuleNode.KIND_INCLUSION and rule.origin == "r1"
        ]
        assert inclusion_nodes
        assert any(len(rule.covers) == 2 for rule in inclusion_nodes)

    def test_all_rewritings_refer_only_to_stored_relations(
        self, figure2_pdms, figure2_query
    ):
        result = reformulate(figure2_pdms, figure2_query)
        for rewriting in result.all_rewritings():
            assert all(
                atom.predicate in ("S1", "S2")
                for atom in rewriting.relational_body()
            )

    def test_statistics_counts_are_consistent(self, figure2_pdms, figure2_query):
        result = reformulate(figure2_pdms, figure2_query)
        stats = result.statistics
        assert stats.total_nodes == stats.goal_nodes + stats.rule_nodes
        assert stats.stored_leaves > 0
        assert stats.max_depth >= 3


class TestDefinitionalChaining:
    def test_gav_chain_through_two_peers(self):
        pdms = PDMS()
        for name in ("A", "B", "C"):
            pdms.add_peer(name).add_relation("R", ["x", "y"])
        pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:R(x, y) :- B:R(x, y)")))
        pdms.add_peer_mapping(DefinitionalMapping(parse_query("B:R(x, y) :- C:R(x, y)")))
        pdms.add_storage_description(
            StorageDescription("C", "stored_c", parse_query("V(x, y) :- C:R(x, y)")))
        result = reformulate(pdms, parse_query("Q(x, y) :- A:R(x, y)"))
        rewritings = result.all_rewritings()
        assert len(rewritings) == 1
        assert rewritings[0].relational_body()[0].predicate == "stored_c"

    def test_definitional_union_gives_multiple_rewritings(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("P", ["x"])
        b = pdms.add_peer("B")
        b.add_relation("P1", ["x"])
        b.add_relation("P2", ["x"])
        pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:P(x) :- B:P1(x)")))
        pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:P(x) :- B:P2(x)")))
        pdms.add_storage_description(
            StorageDescription("B", "s1", parse_query("V(x) :- B:P1(x)")))
        pdms.add_storage_description(
            StorageDescription("B", "s2", parse_query("V(x) :- B:P2(x)")))
        result = reformulate(pdms, parse_query("Q(x) :- A:P(x)"))
        assert {rw.relational_body()[0].predicate for rw in result.all_rewritings()} == {
            "s1", "s2"
        }

    def test_head_constant_binding_restricts_and_propagates(self):
        """Unifying with a definitional head constant must not lose the binding."""
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("Skilled", ["p", "skill"])
        b = pdms.add_peer("B")
        b.add_relation("Doctor", ["p"])
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query('A:Skilled(p, "Doctor") :- B:Doctor(p)')))
        pdms.add_storage_description(
            StorageDescription("B", "docs", parse_query("V(p) :- B:Doctor(p)")))
        # Query with a variable in the bound position.
        result = reformulate(pdms, parse_query("Q(p, s) :- A:Skilled(p, s)"))
        rewritings = result.all_rewritings()
        assert len(rewritings) == 1
        assert str(rewritings[0].head.args[1]) == '"Doctor"'
        # Query with a matching constant works; mismatching constant yields nothing.
        assert len(reformulate(
            pdms, parse_query('Q(p) :- A:Skilled(p, "Doctor")')).all_rewritings()) == 1
        assert reformulate(
            pdms, parse_query('Q(p) :- A:Skilled(p, "EMT")')).all_rewritings() == []


class TestInclusionChaining:
    def test_lav_chain_through_two_peers(self):
        pdms = PDMS()
        for name in ("A", "B", "C"):
            pdms.add_peer(name).add_relation("R", ["x", "y"])
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x, y)"), parse_query("V(x, y) :- A:R(x, y)")))
        pdms.add_peer_mapping(lav_style(
            parse_atom("C:R(x, y)"), parse_query("V(x, y) :- B:R(x, y)")))
        pdms.add_storage_description(
            StorageDescription("C", "stored_c", parse_query("V(x, y) :- C:R(x, y)")))
        result = reformulate(pdms, parse_query("Q(x, y) :- A:R(x, y)"))
        rewritings = result.all_rewritings()
        assert len(rewritings) == 1
        assert rewritings[0].relational_body()[0].predicate == "stored_c"

    def test_join_variable_must_be_exported(self):
        """A view projecting away a join variable cannot be chained through."""
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("R", ["x", "y"])
        a.add_relation("S", ["y", "z"])
        b = pdms.add_peer("B")
        b.add_relation("OnlyX", ["x"])
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:OnlyX(x)"), parse_query("V(x) :- A:R(x, y)")))
        pdms.add_storage_description(
            StorageDescription("B", "stored_b", parse_query("V(x) :- B:OnlyX(x)")))
        # y joins R and S, but OnlyX does not export it: no rewriting may use it.
        result = reformulate(pdms, parse_query("Q(x) :- A:R(x, y), A:S(y, z)"))
        assert result.all_rewritings() == []

    def test_mcd_covering_two_subgoals(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("R", ["x", "y"])
        a.add_relation("S", ["y", "z"])
        b = pdms.add_peer("B")
        b.add_relation("Pair", ["x", "z"])
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:Pair(x, z)"), parse_query("V(x, z) :- A:R(x, y), A:S(y, z)")))
        pdms.add_storage_description(
            StorageDescription("B", "stored_pair", parse_query("V(x, z) :- B:Pair(x, z)")))
        result = reformulate(pdms, parse_query("Q(x, z) :- A:R(x, y), A:S(y, z)"))
        rewritings = result.all_rewritings()
        assert len(rewritings) == 1
        assert [a.predicate for a in rewritings[0].relational_body()] == ["stored_pair"]

    def test_replication_cycle_terminates_and_answers(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("V", ["x", "y"])
        pdms.add_peer("B").add_relation("V", ["x", "y"])
        pdms.add_peer_mapping(replication(
            parse_atom("A:V(x, y)"), parse_atom("B:V(x, y)")))
        pdms.add_storage_description(
            StorageDescription("B", "stored_b", parse_query("V(x, y) :- B:V(x, y)")))
        result = reformulate(pdms, parse_query("Q(x, y) :- A:V(x, y)"))
        rewritings = result.all_rewritings()
        assert any(
            rw.relational_body()[0].predicate == "stored_b" for rw in rewritings
        )

    def test_mutual_inclusion_cycle_terminates(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("R", ["x"])
        pdms.add_peer("B").add_relation("R", ["x"])
        pdms.add_peer_mapping(lav_style(
            parse_atom("A:R(x)"), parse_query("V(x) :- B:R(x)"), name="ab"))
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x)"), parse_query("V(x) :- A:R(x)"), name="ba"))
        pdms.add_storage_description(
            StorageDescription("A", "sa", parse_query("V(x) :- A:R(x)")))
        # Must not loop forever despite the cyclic peer mappings.
        result = reformulate(pdms, parse_query("Q(x) :- B:R(x)"))
        assert len(result.all_rewritings()) >= 1

    def test_description_not_reused_on_same_path(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("R", ["x"])
        pdms.add_peer("B").add_relation("R", ["x"])
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x)"), parse_query("V(x) :- A:R(x)"), name="only"))
        pdms.add_storage_description(
            StorageDescription("B", "sb", parse_query("V(x) :- B:R(x)")))
        result = reformulate(pdms, parse_query("Q(x) :- A:R(x)"))
        for goal in result.tree.goal_nodes():
            origins = []
            node = goal
            while node.parent is not None:
                origins.append(node.parent.origin)
                node = node.parent.parent
            non_query = [o for o in origins if not o.startswith("__")]
            assert len(non_query) == len(set(non_query))


class TestSyntheticPredicates:
    def test_projection_inclusion_goes_through_synthetic_rule(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("Worker", ["sid", "first", "last"])
        b = pdms.add_peer("B")
        b.add_relation("Staff", ["sid", "first", "last", "class"])
        pdms.add_peer_mapping(InclusionMapping(
            parse_query("L(sid, f, l) :- B:Staff(sid, f, l, c)"),
            parse_query("R(sid, f, l) :- A:Worker(sid, f, l)"), name="staff"))
        pdms.add_storage_description(
            StorageDescription("B", "roster", parse_query("V(s, f, l, c) :- B:Staff(s, f, l, c)")))
        result = reformulate(pdms, parse_query("Q(sid, l) :- A:Worker(sid, f, l)"))
        rewritings = result.all_rewritings()
        assert len(rewritings) == 1
        assert rewritings[0].relational_body()[0].predicate == "roster"


class TestComparisonPredicates:
    def test_unsatisfiable_branch_pruned(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("Item", ["x", "price"])
        b = pdms.add_peer("B")
        b.add_relation("Cheap", ["x", "price"])
        b.add_relation("Pricey", ["x", "price"])
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:Item(x, p) :- B:Cheap(x, p), p < 100")))
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:Item(x, p) :- B:Pricey(x, p), p >= 100")))
        pdms.add_storage_description(
            StorageDescription("B", "cheap_store", parse_query("V(x, p) :- B:Cheap(x, p)")))
        pdms.add_storage_description(
            StorageDescription("B", "pricey_store", parse_query("V(x, p) :- B:Pricey(x, p)")))
        query = parse_query("Q(x, p) :- A:Item(x, p), p < 50")
        result = reformulate(pdms, query)
        predicates = {
            rw.relational_body()[0].predicate for rw in result.all_rewritings()
        }
        # The Pricey branch is unsatisfiable together with p < 50.
        assert predicates == {"cheap_store"}
        assert result.statistics.pruned_unsatisfiable >= 1

    def test_comparisons_appear_in_rewriting(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("Item", ["x", "price"])
        pdms.add_storage_description(
            StorageDescription("A", "items", parse_query("V(x, p) :- A:Item(x, p)")))
        query = parse_query("Q(x) :- A:Item(x, p), p < 50")
        result = reformulate(pdms, query)
        rewritings = result.all_rewritings()
        assert len(rewritings) == 1
        assert rewritings[0].has_comparisons()


class TestProductivePredicates:
    def test_productive_set(self, figure2_pdms):
        productive = compute_productive_predicates(figure2_pdms.catalogue())
        assert "S1" in productive and "S2" in productive
        assert "FS:AssignedTo" in productive
        assert "FS:SameEngine" in productive
        assert "FS:SameSkill" in productive
        # Sched appears only inside a storage description body: reachable too.
        assert "FS:Sched" in productive

    def test_dead_end_pruning_reduces_tree(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("P", ["x"])
        b = pdms.add_peer("B")
        b.add_relation("Good", ["x"])
        b.add_relation("Dead", ["x"])
        pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:P(x) :- B:Good(x)")))
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:P(x) :- B:Dead(x), B:Good(x)")))
        pdms.add_storage_description(
            StorageDescription("B", "good_store", parse_query("V(x) :- B:Good(x)")))
        query = parse_query("Q(x) :- A:P(x)")
        with_pruning = reformulate(pdms, query, ReformulationConfig(prune_dead_ends=True))
        without_pruning = reformulate(pdms, query, ReformulationConfig(prune_dead_ends=False))
        assert with_pruning.statistics.total_nodes < without_pruning.statistics.total_nodes
        assert with_pruning.statistics.pruned_dead_end >= 1
        # Pruning must not change the produced answers.
        assert {str(r) for r in with_pruning.all_rewritings()} == {
            str(r) for r in without_pruning.all_rewritings()
        }


class TestConfigurationKnobs:
    # Fresh-variable names and the choice of representative for equated
    # variables legitimately differ between configurations, so agreement is
    # checked semantically: same answers over the same stored data.
    _DATA = {
        "S1": [("alice", "e1", 17), ("bob", "e1", 18), ("carol", "e2", 17)],
        "S2": [("alice", "bob"), ("carol", "dave")],
    }

    def _answers(self, pdms, query, config=None):
        from repro.pdms import evaluate_reformulation

        return evaluate_reformulation(reformulate(pdms, query, config), self._DATA)

    def test_configurations_agree_on_answers(self, figure2_pdms, figure2_query):
        default = self._answers(figure2_pdms, figure2_query)
        bare = self._answers(
            figure2_pdms, figure2_query, ReformulationConfig().without_optimizations()
        )
        assert default == bare

    def test_expansion_orders_agree_on_answers(self, figure2_pdms, figure2_query):
        from repro.pdms import ExpansionOrder

        answer_sets = {
            order: frozenset(
                self._answers(
                    figure2_pdms, figure2_query, ReformulationConfig(expansion_order=order)
                )
            )
            for order in ExpansionOrder
        }
        assert len(set(answer_sets.values())) == 1

    def test_max_nodes_budget_enforced(self, figure2_pdms, figure2_query):
        from repro.errors import ReformulationError

        with pytest.raises(ReformulationError):
            reformulate(figure2_pdms, figure2_query, ReformulationConfig(max_nodes=3))

    def test_max_depth_truncates_tree(self, figure2_pdms, figure2_query):
        config = ReformulationConfig(max_depth=1)
        result = reformulate(figure2_pdms, figure2_query, config)
        assert result.statistics.max_depth <= 2

    def test_first_rewritings_prefix_of_all(self, figure2_pdms, figure2_query):
        result = reformulate(figure2_pdms, figure2_query)
        first_two = result.first_rewritings(2)
        assert len(first_two) == 2
        everything = result.all_rewritings()
        assert [str(r) for r in everything[:2]] == [str(r) for r in first_two]

    def test_minimize_rewritings_option(self, figure2_pdms, figure2_query):
        config = ReformulationConfig(minimize_rewritings=True)
        result = reformulate(figure2_pdms, figure2_query, config)
        assert result.all_rewritings()

    def test_remove_redundant_rewritings_option(self, figure2_pdms, figure2_query):
        config = ReformulationConfig(remove_redundant_rewritings=True)
        slim = reformulate(figure2_pdms, figure2_query, config)
        full = reformulate(figure2_pdms, figure2_query)
        assert len(slim.all_rewritings()) <= len(full.all_rewritings())


class TestNoRewritingCases:
    def test_unmapped_relation_has_no_rewriting(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("Orphan", ["x"])
        result = reformulate(pdms, parse_query("Q(x) :- A:Orphan(x)"))
        assert result.all_rewritings() == []

    def test_tree_pretty_rendering(self, figure2_pdms, figure2_query):
        result = reformulate(figure2_pdms, figure2_query)
        rendering = result.tree.pretty()
        assert "FS:SameEngine" in rendering
        assert "covers(" in rendering
