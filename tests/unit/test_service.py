"""Unit tests for the query-answering service layer (repro.pdms.service).

Covers the ISSUE-2 cache-correctness checklist: invalidation granularity
(an unrelated peer join must NOT evict entries; a mapping touching a used
description MUST), version monotonicity, and ``limit=k`` returning a
subset of the full answer set — plus canonical-signature reuse, LRU
bounds, and change-log pickup of direct PDMS mutations.
"""

import pytest

from repro.database import Instance
from repro.datalog import parse_atom, parse_query
from repro.errors import PDMSConfigurationError
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    Peer,
    QueryService,
    StorageDescription,
    answer_query,
    canonicalize_query,
    lav_style,
)


def _service() -> QueryService:
    """A two-peer tractable PDMS with data, wrapped in a service.

    ``A:R`` is defined over ``B:S`` (stored as ``stored_s``); ``C:T`` is
    an unrelated island relation stored as ``stored_t``.
    """
    pdms = PDMS("svc")
    a = pdms.add_peer("A")
    a.add_relation("R", ["x", "y"])
    b = pdms.add_peer("B")
    b.add_relation("S", ["x", "y"])
    c = pdms.add_peer("C")
    c.add_relation("T", ["x", "y"])
    pdms.add_peer_mapping(DefinitionalMapping(
        parse_query("A:R(x, y) :- B:S(x, y)"), name="r_def"))
    pdms.add_storage_description(StorageDescription(
        "B", "stored_s", parse_query("V(x, y) :- B:S(x, y)"), name="s_store"))
    pdms.add_storage_description(StorageDescription(
        "C", "stored_t", parse_query("V(x, y) :- C:T(x, y)"), name="t_store"))
    data = Instance.from_dict({
        "stored_s": [(1, 2), (2, 3), (3, 4)],
        "stored_t": [(9, 9)],
    })
    return QueryService(pdms, data=data)


QUERY_R = parse_query("Q(x, y) :- A:R(x, y)")
QUERY_T = parse_query("Q(x, y) :- C:T(x, y)")


class TestCacheBasics:
    def test_repeated_query_hits_cache(self):
        service = _service()
        first = service.answer(QUERY_R)
        second = service.answer(QUERY_R)
        assert first == second == {(1, 2), (2, 3), (3, 4)}
        assert service.stats.misses == 1
        assert service.stats.hits == 1
        assert service.cache_size == 1

    def test_isomorphic_queries_share_one_entry(self):
        service = _service()
        service.answer(QUERY_R)
        renamed = parse_query("Answers(u, v) :- A:R(u, v)")
        assert service.answer(renamed) == service.answer(QUERY_R)
        # Different variable names, head name — same canonical signature.
        assert service.stats.misses == 1
        assert service.cache_size == 1

    def test_reordered_body_shares_one_entry(self):
        service = _service()
        join1 = parse_query("Q(x, z) :- A:R(x, y), C:T(y, z)")
        join2 = parse_query("Q(a, c) :- C:T(b, c), A:R(a, b)")
        assert canonicalize_query(join1).signature == canonicalize_query(join2).signature
        service.answer(join1)
        service.answer(join2)
        assert service.stats.misses == 1

    def test_answers_match_fresh_answer_query(self):
        service = _service()
        for query in (QUERY_R, QUERY_T, parse_query("Q(x) :- A:R(x, y)")):
            assert service.answer(query) == answer_query(
                service.pdms, query, Instance.from_dict({
                    "stored_s": [(1, 2), (2, 3), (3, 4)],
                    "stored_t": [(9, 9)],
                }))

    def test_lru_eviction_respects_max_entries(self):
        pdms = _service().pdms
        service = QueryService(
            pdms,
            data=Instance.from_dict({"stored_s": [(1, 2)], "stored_t": [(9, 9)]}),
            max_entries=2,
        )
        queries = [
            QUERY_R,
            QUERY_T,
            parse_query("Q(x) :- A:R(x, y)"),
        ]
        for query in queries:
            service.answer(query)
        assert service.cache_size == 2
        assert service.stats.evictions == 1
        # The oldest entry (QUERY_R) was evicted; re-answering re-misses.
        service.answer(QUERY_R)
        assert service.stats.misses == 4

    def test_clear_cache(self):
        service = _service()
        service.answer(QUERY_R)
        service.clear_cache()
        assert service.cache_size == 0
        service.answer(QUERY_R)
        assert service.stats.misses == 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(PDMSConfigurationError):
            QueryService(PDMS(), engine="warp-drive")
        with pytest.raises(PDMSConfigurationError):
            QueryService(PDMS(), max_entries=0)

    def test_stats_hit_rate(self):
        service = _service()
        assert service.stats.hit_rate == 0.0
        service.answer(QUERY_R)
        service.answer(QUERY_R)
        service.answer(QUERY_R)
        assert service.stats.hit_rate == pytest.approx(2 / 3)


class TestVersioning:
    def test_versions_increase_monotonically(self):
        service = _service()
        versions = [service.catalogue_version]
        service.add_peer("D")
        versions.append(service.catalogue_version)
        service.pdms.peer("D").add_relation("U", ["x"])
        service.add_peer_mapping(DefinitionalMapping(
            parse_query("D:U(x) :- A:R(x, x)"), name="d_def"))
        versions.append(service.catalogue_version)
        service.remove_peer("D")
        versions.append(service.catalogue_version)
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_every_mutation_is_logged(self):
        pdms = PDMS()
        start = pdms.catalogue_version
        pdms.add_peer("A").add_relation("R", ["x"])
        pdms.add_storage_description(
            StorageDescription("A", "s", parse_query("V(x) :- A:R(x)")))
        pdms.remove_peer("A")
        changes = pdms.changes_since(start)
        assert [c.kind for c in changes] == ["add-peer", "add-storage", "remove-peer"]
        assert [c.version for c in changes] == sorted(c.version for c in changes)


class TestInvalidationGranularity:
    def test_unrelated_peer_join_keeps_entries(self):
        service = _service()
        service.answer(QUERY_R)
        service.answer(QUERY_T)
        assert service.cache_size == 2
        # A new peer with a mapping over fresh predicates touches nothing.
        newcomer = Peer("N")
        newcomer.add_relation("W", ["x", "y"])
        service.add_peer(newcomer)
        service.add_peer_mapping(DefinitionalMapping(
            parse_query("N:W(x, y) :- N:W(y, x)"), name="n_def"))
        assert service.cache_size == 2
        assert service.stats.invalidations == 0
        service.answer(QUERY_R)
        assert service.stats.hits == 1  # still served from cache

    def test_mapping_touching_used_description_evicts(self):
        service = _service()
        service.answer(QUERY_R)  # touches A:R, B:S, stored_s
        service.answer(QUERY_T)  # touches C:T, stored_t
        # New definitional mapping for A:R — QUERY_R's entry must go,
        # QUERY_T's must stay.
        service.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- C:T(x, y)"), name="r_more"))
        assert service.stats.invalidations == 1
        assert service.cache_size == 1
        # And the refreshed entry sees the new mapping's answers.
        assert service.answer(QUERY_R) == {(1, 2), (2, 3), (3, 4), (9, 9)}

    def test_new_storage_description_for_used_predicate_evicts(self):
        service = _service()
        service.answer(QUERY_R)
        service.answer(QUERY_T)
        service.add_storage_description(StorageDescription(
            "B", "stored_s2", parse_query("V(x, y) :- B:S(x, y)"), name="s2_store"))
        assert service.stats.invalidations == 1
        assert service.cache_size == 1

    def test_peer_leave_evicts_only_dependent_entries(self):
        service = _service()
        service.answer(QUERY_R)
        service.answer(QUERY_T)
        service.remove_peer("C")
        assert service.stats.invalidations == 1
        assert service.cache_size == 1
        # QUERY_R survives; QUERY_T is re-reformulated to nothing.
        service.answer(QUERY_R)
        assert service.stats.hits == 1
        assert service.answer(QUERY_T) == set()

    def test_direct_pdms_mutation_is_picked_up(self):
        """Mutating the wrapped PDMS without going through the service
        must still invalidate via the change log."""
        service = _service()
        service.answer(QUERY_R)
        service.pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- C:T(x, y)"), name="direct"))
        assert service.answer(QUERY_R) == {(1, 2), (2, 3), (3, 4), (9, 9)}
        assert service.stats.invalidations == 1

    def test_removing_mapping_refreshes_answers(self):
        service = _service()
        service.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- C:T(x, y)"), name="extra"))
        assert (9, 9) in service.answer(QUERY_R)
        service.remove_peer_mapping("extra")
        assert (9, 9) not in service.answer(QUERY_R)


class TestLimitAndStreaming:
    def test_limit_returns_subset(self):
        service = _service()
        full = service.answer(QUERY_R)
        for k in range(len(full) + 2):
            limited = service.answer(QUERY_R, limit=k)
            assert limited <= full
            assert len(limited) == min(k, len(full))

    def test_stream_yields_all_answers(self):
        service = _service()
        assert set(service.stream(QUERY_R)) == service.answer(QUERY_R)

    def test_cold_limit_call_does_not_force_full_enumeration(self):
        """A cache miss with limit=k must consume only a rewriting prefix
        (the service's first-k contract), and later calls must resume the
        memoized enumeration instead of restarting it."""
        service = _service()
        service.answer(QUERY_R, limit=1)
        entry_result = service.reformulate(QUERY_R)
        assert entry_result._all is None  # nothing forced the full list
        # The full answer is still correct afterwards (resumes the stream).
        assert service.answer(QUERY_R) == {(1, 2), (2, 3), (3, 4)}

    def test_change_log_truncation_falls_back_to_full_invalidation(self):
        import repro.pdms.system as system_module

        service = _service()
        service.answer(QUERY_R)
        service.answer(QUERY_T)
        original = system_module.MAX_CHANGE_LOG
        system_module.MAX_CHANGE_LOG = 2
        try:
            for i in range(4):  # push the service's cursor out of the window
                service.pdms.add_peer(f"F{i}")
            service.answer(QUERY_R)
        finally:
            system_module.MAX_CHANGE_LOG = original
        # Selective invalidation was impossible: everything was dropped.
        assert service.stats.invalidations == 2
        assert service.answer(QUERY_R) == {(1, 2), (2, 3), (3, 4)}

    def test_limit_uses_cache_too(self):
        service = _service()
        service.answer(QUERY_R, limit=1)
        service.answer(QUERY_R, limit=2)
        assert service.stats.misses == 1
        assert service.stats.hits == 1


class TestBatchAndData:
    def test_answer_batch_shares_cache(self):
        service = _service()
        queries = [QUERY_R, QUERY_T, QUERY_R, parse_query("Z(a, b) :- A:R(a, b)")]
        batch = service.answer_batch(queries)
        assert batch[0] == batch[2] == batch[3]
        assert service.stats.misses == 2  # QUERY_R (shared ×3) and QUERY_T
        assert service.stats.hits == 2

    def test_per_peer_data_removed_with_peer(self):
        pdms = PDMS("per-peer")
        a = pdms.add_peer("A")
        a.add_relation("R", ["x"])
        pdms.add_storage_description(StorageDescription(
            "A", "sa", parse_query("V(x) :- A:R(x)"), name="sa_store"))
        b = pdms.add_peer("B")
        b.add_relation("R", ["x"])
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x) :- B:R(x)"), name="ab"))
        pdms.add_storage_description(StorageDescription(
            "B", "sb", parse_query("V(x) :- B:R(x)"), name="sb_store"))
        service = QueryService(pdms, data={
            "A": Instance.from_dict({"sa": [(1,)]}),
            "B": Instance.from_dict({"sb": [(2,)]}),
        })
        query = parse_query("Q(x) :- A:R(x)")
        assert service.answer(query) == {(1,), (2,)}
        service.remove_peer("B")
        assert service.answer(query) == {(1,)}

    def test_set_peer_data_on_flat_source_rejected(self):
        service = QueryService(PDMS(), data={"s": [(1,)]})
        with pytest.raises(PDMSConfigurationError):
            service.set_peer_data("A", Instance())

    def test_rejected_add_peer_with_data_leaves_system_unchanged(self):
        """Validation happens before mutation: a retry must not hit a
        duplicate-peer error."""
        service = QueryService(PDMS(), data={"s": [(1,)]})
        with pytest.raises(PDMSConfigurationError):
            service.add_peer("P", data=Instance())
        assert "P" not in service.pdms
        service.add_peer("P")  # retry without data succeeds

    def test_data_override_per_call(self):
        service = _service()
        override = Instance.from_dict({"stored_s": [(7, 7)]})
        assert service.answer(QUERY_R, data=override) == {(7, 7)}
        # The service's own data is untouched.
        assert service.answer(QUERY_R) == {(1, 2), (2, 3), (3, 4)}

    def test_warm_prepopulates(self):
        service = _service()
        misses = service.warm([QUERY_R, QUERY_T, QUERY_R])
        assert misses == 2
        service.answer(QUERY_R)
        assert service.stats.hits >= 2
