"""Unit tests for the observability layer (ISSUE 10).

Covers the metrics registry (counters, gauges, log-bucketed histograms,
weakly-held pull collectors), the tracing core (null-span fast path,
span lifecycle, the thread-ambient span, wire contexts, sampling, the
JSONL sink), the text renderer, the unified ``schema_version`` stats
shapes, and the :meth:`ServiceCluster.describe` snapshot-isolation
regression.
"""

from __future__ import annotations

import gc
import json
import threading

import pytest

from repro.database import Instance
from repro.database.feedback import AdaptiveStats
from repro.obs import (
    METRICS_SCHEMA_VERSION,
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServeSpan,
    Tracer,
    current_span,
    current_wire_context,
    load_sink,
    render_trace,
    wire_context,
)
from repro.pdms import (
    PDMS,
    LoopbackTransport,
    RemotePeerFactSource,
    ScanPolicy,
    ServiceCluster,
    ShardMap,
)
from repro.pdms.distributed.cache_tier import CACHE_PEER, CacheTierClient, FragmentStore
from repro.pdms.materialization import FragmentCacheStats
from repro.pdms.service import ServiceStats


def make_tracer(**kwargs) -> Tracer:
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("sample_rate", 1.0)
    kwargs.setdefault("sink_path", None)
    kwargs.setdefault("registry", MetricsRegistry())
    return Tracer(**kwargs)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_and_gauge_basics(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge()
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == 2.0

    def test_histogram_percentiles_are_ordered_and_bounded(self):
        histogram = Histogram()
        for ms in (1, 2, 3, 5, 8, 13, 80):
            histogram.observe(ms / 1000.0)
        assert histogram.count == 7
        summary = histogram.as_dict()
        assert summary["count"] == 7
        assert 0 < summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert summary["p99_ms"] <= summary["max_ms"] == pytest.approx(80.0)
        assert summary["mean_ms"] == pytest.approx(summary["sum_ms"] / 7)

    def test_histogram_clamps_out_of_range_observations(self):
        histogram = Histogram()
        histogram.observe(-1.0)  # clamps to zero, lands in bucket 0
        histogram.observe(10_000.0)  # beyond the last bound: end bucket
        assert histogram.count == 2
        assert histogram.percentile(1.0) <= 10_000.0

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_instruments_are_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_plain_data_with_schema_version(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        registry.gauge("inflight").set(1.0)
        registry.histogram("latency").observe(0.01)
        registry.register_collector(
            "static", lambda: {"schema_version": METRICS_SCHEMA_VERSION, "x": 1}
        )
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION
        assert snapshot["counters"]["queries"] == 3
        assert snapshot["gauges"]["inflight"] == 1.0
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["collected"]["static"]["x"] == 1
        # Mutating the snapshot never perturbs the live registry.
        snapshot["counters"]["queries"] = 999
        assert registry.snapshot()["counters"]["queries"] == 3

    def test_bound_method_collectors_drop_with_their_owner(self):
        class Owner:
            def stats(self):
                return {"alive": True}

        registry = MetricsRegistry()
        owner = Owner()
        registry.register_collector("owner", owner.stats)
        assert registry.snapshot()["collected"]["owner"] == {"alive": True}
        del owner
        gc.collect()
        assert "owner" not in registry.snapshot()["collected"]

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("x", lambda: {})
        registry.unregister_collector("x")
        assert registry.snapshot()["collected"] == {}


# ---------------------------------------------------------------------------
# The null span (tracing-off fast path)
# ---------------------------------------------------------------------------


class TestNullSpan:
    def test_every_operation_is_a_noop_returning_itself(self):
        assert not NULL_SPAN
        assert not NULL_SPAN.recording
        assert NULL_SPAN.child("anything", x=1) is NULL_SPAN
        assert NULL_SPAN.set("k", "v") is NULL_SPAN
        assert NULL_SPAN.wire_context() is None
        NULL_SPAN.close("error")  # no-op, never raises

    def test_entering_the_null_span_leaves_the_ambient_alone(self):
        assert current_span() is NULL_SPAN
        with NULL_SPAN:
            assert current_span() is NULL_SPAN
        assert current_span() is NULL_SPAN

    def test_disabled_tracer_hands_out_the_null_span(self):
        tracer = make_tracer(enabled=False)
        assert tracer.start_trace("query.answer") is NULL_SPAN

    def test_sampled_out_traces_take_the_null_path(self):
        tracer = make_tracer(sample_rate=0.0)
        assert tracer.start_trace("query.answer") is NULL_SPAN
        assert tracer.health()["sampled_out"] == 1


# ---------------------------------------------------------------------------
# Span lifecycle
# ---------------------------------------------------------------------------


class TestSpanLifecycle:
    def test_with_blocks_build_a_well_formed_tree(self):
        tracer = make_tracer()
        with tracer.start_trace("query.answer", engine="shared") as root:
            with root.child("plan.compile"):
                pass
            with root.child("plan.execute") as execute:
                execute.set("rows", 3)
        trace_id, spans = tracer.last_trace()
        assert trace_id == root.trace_id
        by_name = {record["name"]: record for record in spans}
        assert by_name["query.answer"]["parent_id"] is None
        assert by_name["query.answer"]["attrs"] == {"engine": "shared"}
        for name in ("plan.compile", "plan.execute"):
            assert by_name[name]["parent_id"] == root.span_id
        assert by_name["plan.execute"]["attrs"]["rows"] == 3
        health = tracer.health()
        assert health["started"] == health["finished"] == 3
        assert health["open"] == 0 and health["double_closes"] == 0

    def test_exception_marks_error_without_swallowing(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.start_trace("query.answer"):
                raise RuntimeError("boom")
        _, spans = tracer.last_trace()
        assert spans[0]["status"] == "error"
        assert "RuntimeError" in spans[0]["attrs"]["error"]

    def test_double_close_is_counted_never_recorded_twice(self):
        tracer = make_tracer()
        span = tracer.start_trace("query.answer")
        span.close()
        span.close("error")
        assert tracer.health()["double_closes"] == 1
        _, spans = tracer.last_trace()
        assert len(spans) == 1 and spans[0]["status"] == "ok"

    def test_explicit_status_wins(self):
        tracer = make_tracer()
        span = tracer.start_trace("scan.attempt")
        span.close("cancelled")
        assert tracer.last_trace()[1][0]["status"] == "cancelled"

    def test_span_durations_feed_named_histograms(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry=registry)
        with tracer.start_trace("query.answer"):
            pass
        histograms = registry.snapshot()["histograms"]
        assert histograms["span.query.answer"]["count"] == 1

    def test_trace_ring_is_bounded(self):
        tracer = make_tracer(max_traces=2)
        ids = []
        for _ in range(4):
            span = tracer.start_trace("query.answer")
            ids.append(span.trace_id)
            span.close()
        kept = tracer.trace_ids()
        assert len(kept) == 2 and kept == ids[-2:]
        assert tracer.trace(ids[0]) == []


# ---------------------------------------------------------------------------
# The thread-ambient span
# ---------------------------------------------------------------------------


class TestAmbientSpan:
    def test_with_entry_installs_and_exit_restores(self):
        tracer = make_tracer()
        assert current_span() is NULL_SPAN
        with tracer.start_trace("query.answer") as root:
            assert current_span() is root
            with root.child("plan.execute") as inner:
                assert current_span() is inner
            assert current_span() is root
        assert current_span() is NULL_SPAN

    def test_manually_closed_spans_never_touch_the_ambient(self):
        tracer = make_tracer()
        with tracer.start_trace("query.answer") as root:
            attempt = root.child("scan.attempt")  # hedge-race style: no with
            assert current_span() is root
            attempt.close("cancelled")
            assert current_span() is root

    def test_ambient_is_thread_local(self):
        tracer = make_tracer()
        seen = {}
        with tracer.start_trace("query.answer"):
            thread = threading.Thread(
                target=lambda: seen.setdefault("span", current_span())
            )
            thread.start()
            thread.join()
        assert seen["span"] is NULL_SPAN

    def test_restores_on_exception(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.start_trace("query.answer"):
                raise ValueError("boom")
        assert current_span() is NULL_SPAN


# ---------------------------------------------------------------------------
# Wire context propagation
# ---------------------------------------------------------------------------


class TestWireContext:
    def test_install_restore_and_none_is_valid(self):
        assert current_wire_context() is None
        ctx = {"trace_id": "t", "span_id": "s"}
        with wire_context(ctx):
            assert current_wire_context() == ctx
            with wire_context(None):  # untraced inner RPC
                assert current_wire_context() is None
            assert current_wire_context() == ctx
        assert current_wire_context() is None

    def test_serve_span_records_under_a_wire_context(self):
        serve = ServeSpan({"trace_id": "t1", "span_id": "p1"}, "rpc.serve.scan")
        with serve:
            serve.set("scans", 2)
        [record] = serve.records()
        assert record["trace_id"] == "t1"
        assert record["parent_id"] == "p1"
        assert record["remote"] is True
        assert record["attrs"]["scans"] == 2

    def test_serve_span_is_inert_without_a_context(self):
        for context in (None, {}, {"span_id": "only"}, "garbage"):
            serve = ServeSpan(context, "rpc.serve.scan")
            with serve:
                serve.set("scans", 2)
            assert not serve.recording
            assert serve.records() == []

    def test_adopt_grafts_worker_records_into_the_parent_trace(self):
        tracer = make_tracer()
        with tracer.start_trace("query.answer") as root:
            serve = ServeSpan(root.wire_context(), "rpc.serve.scan", peer="A")
            with serve:
                pass
            assert tracer.adopt(serve.records()) == 1
        _, spans = tracer.last_trace()
        remote = next(r for r in spans if r.get("remote"))
        assert remote["parent_id"] == root.span_id
        assert tracer.health()["adopted"] == 1

    def test_adopt_drops_malformed_records(self):
        tracer = make_tracer()
        assert tracer.adopt([None, "x", {}, {"trace_id": "t"}]) == 0


# ---------------------------------------------------------------------------
# Exporters: renderer and JSONL sink
# ---------------------------------------------------------------------------


class TestExporters:
    def test_renderer_draws_the_tree_with_attrs_and_status(self):
        tracer = make_tracer()
        with tracer.start_trace("query.answer", engine="distributed") as root:
            with root.child("plan.execute") as execute:
                attempt = execute.child("scan.attempt", peer="A", kind="hedge")
                attempt.close("cancelled")
            serve = ServeSpan(root.wire_context(), "rpc.serve.scan")
            with serve:
                pass
            tracer.adopt(serve.records())
        _, spans = tracer.last_trace()
        text = render_trace(spans)
        assert "query.answer" in text and "engine=distributed" in text
        assert "├─" in text or "└─" in text
        assert "status=cancelled" in text
        assert "~ rpc.serve.scan" in text  # remote marker, no timeline bar

    def test_renderer_surfaces_orphans_instead_of_dropping_them(self):
        records = [
            {"name": "query.answer", "trace_id": "t", "span_id": "r",
             "parent_id": None, "start_ns": 0, "duration_us": 10,
             "status": "ok", "attrs": {}},
            {"name": "scan.unit", "trace_id": "t", "span_id": "o",
             "parent_id": "gone", "start_ns": 5, "duration_us": 1,
             "status": "ok", "attrs": {}},
        ]
        text = render_trace(records)
        assert "(orphans" in text and "scan.unit" in text

    def test_renderer_handles_an_empty_trace(self):
        assert render_trace([]) == "(empty trace)"

    def test_sink_flushes_one_json_line_per_trace_at_root_close(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = make_tracer(sink_path=str(sink))
        for _ in range(2):
            with tracer.start_trace("query.answer") as root:
                with root.child("plan.compile"):
                    pass
        documents = load_sink(str(sink))
        assert len(documents) == 2
        for document in documents:
            assert document["schema_version"] == TRACE_SCHEMA_VERSION
            assert document["root"] == "query.answer"
            assert len(document["spans"]) == 2
        # The sunk spans render exactly like the in-memory ones.
        assert "plan.compile" in render_trace(documents[-1]["spans"])
        with open(sink, encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)  # every line is standalone JSON

    def test_broken_sink_disables_flushing_instead_of_failing(self, tmp_path):
        tracer = make_tracer(sink_path=str(tmp_path))  # a directory: OSError
        with tracer.start_trace("query.answer"):
            pass  # must not raise
        assert tracer.health()["finished"] == 1


# ---------------------------------------------------------------------------
# Unified stats schema (satellite: every as_dict carries schema_version)
# ---------------------------------------------------------------------------


class TestSchemaUnification:
    def test_every_stats_shape_carries_the_schema_version(self):
        transport = LoopbackTransport(
            {"A": Instance.from_dict({"r": [(1, 2)]})}
        )
        source = RemotePeerFactSource(transport)
        shapes = [
            ServiceStats().as_dict(),
            FragmentCacheStats().as_dict(),
            AdaptiveStats().as_dict(),
            ScanPolicy().as_dict(),
            FragmentStore().stats(),
            CacheTierClient(
                LoopbackTransport({CACHE_PEER: FragmentStore()})
            ).stats(),
            source.scatter_stats(),
            source.latency_stats(),
            ShardMap().shard_by_hash("r", 0, ["A"]).as_dict(),
        ]
        for shape in shapes:
            assert shape["schema_version"] == METRICS_SCHEMA_VERSION

    def test_shard_map_as_dict_wraps_the_legacy_describe_shape(self):
        shard_map = ShardMap().shard_by_hash("r", 0, ["A", "B"])
        wrapped = shard_map.as_dict()
        assert wrapped["relations"] == shard_map.describe()
        assert wrapped["relations"]["r"]["shards"] == 2


# ---------------------------------------------------------------------------
# Cluster describe(): metrics surface + snapshot isolation (satellite)
# ---------------------------------------------------------------------------


def _single_peer_cluster():
    data = {"A": Instance.from_dict({"r": [(1, 10), (2, 20)]})}
    return ServiceCluster(
        pdms=PDMS("obs"),
        transport=LoopbackTransport(data),
        scan_policy=ScanPolicy(retries=0, hedging=False),
    )


class TestDescribeSnapshot:
    def test_describe_embeds_the_unified_metrics_snapshot(self):
        with _single_peer_cluster() as cluster:
            cluster.source.get_matching("r", (1, object()))
            snapshot = cluster.describe()
            metrics = snapshot["metrics"]
            assert metrics["schema_version"] == METRICS_SCHEMA_VERSION
            collected = metrics["collected"]
            assert collected["scatter"]["schema_version"] == 1
            assert collected["peer_latency"]["schema_version"] == 1
            assert collected["scan_policy"]["retries"] == 0
            assert collected["service"]["schema_version"] == 1

    def test_mutating_a_snapshot_never_perturbs_live_state(self):
        from repro.datalog.indexing import WILDCARD

        with _single_peer_cluster() as cluster:
            cluster.source.get_matching("r", (WILDCARD, WILDCARD))
            first = cluster.describe()
            # Vandalize every nested container we can reach.
            first["scatter"]["full_scans"] = 10_000
            first["peer_latency"]["peers"].clear()
            first["metrics"]["collected"].clear()
            first["stats"] = None
            second = cluster.describe()
            assert second["scatter"]["full_scans"] != 10_000
            assert "A" in second["peer_latency"]["peers"]
            assert "scatter" in second["metrics"]["collected"]

    def test_service_metrics_snapshot_tracks_answer_latency(self):
        from repro.datalog import parse_query
        from repro.pdms import QueryService, StorageDescription

        pdms = PDMS("obs-svc")
        top = pdms.add_peer("T")
        top.add_relation("A", ["x", "y"])
        pdms.add_peer("P1")
        pdms.add_storage_description(StorageDescription(
            "P1", "sa", parse_query("V(x, y) :- T:A(x, y)"),
            exact=False, name="store_sa",
        ))
        service = QueryService(
            pdms, data={"P1": Instance.from_dict({"sa": [(1, 2)]})}
        )
        query = parse_query("Q(x, y) :- T:A(x, y)")
        assert service.answer(query)
        snapshot = service.metrics_snapshot()
        assert snapshot["histograms"]["service.answer_seconds"]["count"] >= 1
        assert snapshot["collected"]["service"]["schema_version"] == 1
