"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import (
    Atom,
    ComparisonAtom,
    atoms_variables,
    comparison_atoms,
    compare_values,
    relational_atoms,
)
from repro.datalog.terms import Constant, Variable


class TestAtom:
    def test_coerces_python_scalars_to_constants(self):
        atom = Atom("R", [Variable("x"), "a", 3])
        assert atom.args[1] == Constant("a")
        assert atom.args[2] == Constant(3)

    def test_arity(self):
        assert Atom("R", [Variable("x"), Variable("y")]).arity == 2
        assert Atom("R", []).arity == 0

    def test_variables_and_constants(self):
        atom = Atom("R", [Variable("x"), Constant(1), Variable("x")])
        assert list(atom.variables()) == [Variable("x"), Variable("x")]
        assert atom.variable_set() == frozenset({Variable("x")})
        assert list(atom.constants()) == [Constant(1)]

    def test_substitute_leaves_unmapped_variables(self):
        atom = Atom("R", [Variable("x"), Variable("y")])
        result = atom.substitute({Variable("x"): Constant(7)})
        assert result == Atom("R", [Constant(7), Variable("y")])

    def test_substitute_does_not_touch_constants(self):
        atom = Atom("R", [Constant("a")])
        assert atom.substitute({Variable("a"): Constant("b")}) == atom

    def test_rename_predicate(self):
        atom = Atom("R", [Variable("x")])
        assert atom.rename_predicate("S") == Atom("S", [Variable("x")])

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("", [Variable("x")])

    def test_equality_and_hash(self):
        assert Atom("R", [Variable("x")]) == Atom("R", [Variable("x")])
        assert hash(Atom("R", [Variable("x")])) == hash(Atom("R", [Variable("x")]))
        assert Atom("R", [Variable("x")]) != Atom("S", [Variable("x")])

    def test_str_shows_qualified_predicates(self):
        atom = Atom("H:Doctor", [Variable("sid"), Constant("FH")])
        assert str(atom) == 'H:Doctor(sid, "FH")'


class TestComparisonAtom:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ComparisonAtom(Variable("x"), "~", Constant(1))

    def test_flipped(self):
        comparison = ComparisonAtom(Variable("x"), "<", Constant(5))
        assert comparison.flipped() == ComparisonAtom(Constant(5), ">", Variable("x"))

    def test_negated(self):
        comparison = ComparisonAtom(Variable("x"), "<=", Variable("y"))
        assert comparison.negated() == ComparisonAtom(Variable("x"), ">", Variable("y"))

    def test_ground_evaluation(self):
        assert ComparisonAtom(Constant(2), "<", Constant(3)).evaluate_ground()
        assert not ComparisonAtom(Constant(3), "=", Constant(4)).evaluate_ground()

    def test_evaluate_ground_requires_groundness(self):
        with pytest.raises(ValueError):
            ComparisonAtom(Variable("x"), "<", Constant(3)).evaluate_ground()

    def test_substitute(self):
        comparison = ComparisonAtom(Variable("x"), "<", Variable("y"))
        result = comparison.substitute({Variable("x"): Constant(1)})
        assert result == ComparisonAtom(Constant(1), "<", Variable("y"))

    def test_variables(self):
        comparison = ComparisonAtom(Variable("x"), "!=", Constant(0))
        assert comparison.variable_set() == frozenset({Variable("x")})


class TestHelpers:
    def test_compare_values_same_types(self):
        assert compare_values(1, "<", 2)
        assert compare_values("a", "<", "b")
        assert not compare_values(2, "<=", 1)

    def test_compare_values_mixed_types_is_total(self):
        # Mixed-type comparisons do not raise; equality is plain equality.
        assert not compare_values(1, "=", "1")
        assert compare_values(1, "!=", "1")
        assert compare_values(1, "<", "1") != compare_values("1", "<", 1)

    def test_atoms_variables(self):
        atoms = [
            Atom("R", [Variable("x"), Variable("y")]),
            ComparisonAtom(Variable("z"), "<", Constant(1)),
        ]
        assert atoms_variables(atoms) == frozenset(
            {Variable("x"), Variable("y"), Variable("z")}
        )

    def test_relational_and_comparison_split(self):
        body = [
            Atom("R", [Variable("x")]),
            ComparisonAtom(Variable("x"), "<", Constant(1)),
        ]
        assert relational_atoms(body) == [body[0]]
        assert comparison_atoms(body) == [body[1]]
