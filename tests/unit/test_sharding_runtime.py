"""Unit tests for shard-aware placement and the cluster cache tier (ISSUE 8).

Covers stable cross-process routing hashes, the hash/range partition
schemes, :class:`ShardMap` registration and the pruning rule,
:func:`auto_shard` splitting (including its version-keyed memo), routed
inserts, the :class:`FragmentStore` cache peer, the
:class:`CacheTierClient` failure breaker, the
:class:`FragmentCache`/tier integration, the new ``REPRO_SHARDS`` /
``REPRO_CACHE_TIER`` knobs, and the sharded scatter path end to end
(per-shard scan counters, pruned-vs-fanout accounting, cluster
describe/insert).
"""

from __future__ import annotations

import pickle

import pytest

from repro import config
from repro.database import Instance
from repro.datalog import parse_query
from repro.datalog.indexing import WILDCARD
from repro.errors import (
    EvaluationError,
    InstanceError,
    PDMSConfigurationError,
)
from repro.pdms import (
    PDMS,
    CacheTierClient,
    FragmentCache,
    FragmentStore,
    HashPartition,
    LoopbackTransport,
    RangePartition,
    RemotePeerFactSource,
    ServiceCluster,
    ShardMap,
    StorageDescription,
    answer_query,
    auto_shard,
)
from repro.pdms.distributed import insert_routed, stable_shard_hash
from repro.pdms.distributed.cache_tier import (
    CACHE_PEER,
    EVICT_RELATION,
    FRAGMENTS_RELATION,
    default_cache_tier,
    reset_default_cache_tier,
)


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------

class TestStableShardHash:
    def test_equal_numerics_route_identically(self):
        assert stable_shard_hash(1) == stable_shard_hash(1.0)
        assert stable_shard_hash(1) == stable_shard_hash(True)
        assert stable_shard_hash(0) == stable_shard_hash(False)

    def test_distinct_values_usually_differ(self):
        hashes = {stable_shard_hash(v) for v in range(100)}
        assert len(hashes) == 100

    def test_strings_do_not_collide_with_their_bytes(self):
        assert stable_shard_hash("abc") != stable_shard_hash(b"abc")

    def test_nested_tuples_hash_by_content(self):
        assert stable_shard_hash((1, ("a", 2.0))) == stable_shard_hash(
            (1.0, ("a", 2))
        )

    def test_deterministic_across_calls(self):
        # Python's builtin hash() is seed-randomized for strings; the
        # routing hash must not be (placement crosses processes).
        assert stable_shard_hash("user-42") == stable_shard_hash("user-42")


class TestPartitionSchemes:
    def test_hash_partition_spreads_and_validates(self):
        part = HashPartition(0, 4)
        assert {part.shard_of(value) for value in range(200)} == {0, 1, 2, 3}
        with pytest.raises(PDMSConfigurationError):
            HashPartition(0, 0)
        with pytest.raises(PDMSConfigurationError):
            HashPartition(-1, 2)

    def test_range_partition_bisects_on_bounds(self):
        part = RangePartition(0, (10, 20))
        assert part.shards == 3
        assert part.shard_of(5) == 0
        assert part.shard_of(10) == 1  # bounds close on the left
        assert part.shard_of(15) == 1
        assert part.shard_of(20) == 2
        assert part.shard_of(99) == 2

    def test_range_partition_validates_bounds(self):
        with pytest.raises(PDMSConfigurationError):
            RangePartition(0, ())
        with pytest.raises(PDMSConfigurationError):
            RangePartition(0, (20, 10))
        with pytest.raises(PDMSConfigurationError):
            RangePartition(0, (1, "x"))

    def test_range_incomparable_value_raises_type_error(self):
        with pytest.raises(TypeError):
            RangePartition(0, (10, 20)).shard_of("not-a-number")


# ---------------------------------------------------------------------------
# The shard map
# ---------------------------------------------------------------------------

class TestShardMap:
    def map_two_shards(self):
        return ShardMap().shard_by_hash("R", 0, ["w0", "w1"])

    def test_registration_validates_shape(self):
        with pytest.raises(PDMSConfigurationError):
            ShardMap().shard_by_range("R", 0, (10,), ["w0"])  # needs 2 groups
        with pytest.raises(PDMSConfigurationError):
            ShardMap().shard_by_hash("R", 0, ["w0", ()])  # empty group
        sm = self.map_two_shards()
        with pytest.raises(PDMSConfigurationError):
            sm.shard_by_hash("R", 0, ["w0", "w1"])  # re-registration

    def test_pruning_binds_partition_column(self):
        sm = self.map_two_shards()
        part = sm.partition("R")
        for value in range(10):
            owners = sm.owners_for_pattern("R", (value, WILDCARD))
            assert owners == (f"w{part.shard_of(value)}",)

    def test_pruning_falls_back_to_fanout(self):
        sm = self.map_two_shards()
        assert sm.owners_for_pattern("R", (WILDCARD, WILDCARD)) == ("w0", "w1")
        # A pattern too short to cover the partition column fans out too.
        sm2 = ShardMap().shard_by_hash("S", 2, ["w0", "w1"])
        assert sm2.owners_for_pattern("S", (1,)) == ("w0", "w1")

    def test_pruning_unknown_relation_is_none(self):
        assert self.map_two_shards().owners_for_pattern("X", (1,)) is None

    def test_range_incomparable_constant_fans_out(self):
        sm = ShardMap().shard_by_range("R", 0, (10,), ["lo", "hi"])
        assert sm.owners_for_pattern("R", ("oops",)) == ("lo", "hi")
        assert sm.owners_for_pattern("R", (3,)) == ("lo",)
        assert sm.owners_for_pattern("R", (30,)) == ("hi",)

    def test_write_routing_and_replication(self):
        sm = ShardMap().shard_by_range(
            "R", 0, (10,), [("lo-a", "lo-b"), "hi"]
        )
        routed = sm.route_rows("R", [(1, "x"), (2, "y"), (50, "z")])
        assert routed["lo-a"] == [(1, "x"), (2, "y")]
        assert routed["lo-b"] == [(1, "x"), (2, "y")]  # replica copies
        assert routed["hi"] == [(50, "z")]

    def test_owners_for_row_errors(self):
        sm = self.map_two_shards()
        with pytest.raises(PDMSConfigurationError):
            sm.owners_for_row("X", (1,))
        with pytest.raises(ValueError):
            ShardMap().shard_by_hash("S", 2, ["w0", "w1"]).owners_for_row(
                "S", (1,)
            )  # row too narrow for the partition column
        rng = ShardMap().shard_by_range("T", 0, (10,), ["lo", "hi"])
        with pytest.raises(ValueError):
            rng.owners_for_row("T", ("incomparable",))

    def test_describe_is_json_friendly(self):
        snapshot = self.map_two_shards().describe()
        assert snapshot["R"] == {
            "scheme": "HashPartition",
            "column": 0,
            "shards": 2,
            "peers": ["w0", "w1"],
        }


class TestAutoShard:
    def test_shards_partition_the_data_exactly(self):
        inst = Instance.from_dict({"R": {(i, i * 2) for i in range(40)}})
        sm, workers = auto_shard({"P": inst}, 4)
        assert sorted(workers) == ["P#0", "P#1", "P#2", "P#3"]
        union = set()
        for worker in workers.values():
            rows = set(worker.get_tuples("R"))
            assert not rows & union  # disjoint
            union |= rows
        assert union == set(inst.get_tuples("R"))
        assert sm.is_sharded("R")

    def test_rows_land_on_the_hash_owner(self):
        inst = Instance.from_dict({"R": {(i, "v") for i in range(20)}})
        sm, workers = auto_shard({"P": inst}, 3)
        part = sm.partition("R")
        for i in range(20):
            owner = f"P#{part.shard_of(i)}"
            assert (i, "v") in workers[owner].get_tuples("R")

    def test_split_is_memoized_until_data_moves(self):
        inst = Instance.from_dict({"R": {(1, 2)}})
        _, first = auto_shard({"P": inst}, 2)
        _, second = auto_shard({"P": inst}, 2)
        assert all(first[name] is second[name] for name in first)
        inst.add("R", (9, 9))
        _, third = auto_shard({"P": inst}, 2)
        assert any(first[name] is not third[name] for name in first)
        assert (9, 9) in set().union(
            *(set(w.get_tuples("R")) for w in third.values())
        )

    def test_shard_count_change_resplits(self):
        inst = Instance.from_dict({"R": {(1, 2)}})
        _, two = auto_shard({"P": inst}, 2)
        _, three = auto_shard({"P": inst}, 3)
        assert len(three) == 3 and len(two) == 2

    def test_too_few_shards_rejected(self):
        with pytest.raises(PDMSConfigurationError):
            auto_shard({"P": Instance()}, 0)


class TestInsertRouted:
    def test_routes_to_owning_shards(self):
        inst = Instance.from_dict({"R": {(i, "old") for i in range(8)}})
        sm, workers = auto_shard({"P": inst}, 2)
        transport = LoopbackTransport(workers)
        count = insert_routed(transport, sm, "R", [(100, "new"), (101, "new")])
        assert count == 2
        part = sm.partition("R")
        for value in (100, 101):
            owner = f"P#{part.shard_of(value)}"
            assert (value, "new") in workers[owner].get_tuples("R")

    def test_unsharded_needs_fallback(self):
        transport = LoopbackTransport({"P": Instance()})
        with pytest.raises(PDMSConfigurationError):
            insert_routed(transport, None, "R", [(1,)])
        assert insert_routed(transport, None, "R", [(1,)], ["P"]) == 1
        assert set(transport.instance("P").get_tuples("R")) == {(1,)}

    def test_empty_rows_are_free(self):
        transport = LoopbackTransport({"P": Instance()})
        assert insert_routed(transport, None, "R", []) == 0
        assert transport.rpc_count == 0


# ---------------------------------------------------------------------------
# The cache peer
# ---------------------------------------------------------------------------

class TestFragmentStore:
    def test_instance_surface_matches_wire_expectations(self):
        store = FragmentStore()
        assert set(store.relations()) == {FRAGMENTS_RELATION, EVICT_RELATION}
        assert store.arity(FRAGMENTS_RELATION) == 4
        assert store.arity(EVICT_RELATION) == 1
        assert store.arity("other") is None
        assert store.cardinality(FRAGMENTS_RELATION) == 0

    def test_put_then_get_exact_token(self):
        store = FragmentStore()
        store.add(FRAGMENTS_RELATION, ("k", ("t",), ("R",), b"payload"))
        rows = store.get_matching(FRAGMENTS_RELATION, ("k", ("t",), WILDCARD, WILDCARD))
        assert rows == (("k", ("t",), ("R",), b"payload"),)
        # Token mismatch is an empty result, but the entry stays.
        assert store.get_matching(
            FRAGMENTS_RELATION, ("k", ("moved",), WILDCARD, WILDCARD)
        ) == ()
        assert len(store) == 1

    def test_version_moves_on_writes(self):
        store = FragmentStore()
        before = store.data_version(FRAGMENTS_RELATION)
        store.add(FRAGMENTS_RELATION, ("k", "t", ("R",), b"x"))
        assert store.data_version(FRAGMENTS_RELATION) != before

    def test_evict_relation_drops_readers(self):
        store = FragmentStore()
        store.add(FRAGMENTS_RELATION, ("k1", "t", ("R",), b"x"))
        store.add(FRAGMENTS_RELATION, ("k2", "t", ("S",), b"y"))
        store.add(EVICT_RELATION, ("R",))
        assert store.get_matching(
            FRAGMENTS_RELATION, ("k1", WILDCARD, WILDCARD, WILDCARD)
        ) == ()
        assert store.get_matching(
            FRAGMENTS_RELATION, ("k2", WILDCARD, WILDCARD, WILDCARD)
        )
        assert store.invalidations == 1

    def test_lru_eviction_within_budget(self):
        store = FragmentStore(max_bytes=700)  # fits two ~256+payload entries
        store.add(FRAGMENTS_RELATION, ("a", "t", (), b"x" * 50))
        store.add(FRAGMENTS_RELATION, ("b", "t", (), b"y" * 50))
        # Freshen "a" so "b" is the LRU victim.
        assert store.get_matching(FRAGMENTS_RELATION, ("a", "t", WILDCARD, WILDCARD))
        store.add(FRAGMENTS_RELATION, ("c", "t", (), b"z" * 50))
        assert store.evictions == 1
        assert store.get_matching(FRAGMENTS_RELATION, ("b", "t", WILDCARD, WILDCARD)) == ()
        assert store.get_matching(FRAGMENTS_RELATION, ("a", "t", WILDCARD, WILDCARD))

    def test_oversize_payload_dropped_silently(self):
        store = FragmentStore(max_bytes=300)
        store.add(FRAGMENTS_RELATION, ("big", "t", (), b"x" * 1000))
        assert len(store) == 0

    def test_misuse_raises_instance_error(self):
        store = FragmentStore()
        with pytest.raises(InstanceError):
            store.add("other", ("x",))
        with pytest.raises(InstanceError):
            store.add(FRAGMENTS_RELATION, ("too", "few"))
        with pytest.raises(InstanceError):
            store.add(FRAGMENTS_RELATION, ("k", "t", (), "not-bytes"))
        with pytest.raises(InstanceError):
            store.get_matching(FRAGMENTS_RELATION, ("k",))
        with pytest.raises(EvaluationError):
            FragmentStore(max_bytes=0)

    def test_pickling_ships_an_empty_store(self):
        store = FragmentStore(max_bytes=12345)
        store.add(FRAGMENTS_RELATION, ("k", "t", (), b"x"))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.max_bytes == 12345
        assert len(clone) == 0  # soft state never crosses the boundary


class TestCacheTierClient:
    def tier(self, **kwargs):
        store = FragmentStore()
        transport = LoopbackTransport({CACHE_PEER: store})
        return store, transport, CacheTierClient(transport, **kwargs)

    def test_round_trip(self):
        _, _, client = self.tier()
        assert client.get("k", ("t",)) == ("miss", None)
        assert client.put("k", ("t",), ["R"], {"rows": (1, 2)})
        assert client.get("k", ("t",)) == ("hit", {"rows": (1, 2)})
        assert client.get("k", ("other",)) == ("miss", None)

    def test_transport_fault_degrades(self):
        _, transport, client = self.tier()
        transport.fail_peer(CACHE_PEER)
        assert client.get("k", "t") == ("error", None)
        assert client.put("k", "t", [], 1) is False
        assert client.invalidate_relations(["R"]) is False
        assert client.failures == 3

    def test_breaker_trips_and_resets(self):
        store, transport, client = self.tier(max_failures=2)
        transport.fail_peer(CACHE_PEER)
        client.get("k", "t")
        client.get("k", "t")
        assert client.degraded
        transport.restore_peer(CACHE_PEER)
        # Tripped breaker short-circuits without touching the wire.
        rpcs = transport.rpc_count
        assert client.get("k", "t") == ("error", None)
        assert transport.rpc_count == rpcs
        client.reset()
        assert client.get("k", "t") == ("miss", None)

    def test_unpicklable_values_stay_local(self):
        _, _, client = self.tier()
        assert client.put("k", "t", [], lambda: None) is False
        assert client.failures == 0  # not a cache fault


class TestFragmentCacheTierIntegration:
    def shared(self):
        store = FragmentStore()
        transport = LoopbackTransport({CACHE_PEER: store})
        return store, CacheTierClient(transport), transport

    def test_cross_cache_hit_skips_compute(self):
        _, client, _ = self.shared()
        first = FragmentCache(tier=client)
        second = FragmentCache(tier=client)
        calls = []

        def compute():
            calls.append(1)
            return ((1, 2),)

        token = (("R", ("v", 1)),)
        assert first.get_or_compute("k", token, ["R"], compute) == ((1, 2),)
        assert second.get_or_compute("k", token, ["R"], compute) == ((1, 2),)
        assert len(calls) == 1
        assert first.stats.tier_puts == 1
        assert second.stats.tier_hits == 1
        # The tier hit was promoted locally: a repeat is a local hit.
        assert second.get_or_compute("k", token, ["R"], compute) == ((1, 2),)
        assert second.stats.hits == 1

    def test_peek_probes_without_counting_local_stats(self):
        _, client, _ = self.shared()
        cache = FragmentCache(tier=client)
        token = (("R", ("v", 1)),)
        assert cache.peek("k", token, ["R"]) is False
        cache.get_or_compute("k", token, ["R"], lambda: ((1,),))
        misses = cache.stats.misses
        assert cache.peek("k", token, ["R"]) is True
        assert cache.stats.misses == misses
        assert cache.peek("k", (("R", ("v", 2)),), ["R"]) is False

    def test_peek_promotes_tier_hits(self):
        _, client, _ = self.shared()
        warmer = FragmentCache(tier=client)
        token = (("R", ("v", 1)),)
        warmer.get_or_compute("k", token, ["R"], lambda: ((1,),))
        fresh = FragmentCache(tier=client)
        assert fresh.peek("k", token, ["R"]) is True
        assert fresh.stats.tier_hits == 1
        calls = []
        fresh.get_or_compute("k", token, ["R"], lambda: calls.append(1))
        assert not calls  # served locally after the promotion

    def test_invalidate_relations_evicts_remotely(self):
        store, client, _ = self.shared()
        cache = FragmentCache(tier=client)
        token = (("R", ("v", 1)),)
        cache.get_or_compute("k", token, ["R"], lambda: ((1,),))
        assert len(store) == 1
        cache.invalidate_relations(["R"])
        assert len(store) == 0
        assert FragmentCache(tier=client).peek("k", token, ["R"]) is False

    def test_clear_stays_local(self):
        store, client, _ = self.shared()
        cache = FragmentCache(tier=client)
        cache.get_or_compute("k", "t", ["R"], lambda: ((1,),))
        cache.clear()
        assert len(store) == 1  # other processes keep their warm entries

    def test_failed_tier_degrades_to_compute(self):
        _, client, transport = self.shared()
        transport.fail_peer(CACHE_PEER)
        cache = FragmentCache(tier=client)
        value = cache.get_or_compute("k", "t", ["R"], lambda: ((9,),))
        assert value == ((9,),)
        assert cache.stats.tier_degraded > 0
        assert cache.stats.tier_hits == 0

    def test_stats_surface_in_as_dict(self):
        _, client, _ = self.shared()
        cache = FragmentCache(tier=client)
        cache.get_or_compute("k", "t", ["R"], lambda: ((1,),))
        snapshot = cache.stats.as_dict()
        for counter in ("tier_hits", "tier_misses", "tier_puts", "tier_degraded"):
            assert counter in snapshot

    def test_attach_tier_later(self):
        _, client, _ = self.shared()
        cache = FragmentCache()
        assert cache.tier is None
        cache.attach_tier(client)
        assert cache.tier is client
        cache.attach_tier(None)
        assert cache.tier is None


class TestDefaultCacheTier:
    def test_process_global_singleton(self):
        reset_default_cache_tier()
        try:
            assert default_cache_tier() is default_cache_tier()
        finally:
            reset_default_cache_tier()


# ---------------------------------------------------------------------------
# Config knobs
# ---------------------------------------------------------------------------

class TestShardingKnobs:
    def test_shards_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert config.shards() == 0

    def test_shards_parses_and_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert config.shards() == 4
        monkeypatch.setenv("REPRO_SHARDS", "banana")
        with pytest.raises(EvaluationError):
            config.shards()
        monkeypatch.setenv("REPRO_SHARDS", "-1")
        with pytest.raises(EvaluationError):
            config.shards()

    def test_cache_tier_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_TIER", raising=False)
        assert config.cache_tier_enabled() is False

    def test_cache_tier_parses_and_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_TIER", "1")
        assert config.cache_tier_enabled() is True
        monkeypatch.setenv("REPRO_CACHE_TIER", "yes")
        with pytest.raises(EvaluationError):
            config.cache_tier_enabled()

    def test_max_inflight_alias_still_importable(self):
        from repro.pdms.distributed import max_inflight_from_env

        assert max_inflight_from_env() == config.max_inflight()


# ---------------------------------------------------------------------------
# The sharded scatter path end to end
# ---------------------------------------------------------------------------

def sharded_setup(shards=4):
    inst = Instance.from_dict({"sr": {(i, f"v{i}") for i in range(32)}})
    shard_map, workers = auto_shard({"P": inst}, shards)
    transport = LoopbackTransport(workers)
    source = RemotePeerFactSource(transport, shard_map=shard_map)
    return inst, shard_map, workers, transport, source


class TestShardedSource:
    def test_point_lookup_touches_only_its_owning_shard(self):
        _, shard_map, _, transport, source = sharded_setup()
        owner = shard_map.owners_for_pattern("sr", (7, WILDCARD))[0]
        source.get_matching("sr", (7, WILDCARD))
        for peer in transport.peers():
            expected = 1 if peer == owner else 0
            assert transport.scan_count(peer) == expected
        stats = source.scatter_stats()
        assert stats["pruned_scans"] == 1
        assert stats["fanout_scans"] == 0

    def test_unpruned_scan_fans_out_and_unions(self):
        inst, _, _, transport, source = sharded_setup()
        rows = source.get_matching("sr", (WILDCARD, WILDCARD))
        assert set(rows) == set(inst.get_tuples("sr"))
        assert all(transport.scan_count(peer) == 1 for peer in transport.peers())
        assert source.scatter_stats()["fanout_scans"] == 1

    def test_sharded_equals_unsharded(self):
        inst, _, _, _, source = sharded_setup()
        flat = RemotePeerFactSource(LoopbackTransport({"P": inst}))
        for pattern in [(WILDCARD, WILDCARD), (3, WILDCARD), (WILDCARD, "v5")]:
            assert set(source.get_matching("sr", pattern)) == set(
                flat.get_matching("sr", pattern)
            )

    def test_composite_token_moves_with_any_shard(self):
        _, shard_map, workers, _, source = sharded_setup()
        before = source.data_version("sr")
        owner = shard_map.owners_for_row("sr", (1000, "new"))[0]
        workers[owner].add("sr", (1000, "new"))
        source.refresh()
        assert source.data_version("sr") != before

    def test_prefetch_wave_accounting(self):
        _, _, _, _, source = sharded_setup()
        source.prefetch([("sr", (3, WILDCARD))])
        assert source.scatter_stats()["pruned_waves"] == 1
        source.prefetch([("sr", (WILDCARD, WILDCARD)), ("sr", (4, WILDCARD))])
        stats = source.scatter_stats()
        assert stats["fanout_waves"] == 1
        assert stats["pruned_scans"] == 2
        # Already-memoized requests start no new wave.
        source.prefetch([("sr", (3, WILDCARD))])
        assert source.scatter_stats()["pruned_waves"] == 1

    def test_explicit_owner_restriction_wins(self):
        _, shard_map, _, transport, source = sharded_setup()
        owners = shard_map.owners_for_pattern("sr", (9, WILDCARD))
        source.prefetch([("sr", (9, WILDCARD), owners)])
        assert sum(transport.scan_count(p) for p in transport.peers()) == 1


def single_relation_pdms():
    pdms = PDMS("sharded")
    top = pdms.add_peer("T")
    top.add_relation("R", ["x", "y"])
    pdms.add_peer("P")
    pdms.add_storage_description(StorageDescription(
        "P", "sr", parse_query("V(x, y) :- T:R(x, y)"),
        exact=False, name="store_sr",
    ))
    return pdms


class TestShardedEngine:
    def test_repro_shards_answers_match_unsharded(self, monkeypatch):
        pdms = single_relation_pdms()
        data = {"P": Instance.from_dict({"sr": {(i, i % 5) for i in range(30)}})}
        query = parse_query("Q(x, y) :- T:R(x, y)")
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        plain = answer_query(pdms, query, data, engine="distributed")
        monkeypatch.setenv("REPRO_SHARDS", "4")
        sharded = answer_query(pdms, query, data, engine="distributed")
        assert set(sharded) == set(plain)

    def test_point_query_is_pruned_under_repro_shards(self, monkeypatch):
        pdms = single_relation_pdms()
        data = {"P": Instance.from_dict({"sr": {(i, i % 5) for i in range(30)}})}
        query = parse_query("Q(y) :- T:R(3, y)")
        monkeypatch.setenv("REPRO_SHARDS", "4")
        rows = answer_query(pdms, query, data, engine="distributed")
        assert set(rows) == {(3,)}


class TestShardedCluster:
    def build(self):
        inst = Instance.from_dict({"sr": {(i, f"v{i}") for i in range(16)}})
        shard_map, workers = auto_shard({"P": inst}, 2)
        transport = LoopbackTransport(workers)
        store = FragmentStore()
        tier_transport = LoopbackTransport({CACHE_PEER: store})
        cluster = ServiceCluster(
            pdms=single_relation_pdms(),
            transport=transport,
            shard_map=shard_map,
            cache_tier=CacheTierClient(tier_transport),
        )
        return cluster, shard_map, workers, store

    def test_describe_reports_scatter_and_sharding(self):
        cluster, _, _, _ = self.build()
        with cluster:
            query = parse_query("Q(y) :- T:R(3, y)")
            answer = cluster.answer(query)
            assert answer.complete and set(answer.rows) == {("v3",)}
            snapshot = cluster.describe()
            assert snapshot["scatter"]["pruned_scans"] >= 1
            assert snapshot["sharding"]["sr"]["shards"] == 2
            fragments = snapshot["service"]["fragments"]
            assert "tier_hits" in fragments

    def test_insert_routes_to_owning_shard(self):
        cluster, shard_map, workers, _ = self.build()
        with cluster:
            assert cluster.insert("sr", [(500, "new")]) == 1
            owner = shard_map.owners_for_row("sr", (500, "new"))[0]
            assert (500, "new") in workers[owner].get_tuples("sr")
            answer = cluster.answer(parse_query("Q(y) :- T:R(500, y)"))
            assert set(answer.rows) == {("new",)}

    def test_insert_unsharded_falls_back_to_owner(self):
        inst = Instance.from_dict({"sr": {(1, "a")}})
        cluster = ServiceCluster(
            pdms=single_relation_pdms(),
            transport=LoopbackTransport({"P": inst}),
        )
        with cluster:
            assert cluster.insert("sr", [(2, "b")]) == 1
            assert (2, "b") in inst.get_tuples("sr")

    def test_insert_needs_a_transport(self):
        from repro.pdms import QueryService

        service = QueryService(single_relation_pdms())
        cluster = ServiceCluster(service=service)
        with pytest.raises(PDMSConfigurationError):
            cluster.insert("sr", [(1, "a")])

    def test_warm_tier_serves_second_cluster(self):
        inst = Instance.from_dict({"sr": {(i, f"v{i}") for i in range(16)}})
        shard_map, workers = auto_shard({"P": inst}, 2)
        store = FragmentStore()
        tier_transport = LoopbackTransport({CACHE_PEER: store})
        query = parse_query("Q(y) :- T:R(3, y)")
        # Separate transports over the SAME live shard instances: version
        # tokens are instance-scoped, so both clusters observe the same
        # composite token space and may share tier entries.
        with ServiceCluster(
            pdms=single_relation_pdms(), transport=LoopbackTransport(workers),
            shard_map=shard_map, cache_tier=CacheTierClient(tier_transport),
        ) as first:
            assert set(first.answer(query).rows) == {("v3",)}
            assert first.stats.fragments.tier_puts >= 1
        with ServiceCluster(
            pdms=single_relation_pdms(), transport=LoopbackTransport(workers),
            shard_map=shard_map, cache_tier=CacheTierClient(tier_transport),
        ) as second:
            assert set(second.answer(query).rows) == {("v3",)}
            assert second.stats.fragments.tier_hits >= 1
