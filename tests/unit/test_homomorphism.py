"""Unit tests for repro.datalog.homomorphism."""

from repro.datalog.atoms import Atom
from repro.datalog.homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    has_homomorphism,
    head_seed,
)
from repro.datalog.terms import Constant, Variable

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestFindHomomorphisms:
    def test_simple_mapping_exists(self):
        source = [Atom("R", [X, Y])]
        target = [Atom("R", [Constant(1), Constant(2)])]
        assert find_homomorphism(source, target) == {X: Constant(1), Y: Constant(2)}

    def test_no_mapping_when_predicate_missing(self):
        assert not has_homomorphism([Atom("R", [X])], [Atom("S", [Constant(1)])])

    def test_join_variable_consistency(self):
        source = [Atom("R", [X, Y]), Atom("S", [Y, Z])]
        target = [
            Atom("R", [Constant(1), Constant(2)]),
            Atom("S", [Constant(3), Constant(4)]),
        ]
        # y would have to be both 2 and 3.
        assert not has_homomorphism(source, target)
        target.append(Atom("S", [Constant(2), Constant(4)]))
        assert has_homomorphism(source, target)

    def test_multiple_homomorphisms_enumerated(self):
        source = [Atom("R", [X])]
        target = [Atom("R", [Constant(1)]), Atom("R", [Constant(2)])]
        results = list(find_homomorphisms(source, target))
        assert {frozenset(h.items()) for h in results} == {
            frozenset({(X, Constant(1))}),
            frozenset({(X, Constant(2))}),
        }

    def test_constants_in_source_must_match(self):
        source = [Atom("R", [Constant(5), X])]
        target = [Atom("R", [Constant(5), Constant(6)]), Atom("R", [Constant(7), Constant(8)])]
        results = list(find_homomorphisms(source, target))
        assert results == [{X: Constant(6)}]

    def test_seed_is_respected(self):
        source = [Atom("R", [X, Y])]
        target = [
            Atom("R", [Constant(1), Constant(2)]),
            Atom("R", [Constant(3), Constant(4)]),
        ]
        results = list(find_homomorphisms(source, target, seed={X: Constant(3)}))
        assert results == [{X: Constant(3), Y: Constant(4)}]

    def test_variables_can_map_to_variables(self):
        source = [Atom("R", [X, Y])]
        target = [Atom("R", [Z, Z])]
        assert find_homomorphism(source, target) == {X: Z, Y: Z}

    def test_empty_source_has_trivial_homomorphism(self):
        assert find_homomorphism([], [Atom("R", [X])]) == {}


class TestHeadSeed:
    def test_matching_heads(self):
        seed = head_seed(Atom("Q", [X, Y]), Atom("Q", [Z, W]))
        assert seed == {X: Z, Y: W}

    def test_arity_mismatch(self):
        assert head_seed(Atom("Q", [X]), Atom("Q", [X, Y])) is None

    def test_constant_mismatch(self):
        assert head_seed(Atom("Q", [Constant(1)]), Atom("Q", [Constant(2)])) is None
        assert head_seed(Atom("Q", [Constant(1)]), Atom("Q", [Constant(1)])) == {}

    def test_repeated_head_variable_requires_equal_targets(self):
        assert head_seed(Atom("Q", [X, X]), Atom("Q", [Y, Z])) is None
        assert head_seed(Atom("Q", [X, X]), Atom("Q", [Y, Y])) == {X: Y}
