"""Unit tests for repro.pdms.execution and repro.pdms.semantics."""

import pytest

from repro.database import Instance
from repro.datalog import parse_atom, parse_query
from repro.errors import EvaluationError, MappingError
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    StorageDescription,
    answer_query,
    answer_query_batch,
    build_canonical_instance,
    certain_answers,
    combine_peer_instances,
    evaluate_reformulation,
    is_consistent,
    lav_style,
    reformulate,
    replication,
    stream_answers,
)


@pytest.fixture
def two_peer_pdms():
    pdms = PDMS()
    a = pdms.add_peer("A")
    a.add_relation("R", ["x", "y"])
    b = pdms.add_peer("B")
    b.add_relation("S", ["x", "y"])
    pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:R(x, y) :- B:S(x, y)")))
    pdms.add_storage_description(
        StorageDescription("B", "stored_s", parse_query("V(x, y) :- B:S(x, y)")))
    return pdms


class TestExecution:
    def test_combine_peer_instances(self):
        first = Instance.from_dict({"r1": [(1,)]})
        second = Instance.from_dict({"r2": [(2,)], "r1": [(3,)]})
        combined = combine_peer_instances({"A": first, "B": second})
        assert set(combined.get_tuples("r1")) == {(1,), (3,)}
        assert set(combined.get_tuples("r2")) == {(2,)}

    def test_answer_query_with_plain_dict(self, two_peer_pdms):
        data = {"stored_s": [(1, 2), (3, 4)]}
        answers = answer_query(two_peer_pdms, parse_query("Q(x, y) :- A:R(x, y)"), data)
        assert answers == {(1, 2), (3, 4)}

    def test_answer_query_with_per_peer_instances(self, two_peer_pdms):
        per_peer = {"B": Instance.from_dict({"stored_s": [(1, 2)]})}
        answers = answer_query(two_peer_pdms, parse_query("Q(x, y) :- A:R(x, y)"), per_peer)
        assert answers == {(1, 2)}

    def test_evaluate_reformulation_streams(self, two_peer_pdms):
        result = reformulate(two_peer_pdms, parse_query("Q(x) :- A:R(x, y)"))
        answers = evaluate_reformulation(result, {"stored_s": [(1, 2)]})
        assert answers == {(1,)}

    def test_pdms_answer_method(self, two_peer_pdms):
        answers = two_peer_pdms.answer(
            parse_query("Q(y) :- A:R(1, y)"), {"stored_s": [(1, 2), (5, 6)]})
        assert answers == {(2,)}


class TestCombinePeerInstances:
    def test_no_clash_same_relation_same_arity(self):
        """Identical relation names with matching arity union cleanly."""
        first = Instance.from_dict({"shared": [(1, 2)], "only_a": [(7,)]})
        second = Instance.from_dict({"shared": [(3, 4)]})
        combined = combine_peer_instances({"A": first, "B": second})
        assert set(combined.get_tuples("shared")) == {(1, 2), (3, 4)}
        assert set(combined.get_tuples("only_a")) == {(7,)}

    def test_arity_clash_raises_naming_both_peers(self):
        first = Instance.from_dict({"s": [(1, 2)]})
        second = Instance.from_dict({"s": [(3,)]})
        with pytest.raises(MappingError) as excinfo:
            combine_peer_instances({"A": first, "B": second})
        message = str(excinfo.value)
        assert "'A'" in message and "'B'" in message and "'s'" in message
        assert "arity 2" in message and "arity 1" in message

    def test_arity_clash_detected_eagerly_even_for_empty_overlap(self):
        """The clash is detected from declared arities, before any row merge."""
        schema_less = Instance()
        schema_less.add("t", (1, 2, 3))
        other = Instance.from_dict({"t": [(0, 0)]})
        with pytest.raises(MappingError):
            combine_peer_instances({"X": schema_less, "Y": other})

    def test_empty_mapping_gives_empty_instance(self):
        combined = combine_peer_instances({})
        assert combined.total_rows() == 0


class TestStreamingAndLimit:
    def test_limit_returns_subset_of_full_answers(self, two_peer_pdms):
        data = {"stored_s": [(i, i + 1) for i in range(6)]}
        query = parse_query("Q(x, y) :- A:R(x, y)")
        full = answer_query(two_peer_pdms, query, data)
        for k in range(len(full) + 2):
            limited = answer_query(two_peer_pdms, query, data, limit=k)
            assert limited <= full
            assert len(limited) == min(k, len(full))

    def test_negative_limit_rejected(self, two_peer_pdms):
        with pytest.raises(EvaluationError):
            answer_query(
                two_peer_pdms, parse_query("Q(x) :- A:R(x, y)"),
                {"stored_s": [(1, 2)]}, limit=-1)

    def test_stream_answers_yields_distinct_rows(self, two_peer_pdms):
        result = reformulate(two_peer_pdms, parse_query("Q(x) :- A:R(x, y)"))
        rows = list(stream_answers(result, {"stored_s": [(1, 2), (1, 3), (4, 5)]}))
        assert len(rows) == len(set(rows))
        assert set(rows) == {(1,), (4,)}

    def test_limit_stops_before_exhausting_rewritings(self, two_peer_pdms):
        """A satisfied limit must not force the full rewriting enumeration."""
        result = reformulate(two_peer_pdms, parse_query("Q(x, y) :- A:R(x, y)"))
        consumed = []
        original = result.rewritings

        def counting():
            for rewriting in original():
                consumed.append(rewriting)
                yield rewriting

        result.rewritings = counting
        answers = evaluate_reformulation(result, {"stored_s": [(1, 2), (3, 4)]}, limit=1)
        assert len(answers) == 1
        assert len(consumed) <= 1

    def test_engine_validation(self, two_peer_pdms):
        result = reformulate(two_peer_pdms, parse_query("Q(x) :- A:R(x, y)"))
        with pytest.raises(EvaluationError):
            evaluate_reformulation(result, {"stored_s": []}, engine="nope")

    def test_both_engines_agree(self, two_peer_pdms):
        data = {"stored_s": [(1, 2), (2, 3), (3, 1)]}
        query = parse_query("Q(x, z) :- A:R(x, y), A:R(y, z)")
        result = reformulate(two_peer_pdms, query)
        assert evaluate_reformulation(result, data, engine="backtracking") == \
            evaluate_reformulation(result, data, engine="plan")


class TestAnswerBatch:
    def test_batch_matches_individual_answers(self, two_peer_pdms):
        per_peer = {"B": Instance.from_dict({"stored_s": [(1, 2), (2, 3)]})}
        queries = [
            parse_query("Q(x, y) :- A:R(x, y)"),
            parse_query("Q(x) :- A:R(x, y)"),
            parse_query("Q(x, z) :- A:R(x, y), A:R(y, z)"),
        ]
        batch = answer_query_batch(two_peer_pdms, queries, per_peer)
        assert batch == [answer_query(two_peer_pdms, q, per_peer) for q in queries]

    def test_batch_with_limit(self, two_peer_pdms):
        data = {"stored_s": [(i, i) for i in range(5)]}
        batch = answer_query_batch(
            two_peer_pdms, [parse_query("Q(x, y) :- A:R(x, y)")], data, limit=2)
        assert len(batch) == 1 and len(batch[0]) == 2


class TestConsistency:
    def test_consistent_instance_accepted(self, two_peer_pdms):
        instance = {
            "stored_s": [(1, 2)],
            "B:S": [(1, 2), (3, 4)],
            "A:R": [(1, 2), (3, 4)],
        }
        assert is_consistent(two_peer_pdms, instance)

    def test_storage_containment_violated(self, two_peer_pdms):
        instance = {"stored_s": [(9, 9)], "B:S": [(1, 2)], "A:R": [(1, 2)]}
        assert not is_consistent(two_peer_pdms, instance)

    def test_definitional_equality_violated(self, two_peer_pdms):
        # A:R must equal the union of its definitional bodies; an extra fact
        # not derivable from B:S makes the instance inconsistent.
        instance = {
            "stored_s": [],
            "B:S": [(1, 2)],
            "A:R": [(1, 2), (7, 7)],
        }
        assert not is_consistent(two_peer_pdms, instance)

    def test_inclusion_mapping_checked(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("R", ["x"])
        pdms.add_peer("B").add_relation("S", ["x"])
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:S(x)"), parse_query("V(x) :- A:R(x)")))
        assert is_consistent(pdms, {"B:S": [(1,)], "A:R": [(1,), (2,)]})
        assert not is_consistent(pdms, {"B:S": [(3,)], "A:R": [(1,)]})

    def test_exact_storage_description_requires_equality(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("R", ["x"])
        pdms.add_storage_description(
            StorageDescription("A", "s", parse_query("V(x) :- A:R(x)"), exact=True))
        assert is_consistent(pdms, {"s": [(1,)], "A:R": [(1,)]})
        assert not is_consistent(pdms, {"s": [(1,)], "A:R": [(1,), (2,)]})

    def test_equality_peer_mapping_checked(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("R", ["x"])
        pdms.add_peer("B").add_relation("R", ["x"])
        pdms.add_peer_mapping(replication(parse_atom("A:R(x)"), parse_atom("B:R(x)")))
        assert is_consistent(pdms, {"A:R": [(1,)], "B:R": [(1,)]})
        assert not is_consistent(pdms, {"A:R": [(1,)], "B:R": [(1,), (2,)]})


class TestCertainAnswerOracle:
    def test_canonical_instance_contains_chased_facts(self, two_peer_pdms):
        canonical = build_canonical_instance(two_peer_pdms, {"stored_s": [(1, 2)]})
        assert (1, 2) in set(canonical.get_tuples("B:S"))
        assert (1, 2) in set(canonical.get_tuples("A:R"))

    def test_oracle_matches_reformulation_on_tractable_pdms(self, two_peer_pdms):
        data = {"stored_s": [(1, 2), (2, 3)]}
        query = parse_query("Q(x, z) :- A:R(x, y), A:R(y, z)")
        assert answer_query(two_peer_pdms, query, data) == certain_answers(
            two_peer_pdms, query, data)

    def test_projected_nulls_are_not_certain(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("R", ["x", "y"])
        # The stored relation only records the first column; the second is unknown.
        pdms.add_storage_description(
            StorageDescription("A", "partial", parse_query("V(x) :- A:R(x, y)")))
        data = {"partial": [(1,)]}
        assert certain_answers(pdms, parse_query("Q(x) :- A:R(x, y)"), data) == {(1,)}
        assert certain_answers(pdms, parse_query("Q(y) :- A:R(x, y)"), data) == set()

    def test_replication_cycle_chase_terminates(self):
        pdms = PDMS()
        pdms.add_peer("A").add_relation("V", ["x"])
        pdms.add_peer("B").add_relation("V", ["x"])
        pdms.add_peer_mapping(replication(parse_atom("A:V(x)"), parse_atom("B:V(x)")))
        pdms.add_storage_description(
            StorageDescription("B", "sb", parse_query("V(x) :- B:V(x)")))
        answers = certain_answers(pdms, parse_query("Q(x) :- A:V(x)"), {"sb": [(1,)]})
        assert answers == {(1,)}
