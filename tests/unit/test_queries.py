"""Unit tests for repro.datalog.queries."""

import pytest

from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.queries import (
    ConjunctiveQuery,
    DatalogProgram,
    DatalogRule,
    UnionQuery,
    make_chain_query,
)
from repro.datalog.terms import Constant, FreshVariableFactory, Variable
from repro.errors import MalformedQueryError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def cq(head, body):
    return ConjunctiveQuery(head, body)


class TestConjunctiveQuery:
    def test_basic_accessors(self):
        query = cq(Atom("Q", [X, Y]), [Atom("R", [X, Z]), Atom("S", [Z, Y])])
        assert query.name == "Q"
        assert query.arity == 2
        assert query.head_variables() == [X, Y]
        assert query.existential_variables() == frozenset({Z})
        assert query.predicates() == frozenset({"R", "S"})

    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(MalformedQueryError):
            cq(Atom("Q", [X, Y]), [Atom("R", [X, X])])

    def test_unsafe_comparison_variable_rejected(self):
        with pytest.raises(MalformedQueryError):
            cq(Atom("Q", [X]), [Atom("R", [X]), ComparisonAtom(Y, "<", Constant(1))])

    def test_head_constants_are_allowed(self):
        query = cq(Atom("Q", [X, Constant("Doctor")]), [Atom("R", [X])])
        assert query.arity == 2

    def test_has_projection(self):
        with_projection = cq(Atom("Q", [X]), [Atom("R", [X, Y])])
        without_projection = cq(Atom("Q", [X, Y]), [Atom("R", [X, Y])])
        assert with_projection.has_projection()
        assert not without_projection.has_projection()

    def test_has_comparisons(self):
        query = cq(Atom("Q", [X]), [Atom("R", [X]), ComparisonAtom(X, "<", Constant(3))])
        assert query.has_comparisons()

    def test_substitute(self):
        query = cq(Atom("Q", [X]), [Atom("R", [X, Y])])
        result = query.substitute({Y: Constant(1)})
        assert result.body[0] == Atom("R", [X, Constant(1)])

    def test_rename_apart_preserves_kept_variables(self):
        query = cq(Atom("Q", [X]), [Atom("R", [X, Y])])
        fresh = FreshVariableFactory()
        fresh.reserve(["x", "y"])
        renamed = query.rename_apart(fresh, keep=[X])
        assert renamed.head == Atom("Q", [X])
        assert renamed.body[0].args[0] == X
        assert renamed.body[0].args[1] != Y

    def test_rename_apart_renames_everything_by_default(self):
        query = cq(Atom("Q", [X]), [Atom("R", [X, Y])])
        fresh = FreshVariableFactory()
        fresh.reserve(["x", "y"])
        renamed = query.rename_apart(fresh)
        assert renamed.all_variables().isdisjoint(query.all_variables())

    def test_add_body_atoms(self):
        query = cq(Atom("Q", [X]), [Atom("R", [X])])
        extended = query.add_body_atoms([Atom("S", [X])])
        assert len(extended.body) == 2

    def test_is_single_atom(self):
        assert cq(Atom("Q", [X]), [Atom("R", [X])]).is_single_atom()
        assert not cq(Atom("Q", [X]), [Atom("R", [X]), Atom("S", [X])]).is_single_atom()

    def test_str_rendering(self):
        query = cq(Atom("Q", [X]), [Atom("R", [X, Y])])
        assert str(query) == "Q(x) :- R(x, y)"


class TestUnionQuery:
    def test_disjuncts_must_agree_on_head(self):
        first = cq(Atom("Q", [X]), [Atom("R", [X])])
        second = cq(Atom("Q", [X, Y]), [Atom("S", [X, Y])])
        with pytest.raises(MalformedQueryError):
            UnionQuery([first, second])

    def test_empty_union_needs_explicit_signature(self):
        with pytest.raises(MalformedQueryError):
            UnionQuery([])
        empty = UnionQuery([], name="Q", arity=2)
        assert empty.is_empty()
        assert len(empty) == 0

    def test_add_and_iterate(self):
        first = cq(Atom("Q", [X]), [Atom("R", [X])])
        second = cq(Atom("Q", [X]), [Atom("S", [X])])
        union = UnionQuery([first]).add(second)
        assert len(union) == 2
        assert list(union) == [first, second]
        assert union.predicates() == frozenset({"R", "S"})


class TestDatalogProgram:
    def test_idb_edb_split(self):
        program = DatalogProgram(
            [
                DatalogRule(Atom("T", [X, Y]), [Atom("E", [X, Y])]),
                DatalogRule(Atom("T", [X, Y]), [Atom("E", [X, Z]), Atom("T", [Z, Y])]),
            ],
            query_predicate="T",
        )
        assert program.idb_predicates() == frozenset({"T"})
        assert program.edb_predicates() == frozenset({"E"})
        assert len(program.rules_for("T")) == 2

    def test_recursion_detection(self):
        recursive = DatalogProgram(
            [DatalogRule(Atom("T", [X, Y]), [Atom("E", [X, Z]), Atom("T", [Z, Y])])],
            query_predicate="T",
        )
        flat = DatalogProgram(
            [DatalogRule(Atom("T", [X, Y]), [Atom("E", [X, Y])])],
            query_predicate="T",
        )
        assert recursive.is_recursive()
        assert not flat.is_recursive()


class TestChainQuery:
    def test_make_chain_query_shape(self):
        query = make_chain_query("Q", ["A", "B", "C"])
        assert query.arity == 2
        assert [a.predicate for a in query.relational_body()] == ["A", "B", "C"]
        # consecutive atoms share a variable
        for first, second in zip(query.relational_body(), query.relational_body()[1:]):
            assert first.args[1] == second.args[0]

    def test_make_chain_query_requires_predicates(self):
        with pytest.raises(MalformedQueryError):
            make_chain_query("Q", [])
