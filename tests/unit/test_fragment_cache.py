"""The cross-call fragment cache, admission/eviction, and bushy sharing."""

import pytest

from repro.database import Instance, Table
from repro.datalog.parser import parse_query
from repro.errors import EvaluationError, PDMSConfigurationError
from repro.pdms import (
    PDMS,
    AdmissionPolicy,
    FragmentCache,
    PeerFactSource,
    QueryService,
    StorageDescription,
    compile_reformulation,
    data_version_token,
    estimate_result_bytes,
    evaluate_plan,
    evaluate_reformulation,
    fragment_cache_from_env,
    int_from_env,
    reformulate,
)
from repro.pdms.planning import shared_workers_from_env


# ---------------------------------------------------------------------------
# FragmentCache mechanics
# ---------------------------------------------------------------------------

def _table(rows):
    return Table(("a", "b"), rows)


class TestFragmentCache:
    def test_hit_requires_matching_token(self):
        cache = FragmentCache(max_bytes=1 << 20)
        calls = []

        def compute():
            calls.append(1)
            return _table([(1, 2)])

        first = cache.get_or_compute("k", ("v1",), {"r"}, compute)
        again = cache.get_or_compute("k", ("v1",), {"r"}, compute)
        assert first is again and len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_stale_token_recomputes_and_counts_invalidation(self):
        cache = FragmentCache(max_bytes=1 << 20)
        cache.get_or_compute("k", ("v1",), {"r"}, lambda: _table([(1, 2)]))
        fresh = cache.get_or_compute("k", ("v2",), {"r"}, lambda: _table([(3, 4)]))
        assert fresh.rows == frozenset({(3, 4)})
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 2
        assert len(cache) == 1  # the stale version was replaced, not kept

    def test_byte_budget_evicts_lru(self):
        row_bytes = estimate_result_bytes(_table([(1, 2)]))
        cache = FragmentCache(max_bytes=3 * row_bytes)
        for name in ("a", "b", "c"):
            cache.get_or_compute(name, ("v",), {"r"}, lambda: _table([(1, 2)]))
        assert set(cache.cached_keys()) == {"a", "b", "c"}
        # Touch "a" so "b" is the least recently used, then overflow.
        cache.get_or_compute("a", ("v",), {"r"}, lambda: _table([(9, 9)]))
        cache.get_or_compute("d", ("v",), {"r"}, lambda: _table([(1, 2)]))
        assert "b" not in cache.cached_keys()
        assert cache.stats.evictions == 1
        assert cache.current_bytes <= cache.max_bytes

    def test_admission_policy_rejects_oversized_entries(self):
        small = estimate_result_bytes(_table([(1, 2)]))
        cache = FragmentCache(
            max_bytes=4 * small, policy=AdmissionPolicy(max_entry_fraction=0.5)
        )
        big = _table([(i, i) for i in range(100)])
        cache.get_or_compute("big", ("v",), {"r"}, lambda: big)
        assert len(cache) == 0
        assert cache.stats.rejections == 1

    def test_min_misses_admits_only_proven_repeat_traffic(self):
        cache = FragmentCache(
            max_bytes=1 << 20, policy=AdmissionPolicy(min_misses=2)
        )
        cache.get_or_compute("k", ("v",), {"r"}, lambda: _table([(1, 2)]))
        assert len(cache) == 0 and cache.stats.rejections == 1
        cache.get_or_compute("k", ("v",), {"r"}, lambda: _table([(1, 2)]))
        assert len(cache) == 1 and cache.stats.admissions == 1
        assert cache.stats.hits == 0 and cache.stats.misses == 2
        cache.get_or_compute("k", ("v",), {"r"}, lambda: _table([(1, 2)]))
        assert cache.stats.hits == 1

    def test_min_benefit_seconds_rejects_cheap_fragments(self):
        cache = FragmentCache(
            max_bytes=1 << 20,
            policy=AdmissionPolicy(min_benefit_seconds=3600.0),
        )
        cache.get_or_compute("k", ("v",), {"r"}, lambda: _table([(1, 2)]))
        assert len(cache) == 0 and cache.stats.rejections == 1

    def test_invalidate_relations_drops_only_readers(self):
        cache = FragmentCache(max_bytes=1 << 20)
        cache.get_or_compute("ka", ("v",), {"a"}, lambda: _table([(1, 2)]))
        cache.get_or_compute("kab", ("v",), {"a", "b"}, lambda: _table([(1, 2)]))
        cache.get_or_compute("kc", ("v",), {"c"}, lambda: _table([(1, 2)]))
        assert cache.invalidate_relations({"a"}) == 2
        assert cache.cached_keys() == ("kc",)
        assert cache.stats.invalidations == 2
        assert cache.invalidate_relations(()) == 0

    def test_clear_preserves_counters(self):
        cache = FragmentCache(max_bytes=1 << 20)
        cache.get_or_compute("k", ("v",), {"r"}, lambda: _table([(1, 2)]))
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats.misses == 1

    def test_budget_must_be_positive(self):
        with pytest.raises(EvaluationError):
            FragmentCache(max_bytes=0)


class TestVersionTokens:
    def test_token_covers_requested_relations_sorted(self):
        instance = Instance()
        instance.add("r", (1, 2))
        token = data_version_token(instance, {"s", "r"})
        assert [name for name, _ in token] == ["r", "s"]

    def test_unversioned_sources_yield_none(self):
        assert data_version_token({"r": [(1, 2)]}, {"r"}) is None

    def test_peer_fact_source_token_sees_writes_and_owner_changes(self):
        a, b = Instance(), Instance()
        a.add("r", (1, 2))
        source = PeerFactSource({"A": a})
        before = source.data_version("r")
        a.add("r", (3, 4))
        after_write = source.data_version("r")
        assert after_write != before
        b.add("r", (1, 2))
        two_owners = PeerFactSource({"A": a, "B": b}).data_version("r")
        assert two_owners != after_write
        assert PeerFactSource({}).data_version("r") == ()


# ---------------------------------------------------------------------------
# Env handling (fail fast, satellite)
# ---------------------------------------------------------------------------

class TestEnvHandling:
    def test_int_from_env_defaults_and_parses(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert int_from_env("REPRO_TEST_KNOB", 7) == 7
        monkeypatch.setenv("REPRO_TEST_KNOB", "42")
        assert int_from_env("REPRO_TEST_KNOB", 7) == 42

    @pytest.mark.parametrize("bad", ["abc", "1.5", ""])
    def test_int_from_env_fails_fast_on_garbage(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_TEST_KNOB", bad)
        with pytest.raises(EvaluationError, match="REPRO_TEST_KNOB"):
            int_from_env("REPRO_TEST_KNOB", 7)

    def test_int_from_env_enforces_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-3")
        with pytest.raises(EvaluationError, match=">= 0"):
            int_from_env("REPRO_TEST_KNOB", 7)

    @pytest.mark.parametrize("bad", ["abc", "-1"])
    def test_shared_workers_fails_fast(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SHARED_WORKERS", bad)
        with pytest.raises(EvaluationError, match="REPRO_SHARED_WORKERS"):
            shared_workers_from_env()

    @pytest.mark.parametrize("bad", ["nope", "-5"])
    def test_fragment_cache_env_fails_fast(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_FRAGMENT_CACHE_BYTES", bad)
        with pytest.raises(EvaluationError, match="REPRO_FRAGMENT_CACHE_BYTES"):
            fragment_cache_from_env()

    def test_fragment_cache_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAGMENT_CACHE_BYTES", "0")
        assert fragment_cache_from_env() is None

    def test_service_surfaces_env_mistakes_as_configuration_errors(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FRAGMENT_CACHE_BYTES", "huge")
        with pytest.raises(PDMSConfigurationError, match="REPRO_FRAGMENT_CACHE_BYTES"):
            QueryService()


# ---------------------------------------------------------------------------
# A small PDMS used by the integration-grade cases below
# ---------------------------------------------------------------------------

def _two_hop_pdms():
    pdms = PDMS()
    peer = pdms.add_peer("P")
    for relation in ("A1", "A2", "A3"):
        peer.add_relation(relation, ["x", "y"])
    pdms.add_storage_description(
        StorageDescription("P", "s_a1", parse_query("V(x, y) :- P:A1(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "s_a2", parse_query("V(x, y) :- P:A2(x, y)")))
    for i in range(3):
        pdms.add_storage_description(
            StorageDescription("P", f"s_a3_{i}", parse_query("V(x, y) :- P:A3(x, y)")))
    query = parse_query(
        "Q(x0, x3) :- P:A1(x0, x1), P:A2(x1, x2), P:A3(x2, x3)")
    instance = Instance()
    instance.add_all("s_a1", [(1, 2), (2, 3)])
    instance.add_all("s_a2", [(2, 5), (3, 6)])
    for i in range(3):
        instance.add_all(f"s_a3_{i}", [(5, 10 + i), (6, 20 + i)])
    return pdms, query, instance


class TestCachedExecution:
    def test_warm_answers_equal_cold_for_every_engine(self):
        pdms, query, instance = _two_hop_pdms()
        expected = None
        for engine in ("backtracking", "plan", "shared", "columnar"):
            cache = FragmentCache(max_bytes=1 << 20)
            result = reformulate(pdms, query)
            cold = evaluate_reformulation(
                result, {"P": instance}, engine=engine, cache=cache)
            warm = evaluate_reformulation(
                result, {"P": instance}, engine=engine, cache=cache)
            assert warm == cold
            assert cache.stats.hits > 0, engine
            if expected is None:
                expected = cold
            assert cold == expected

    def test_write_invalidates_only_dependent_fragments(self):
        pdms, query, instance = _two_hop_pdms()
        cache = FragmentCache(max_bytes=1 << 20)
        service = QueryService(
            pdms, data={"P": instance}, engine="shared", fragment_cache=cache)
        before = service.answer(query)
        warm = service.answer(query)
        assert warm == before
        hits_before = cache.stats.hits
        # Writing one variant relation leaves the shared A1⋈A2 fragment warm.
        instance.add("s_a3_0", (5, 99))
        after = service.answer(query)
        assert (1, 99) in after
        assert cache.stats.hits > hits_before  # shared prefix still served

    def test_peer_leave_evicts_dependent_fragments(self):
        pdms, query, instance = _two_hop_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared")
        cache = service.fragment_cache
        service.answer(query)
        assert len(cache) > 0
        service.remove_peer("P")
        assert len(cache) == 0
        assert cache.stats.invalidations > 0

    def test_plain_mapping_data_bypasses_the_cache(self):
        pdms, query, instance = _two_hop_pdms()
        cache = FragmentCache(max_bytes=1 << 20)
        result = reformulate(pdms, query)
        data = instance.as_dict()
        first = evaluate_reformulation(result, data, engine="shared", cache=cache)
        assert evaluate_reformulation(
            result, data, engine="shared", cache=cache) == first
        assert cache.stats.lookups == 0 and len(cache) == 0

    def test_service_stats_report_fragment_counters(self):
        pdms, query, instance = _two_hop_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared")
        service.answer(query)
        service.answer(query)
        # A snapshot is the supported way to read counters: it is an
        # independent copy, not an alias onto the mutating live stats.
        fragments = service.stats_snapshot().fragments
        assert fragments.hits > 0
        assert fragments.admissions > 0
        assert 0.0 < fragments.hit_rate < 1.0
        assert service.fragment_cache is not None

    def test_service_fragment_cache_can_be_disabled(self):
        pdms, query, instance = _two_hop_pdms()
        service = QueryService(
            pdms, data={"P": instance}, engine="shared", fragment_cache_bytes=0)
        assert service.fragment_cache is None
        service.answer(query)
        assert service.stats.fragments.lookups == 0

    def test_clear_cache_drops_fragments_too(self):
        pdms, query, instance = _two_hop_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared")
        service.answer(query)
        assert len(service.fragment_cache) > 0
        service.clear_cache()
        assert len(service.fragment_cache) == 0

    def test_data_override_does_not_churn_warm_entries(self):
        """A one-off override answers correctly but bypasses the cache."""
        pdms, query, instance = _two_hop_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared")
        expected = service.answer(query)
        warm_keys = service.fragment_cache.cached_keys()
        before = service.stats_snapshot()
        override = instance.copy()
        override.add("s_a3_0", (5, 321))
        assert (1, 321) in service.answer(query, data={"P": override})
        assert service.fragment_cache.cached_keys() == warm_keys
        assert service.stats_snapshot().fragments.lookups == before.fragments.lookups
        # The warm set still serves the service's own data.
        hits = service.stats_snapshot().fragments.hits
        assert service.answer(query) == expected
        assert service.stats_snapshot().fragments.hits > hits

    def test_external_shared_cache_is_not_cleared_by_one_service(self):
        pdms, query, instance = _two_hop_pdms()
        shared = FragmentCache(max_bytes=1 << 20)
        a = QueryService(pdms, data={"P": instance}, engine="shared",
                         fragment_cache=shared)
        a.answer(query)
        warm = len(shared)
        assert warm > 0
        a.clear_cache()
        assert len(shared) == warm  # external cache untouched
        a.remove_peer("P")  # version tokens alone keep `shared` correct
        assert len(shared) == warm

    def test_owned_cache_is_cleared_as_before(self):
        pdms, query, instance = _two_hop_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared")
        service.answer(query)
        assert len(service.fragment_cache) > 0
        service.remove_peer("P")
        assert len(service.fragment_cache) == 0


class TestBushySharing:
    def test_bushy_and_left_deep_agree_with_backtracking(self):
        pdms, query, instance = _two_hop_pdms()
        result = reformulate(pdms, query)
        data = {"P": instance}
        expected = evaluate_reformulation(result, data, engine="backtracking")
        source = PeerFactSource(data)
        bushy = compile_reformulation(result, source, bushy=True)
        left = compile_reformulation(result, source, bushy=False)
        assert evaluate_plan(bushy, source) == expected
        assert evaluate_plan(left, source) == expected

    def test_bushy_shares_non_prefix_subconjunctions(self):
        """{M ⋈ R} is shared even though the cost order starts at L_i."""
        pdms = PDMS()
        peer = pdms.add_peer("P")
        for relation in ("L", "M", "R"):
            peer.add_relation(relation, ["x", "y"])
        for i in range(4):
            pdms.add_storage_description(StorageDescription(
                "P", f"s_l_{i}", parse_query("V(x, y) :- P:L(x, y)")))
        pdms.add_storage_description(StorageDescription(
            "P", "s_m", parse_query("V(x, y) :- P:M(x, y)")))
        pdms.add_storage_description(StorageDescription(
            "P", "s_r", parse_query("V(x, y) :- P:R(x, y)")))
        data = {}
        # L_i tiny (cheapest atom => left-deep prefixes start there),
        # M large, R small but joining M very selectively.
        for i in range(4):
            data[f"s_l_{i}"] = {(j, j + i) for j in range(15)}
        data["s_m"] = {(j % 40, j) for j in range(400)}
        data["s_r"] = {(j * 17 % 400, j) for j in range(20)}
        query = parse_query("Q(x, w) :- P:L(x, y), P:M(y, z), P:R(z, w)")
        result = reformulate(pdms, query)
        bushy = compile_reformulation(result, data, bushy=True)
        left = compile_reformulation(result, data, bushy=False)
        assert evaluate_plan(bushy, data) == evaluate_plan(left, data)
        assert any(
            key.startswith("s_m(") and "s_r(" in key for key in bushy.nodes
        ), "expected a shared {M,R} fragment"
        assert bushy.stats.sharing_ratio > left.stats.sharing_ratio

    def test_alpha_equivalent_sets_share_one_node_regardless_of_order(self):
        from repro.pdms.planning import _canonical_parts, _conjunction_key

        atoms = parse_query(
            "Q(x) :- r0(x, y), r1(y, z), r2(z, 1)").relational_body()
        forward, namespace = _canonical_parts(tuple(atoms), {})
        backward, _ = _canonical_parts(tuple(reversed(atoms)), {})
        assert forward == backward
        assert set(namespace.values()) == {"_f0", "_f1", "_f2"}
        assert _conjunction_key(forward).count(" & ") == 2
