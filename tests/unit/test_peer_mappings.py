"""Unit tests for repro.pdms.peer and repro.pdms.mappings."""

import pytest

from repro.datalog import parse_atom, parse_query
from repro.errors import MappingError, PDMSConfigurationError
from repro.pdms import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    Peer,
    StorageDescription,
    lav_style,
    qualified_name,
    replication,
)


class TestPeer:
    def test_add_and_lookup_relations(self):
        peer = Peer("H")
        schema = peer.add_relation("Doctor", ["SID", "hosp", "loc", "start", "end"])
        assert schema.name == "H:Doctor"
        assert peer.relation("Doctor").arity == 5
        assert peer.relation("H:Doctor").arity == 5
        assert peer.has_relation("Doctor")
        assert not peer.has_relation("Nurse")
        assert peer.peer_relation_names() == ("H:Doctor",)

    def test_duplicate_relation_rejected(self):
        peer = Peer("H")
        peer.add_relation("Doctor", ["SID"])
        with pytest.raises(PDMSConfigurationError):
            peer.add_relation("Doctor", ["SID"])

    def test_foreign_qualification_rejected(self):
        peer = Peer("H")
        with pytest.raises(PDMSConfigurationError):
            peer.add_relation("FS:Engine", ["VID"])

    def test_invalid_peer_names(self):
        with pytest.raises(PDMSConfigurationError):
            Peer("")
        with pytest.raises(PDMSConfigurationError):
            Peer("A:B")

    def test_stored_relations(self):
        peer = Peer("FH")
        stored = peer.add_stored_relation("doc", ["sid", "last", "loc"])
        assert stored.arity == 3
        assert stored.peer == "FH"
        assert peer.stored_relation_names() == ("doc",)
        with pytest.raises(PDMSConfigurationError):
            peer.add_stored_relation("doc", ["sid"])
        with pytest.raises(PDMSConfigurationError):
            peer.add_stored_relation("FH:doc", ["sid"])

    def test_qualified_name_helper(self):
        assert qualified_name("H", "Doctor") == "H:Doctor"
        assert qualified_name("H", "H:Doctor") == "H:Doctor"
        with pytest.raises(PDMSConfigurationError):
            qualified_name("H", "FS:Engine")


class TestStorageDescription:
    def test_basic_properties(self):
        description = StorageDescription(
            "FH", "doc",
            parse_query("V(sid, last, loc) :- FH:Staff(sid, f, last, s, e), FH:Doctor(sid, loc)"),
        )
        assert description.arity == 3
        assert not description.exact
        assert description.references_peers() == frozenset({"FH"})
        assert description.has_projection()
        assert not description.has_comparisons()
        assert description.stored_atom().predicate == "doc"

    def test_qualified_stored_name_rejected(self):
        with pytest.raises(MappingError):
            StorageDescription("FH", "FH:doc", parse_query("V(x) :- FH:R(x)"))

    def test_auto_names_are_unique(self):
        first = StorageDescription("A", "s1", parse_query("V(x) :- A:R(x)"))
        second = StorageDescription("A", "s2", parse_query("V(x) :- A:R(x)"))
        assert first.name != second.name

    def test_comparisons_detected(self):
        description = StorageDescription(
            "A", "cheap", parse_query("V(x, p) :- A:Item(x, p), p < 100"))
        assert description.has_comparisons()


class TestInclusionAndEqualityMappings:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(MappingError):
            InclusionMapping(parse_query("L(x) :- A:R(x)"), parse_query("R(x, y) :- B:S(x, y)"))
        with pytest.raises(MappingError):
            EqualityMapping(parse_query("L(x) :- A:R(x)"), parse_query("R(x, y) :- B:S(x, y)"))

    def test_left_is_single_atom_detection(self):
        lav = lav_style(parse_atom("LH:CritBed(b, r, p, s)"),
                        parse_query("R(b, r, p, s) :- H:CritBed(b, h, r), H:Patient(p, b, s)"))
        assert lav.left_is_single_atom()
        general = InclusionMapping(
            parse_query("L(sid, f, l) :- LH:Staff(sid, f, l, c)"),
            parse_query("R(sid, f, l) :- H:Worker(sid, f, l)"))
        assert not general.left_is_single_atom()

    def test_references_peers(self):
        mapping = lav_style(parse_atom("LH:CritBed(b, r, p, s)"),
                            parse_query("R(b, r, p, s) :- H:CritBed(b, h, r), H:Patient(p, b, s)"))
        assert mapping.references_peers() == frozenset({"LH", "H"})

    def test_equality_as_inclusions(self):
        equality = replication(parse_atom("ECC:Vehicle(v, t, c, g, d)"),
                               parse_atom("9DC:Vehicle(v, t, c, g, d)"))
        forward, backward = equality.as_inclusions()
        assert forward.left.predicates() == {"ECC:Vehicle"}
        assert forward.right.predicates() == {"9DC:Vehicle"}
        assert backward.left.predicates() == {"9DC:Vehicle"}
        assert not equality.has_projection()

    def test_replication_arity_checked(self):
        with pytest.raises(MappingError):
            replication(parse_atom("A:R(x)"), parse_atom("B:S(x, y)"))

    def test_projection_detection_on_equality(self):
        projecting = EqualityMapping(
            parse_query("L(x) :- A:R(x, y)"), parse_query("R(x) :- B:S(x)"))
        assert projecting.has_projection()

    def test_comparison_detection(self):
        mapping = InclusionMapping(
            parse_query("L(x) :- A:R(x)"),
            parse_query("R(x) :- B:S(x, y), y < 5"))
        assert mapping.has_comparisons()


class TestDefinitionalMapping:
    def test_head_and_body_predicates(self):
        mapping = DefinitionalMapping(parse_query(
            "9DC:SkilledPerson(sid, \"Doctor\") :- H:Doctor(sid, h, l, s, e)"))
        assert mapping.head_predicate == "9DC:SkilledPerson"
        assert mapping.body_predicates() == frozenset({"H:Doctor"})
        assert mapping.references_peers() == frozenset({"9DC", "H"})
        assert not mapping.has_comparisons()

    def test_accepts_plain_conjunctive_query(self):
        mapping = DefinitionalMapping(parse_query("A:P(x) :- A:Q(x), x < 3"))
        assert mapping.has_comparisons()
