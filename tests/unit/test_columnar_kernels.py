"""Unit tests for the columnar batch-execution layer (ISSUE 6).

Covers the :class:`~repro.database.columnar.ColumnTable` kernels (join,
fused select, project/rename, distinct, union, comparison masks) against
the row algebra as oracle, the dtype-sniffing edge cases that force the
pure-Python fallback (mixed dtypes, NaN, big integers, NumPy absent), the
vectorized planner mode, and the process-pool / REPRO_* knob plumbing.
"""

import random

import pytest

from repro.config import columnar_enabled, shared_executor
from repro.database.algebra import Table
from repro.database import columnar
from repro.database.columnar import (
    ColumnTable,
    compare_cols_mask,
    compare_mask,
    join_indices,
    union_all,
    union_distinct,
)
from repro.database.planner import (
    CardinalityCostModel,
    compile_query,
    compile_union,
    execute_plan,
)
from repro.database.instance import Instance
from repro.datalog.parser import parse_query
from repro.datalog.queries import UnionQuery
from repro.errors import EvaluationError
from repro.pdms.materialization import estimate_result_bytes


def as_rows(ct: ColumnTable):
    return ct.row_set()


@pytest.fixture
def no_numpy(monkeypatch):
    """Force every kernel onto the pure-Python fallback path."""
    monkeypatch.setattr(columnar, "np", None)


class TestConversions:
    def test_round_trip_preserves_rows_and_columns(self):
        table = Table(("a", "b"), [(1, "x"), (2, "y"), (3, "z")])
        ct = ColumnTable.from_table(table)
        assert ct.columns == table.columns
        assert len(ct) == 3
        back = ct.to_table()
        assert back.columns == table.columns
        assert back.rows == table.rows

    def test_empty_and_zero_width_tables(self):
        empty = ColumnTable.from_rows(("a",), [])
        assert len(empty) == 0
        assert as_rows(empty) == set()
        nullary = ColumnTable.from_rows((), [(), (), ()])
        assert as_rows(nullary) == {()}
        assert nullary.to_table().rows == frozenset({()})

    def test_numeric_columns_use_numpy_but_hand_back_python_values(self):
        if columnar.np is None:
            pytest.skip("NumPy not installed")
        ct = ColumnTable.from_rows(("a",), [(1,), (2,)])
        assert isinstance(ct.data[0], columnar.np.ndarray)
        for row in ct.row_set():
            assert type(row[0]) is int

    def test_dtype_sniffing_fallbacks(self):
        cases = [
            [(2 ** 70,), (1,)],          # beyond int64
            [(1.5,), (float("nan"),)],   # NaN poisons the float path
            [(1,), ("x",)],              # mixed kinds
            [(None,), (None,)],          # non-numeric
            [(True,), (False,)],         # pure bool stays Python bool
        ]
        for rows in cases:
            ct = ColumnTable.from_rows(("a",), rows)
            assert isinstance(ct.data[0], list)
        # NaN identity semantics survive the fallback exactly like a set's.
        nan = float("nan")
        ct = ColumnTable.from_rows(("a",), [(nan,), (1.0,)])
        assert as_rows(ct) == {(nan,), (1.0,)}

    def test_pickle_round_trip(self):
        import pickle

        ct = ColumnTable.from_rows(("a", "b"), [(1, "x"), (2, "y")])
        clone = pickle.loads(pickle.dumps(ct))
        assert clone.columns == ct.columns
        assert as_rows(clone) == as_rows(ct)

    def test_estimated_bytes_feeds_cache_sizing(self):
        ct = ColumnTable.from_rows(("a", "b"), [(i, str(i)) for i in range(100)])
        assert estimate_result_bytes(ct) == ct.estimated_bytes() > 0


class TestJoinKernel:
    def randomized_tables(self, seed, values):
        rng = random.Random(seed)
        left = Table(
            ("a", "b"),
            {(rng.choice(values), rng.choice(values)) for _ in range(30)},
        )
        right = Table(
            ("b", "c"),
            {(rng.choice(values), rng.choice(values)) for _ in range(30)},
        )
        return left, right

    @pytest.mark.parametrize("seed", range(5))
    def test_join_matches_row_engine_on_ints(self, seed):
        left, right = self.randomized_tables(seed, list(range(6)))
        expected = left.natural_join(right)
        got = ColumnTable.from_table(left).natural_join(
            ColumnTable.from_table(right))
        assert got.columns == expected.columns
        assert as_rows(got) == set(expected.rows)

    @pytest.mark.parametrize("seed", range(3))
    def test_join_matches_row_engine_on_mixed_values(self, seed):
        values = [0, 1, "x", "y", 2.5, True, 2 ** 70]
        left, right = self.randomized_tables(seed, values)
        expected = left.natural_join(right)
        got = ColumnTable.from_table(left).natural_join(
            ColumnTable.from_table(right))
        assert as_rows(got) == set(expected.rows)

    def test_multi_column_keys(self):
        left = Table(("a", "b", "c"), [(1, 2, 9), (1, 3, 8), (2, 2, 7)])
        right = Table(("a", "b", "d"), [(1, 2, "u"), (2, 2, "v"), (3, 3, "w")])
        expected = left.natural_join(right)
        got = ColumnTable.from_table(left).natural_join(
            ColumnTable.from_table(right))
        assert got.columns == expected.columns
        assert as_rows(got) == set(expected.rows)

    def test_empty_side_yields_empty(self):
        left = ColumnTable.from_rows(("a", "b"), [(1, 2)])
        right = ColumnTable.from_rows(("b", "c"), [])
        assert len(left.natural_join(right)) == 0
        assert len(right.natural_join(left)) == 0

    def test_disjoint_columns_cross_product(self):
        left = ColumnTable.from_rows(("a",), [(1,), (2,)])
        right = ColumnTable.from_rows(("b",), [("x",), ("y",)])
        assert as_rows(left.natural_join(right)) == {
            (1, "x"), (1, "y"), (2, "x"), (2, "y")}

    def test_build_side_override_changes_nothing_observable(self):
        left = Table(("a", "b"), [(i, i % 3) for i in range(10)])
        right = Table(("b", "c"), [(i % 3, i) for i in range(4)])
        lct, rct = ColumnTable.from_table(left), ColumnTable.from_table(right)
        assert as_rows(lct.natural_join(rct, build_right=True)) == \
            as_rows(lct.natural_join(rct, build_right=False))

    def test_int_float_cross_dtype_joins_exactly(self):
        # 2**53 + 1 is where float64 loses integer exactness; Python
        # equality stays exact, so the kernel must not cast.
        big = 2 ** 53 + 1
        left = Table(("k", "l"), [(big, 1), (2, 2)])
        right = Table(("k", "r"), [(float(big), "f"), (2.0, "g")])
        expected = left.natural_join(right)
        got = ColumnTable.from_table(left).natural_join(
            ColumnTable.from_table(right))
        assert as_rows(got) == set(expected.rows)

    def test_join_indices_shape(self):
        li, ri = join_indices(
            [ColumnTable.from_rows(("k",), [(1,), (2,)]).data[0]],
            [ColumnTable.from_rows(("k",), [(2,), (2,)]).data[0]],
            2,
            2,
        )
        assert len(li) == len(ri) == 2


class TestSelectProjectDistinctUnion:
    def test_fused_select_matches_row_filters(self):
        rows = [(i % 4, i % 3, i % 4) for i in range(24)]
        table = Table(("x", "y", "z"), rows)
        ct = ColumnTable.from_table(table)
        expected = table.select_eq("x", 1).select_columns_equal("x", "z")
        got = ct.fused_select(const_filters=[(0, 1)], equal_pairs=[(0, 2)])
        assert as_rows(got) == set(expected.rows)

    def test_project_positions_is_zero_copy(self):
        ct = ColumnTable.from_rows(("a", "b"), [(1, 2), (3, 4)])
        projected = ct.project_positions((1,), ("bb",))
        assert projected.data[0] is ct.data[1]
        assert projected.columns == ("bb",)

    def test_rename_is_zero_copy(self):
        ct = ColumnTable.from_rows(("a", "b"), [(1, 2)])
        renamed = ct.rename({"a": "aa"})
        assert renamed.columns == ("aa", "b")
        assert renamed.data[0] is ct.data[0]

    def test_distinct_numeric_and_object_paths(self):
        dup_rows = [(1, "x"), (1, "x"), (2, "y")]
        ct = ColumnTable.from_rows(("a", "b"), dup_rows)
        assert len(ct) == 3
        assert len(ct.distinct()) == 2
        numeric = ColumnTable.from_rows(("a", "b"), [(1, 2), (1, 2), (3, 4)])
        assert len(numeric.distinct()) == 2

    def test_union_all_and_distinct(self):
        first = ColumnTable.from_rows(("a",), [(1,), (2,)])
        second = ColumnTable.from_rows(("a",), [(2,), (3,)])
        assert len(union_all([first, second])) == 4
        assert as_rows(union_distinct([first, second])) == {(1,), (2,), (3,)}
        empty = union_distinct([], columns=("a",))
        assert len(empty) == 0 and empty.columns == ("a",)
        with pytest.raises(EvaluationError):
            union_all([])
        with pytest.raises(EvaluationError):
            union_all([first, ColumnTable.from_rows(("b",), [(1,)])])

    def test_union_of_mixed_storage_columns(self):
        numeric = ColumnTable.from_rows(("a",), [(1,), (2,)])
        textual = ColumnTable.from_rows(("a",), [("x",)])
        assert as_rows(union_all([numeric, textual])) == {(1,), (2,), ("x",)}


class TestComparisonMasks:
    def test_numeric_and_fallback_semantics_match_compare_values(self):
        from repro.datalog.atoms import compare_values

        values = [0, 1, 3, 2 ** 54, -5]
        consts = [1, 2.5, float(2 ** 54), "x", True]
        ct = ColumnTable.from_rows(("a",), [(v,) for v in values])
        col = ct.data[0]
        stored = [row[0] for row in ct.iter_rows()]
        for op in ("=", "!=", "<", "<=", ">", ">="):
            for const in consts:
                mask = list(compare_mask(col, op, const, len(ct)))
                expected = [compare_values(v, op, const) for v in stored]
                assert mask == expected, (op, const)

    def test_column_vs_column_masks(self):
        ct = ColumnTable.from_rows(
            ("a", "b"), [(1, 1), (2, 3), (4, 2.0), (5, "x")])
        mask = list(compare_cols_mask(ct.data[0], "=", ct.data[1], len(ct)))
        stored = list(ct.iter_rows())
        assert mask == [a == b for a, b in stored]


class TestPurePythonFallback:
    def test_kernels_without_numpy(self, no_numpy):
        left = Table(("a", "b"), [(1, 2), (3, 4), (5, 2)])
        right = Table(("b", "c"), [(2, "x"), (4, "y")])
        lct = ColumnTable.from_table(left)
        rct = ColumnTable.from_table(right)
        assert isinstance(lct.data[0], list)
        joined = lct.natural_join(rct)
        assert as_rows(joined) == set(left.natural_join(right).rows)
        assert len(joined.distinct()) == len(joined)
        assert as_rows(lct.fused_select(const_filters=[(0, 1)])) == {(1, 2)}
        mask = compare_mask(lct.data[0], ">", 2, len(lct))
        assert list(mask) == [v > 2 for v, _ in lct.iter_rows()]
        assert as_rows(union_distinct([lct, lct])) == set(left.rows)


def build_instance():
    return Instance.from_dict({
        "r": [(i, i % 5) for i in range(50)],
        "s": [(i % 5, i % 7) for i in range(40)],
    })


class TestVectorizedPlanner:
    def test_vectorized_and_row_paths_agree(self):
        instance = build_instance()
        query = parse_query("Q(x, z) :- r(x, y), s(y, z), y > 1")
        plan = compile_query(query, instance)
        vectorized = execute_plan(plan, instance, vectorized=True)
        row = execute_plan(plan, instance, vectorized=False)
        assert vectorized.columns == row.columns
        assert vectorized.rows == row.rows

    def test_union_plan_with_shared_memo(self):
        instance = build_instance()
        union = UnionQuery([
            parse_query("Q(x) :- r(x, y)"),
            parse_query("Q(x) :- s(x, y)"),
        ])
        plan = compile_union(union, instance, share_common=True)
        memo: dict = {}
        vectorized = execute_plan(plan, instance, memo, vectorized=True)
        assert all(isinstance(value, Table) for value in memo.values())
        assert vectorized.rows == execute_plan(
            plan, instance, {}, vectorized=False).rows

    def test_cost_model_steers_build_side_without_changing_answers(self):
        instance = build_instance()
        query = parse_query("Q(x, z) :- r(x, y), s(y, z)")
        cost = CardinalityCostModel(instance)
        plan = compile_query(query, cost=cost)
        assert execute_plan(plan, instance, vectorized=True, cost=cost).rows \
            == execute_plan(plan, instance, vectorized=False).rows

    def test_knob_selects_default_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        assert columnar_enabled() is False
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        assert columnar_enabled() is True
        monkeypatch.setenv("REPRO_COLUMNAR", "yes")
        with pytest.raises(EvaluationError):
            columnar_enabled()

    def test_executor_knob_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARED_EXECUTOR", "fibers")
        with pytest.raises(EvaluationError) as excinfo:
            shared_executor()
        assert "REPRO_SHARED_EXECUTOR" in str(excinfo.value)

    def test_vectorized_planner_without_numpy(self, no_numpy):
        instance = build_instance()
        query = parse_query("Q(x, z) :- r(x, y), s(y, z), y != 2")
        plan = compile_query(query, instance)
        assert execute_plan(plan, instance, vectorized=True).rows == \
            execute_plan(plan, instance, vectorized=False).rows
