"""Concurrency hammer for :class:`QueryService` (ISSUE 5 satellite).

Before this PR the service's caches and :class:`ServiceStats` counters
were mutated without synchronisation — a latent bug the cluster work
exposed: two threads missing on the same signature could double-insert,
LRU eviction could race `move_to_end`, and `hits`/`misses` lost updates.
These tests hammer ``answer`` (and churn) from many threads and assert
the exact counter arithmetic that unsynchronised updates would break.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.pdms import (
    PDMS,
    QueryService,
    StorageDescription,
    certain_answers,
    combine_peer_instances,
)

THREADS = 8
ROUNDS = 30


def build_service(engine="shared", max_entries=1024):
    pdms = PDMS("hammer")
    top = pdms.add_peer("T")
    for relation in ("A", "B", "C"):
        top.add_relation(relation, ["x", "y"])
    for peer_name, relation, stored in (
        ("P1", "A", "sa"), ("P2", "B", "sb"), ("P3", "C", "sc"),
    ):
        pdms.add_peer(peer_name)
        pdms.add_storage_description(StorageDescription(
            peer_name, stored,
            parse_query(f"V(x, y) :- T:{relation}(x, y)"),
            exact=False, name=f"store_{stored}",
        ))
    data = {
        "P1": Instance.from_dict({"sa": [(i, i + 1) for i in range(12)]}),
        "P2": Instance.from_dict({"sb": [(i, i + 2) for i in range(12)]}),
        "P3": Instance.from_dict({"sc": [(i, i % 3) for i in range(12)]}),
    }
    queries = [
        parse_query("Q(x, y) :- T:A(x, y)"),
        parse_query("Q(x, z) :- T:A(x, y), T:B(y, z)"),
        parse_query("Q(x, z) :- T:B(x, y), T:C(y, z)"),
        parse_query("Q(x) :- T:A(x, y), T:C(y, z)"),
    ]
    service = QueryService(pdms, data=data, engine=engine)
    return service, data, queries


@pytest.mark.parametrize("engine", ["backtracking", "shared", "columnar", "distributed"])
def test_concurrent_answers_keep_counters_exact(engine):
    """N threads x M rounds: totals must add up to the call count exactly."""
    service, data, queries = build_service(engine=engine)
    combined = combine_peer_instances(data)
    expected = [certain_answers(service.pdms, q, combined) for q in queries]
    errors = []
    barrier = threading.Barrier(THREADS)

    def worker(seed: int):
        try:
            barrier.wait(timeout=30)
            for round_number in range(ROUNDS):
                index = (seed + round_number) % len(queries)
                answers = service.answer(queries[index])
                if answers != expected[index]:
                    errors.append(
                        f"thread {seed} round {round_number}: wrong answers"
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"thread {seed}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors[:5]
    stats = service.stats_snapshot()
    total = THREADS * ROUNDS
    # Lost updates would make these sums fall short of the call count.
    assert stats.lookups == total
    assert stats.misses == len(queries)
    assert stats.hits == total - len(queries)
    assert service.cache_size == len(queries)


def test_concurrent_answers_with_lru_eviction_pressure():
    """A 1-entry cache under contention: every counter still adds up."""
    service, data, queries = build_service(engine="shared", max_entries=1024)
    # Rebuild with a tiny cache to force constant eviction races.
    service = QueryService(
        service.pdms, data=data, engine="shared", max_entries=1,
    )
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        list(pool.map(
            lambda seed: [
                service.answer(queries[(seed + r) % len(queries)])
                for r in range(ROUNDS)
            ],
            range(THREADS),
        ))
    stats = service.stats_snapshot()
    total = THREADS * ROUNDS
    assert stats.lookups == total
    assert stats.hits + stats.misses == total
    assert stats.evictions == stats.misses - 1  # all but the survivor evicted
    assert service.cache_size == 1


def test_concurrent_answers_during_catalogue_churn():
    """Answers stay sound and the service stays consistent under churn."""
    service, data, queries = build_service(engine="shared")
    combined = combine_peer_instances(data)
    # The base peers and descriptions never leave, so every answer set —
    # whatever churn is in flight — must contain the base answers.
    baselines = [certain_answers(service.pdms, q, combined) for q in queries]
    stop = threading.Event()
    errors = []

    def churner():
        try:
            toggle = 0
            while not stop.is_set():
                toggle += 1
                name = f"S{toggle % 2}"
                instance = Instance.from_dict({f"extra_{name}": [(1, 2)]})
                service.add_peer(name, data=instance)
                service.add_storage_description(StorageDescription(
                    name, f"extra_{name}",
                    parse_query("V(x, y) :- T:A(x, y)"),
                    exact=False, name=f"churn_{name}_{toggle}",
                ))
                service.remove_peer(name)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"churner: {type(exc).__name__}: {exc}")

    def asker(seed: int):
        try:
            for round_number in range(ROUNDS):
                index = (seed + round_number) % len(queries)
                answers = service.answer(queries[index])
                if not answers >= baselines[index]:
                    errors.append(f"asker {seed}: lost base answers")
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(f"asker {seed}: {type(exc).__name__}: {exc}")

    churn_thread = threading.Thread(target=churner)
    ask_threads = [
        threading.Thread(target=asker, args=(seed,)) for seed in range(4)
    ]
    churn_thread.start()
    for thread in ask_threads:
        thread.start()
    for thread in ask_threads:
        thread.join(timeout=120)
    stop.set()
    churn_thread.join(timeout=120)
    assert not errors, errors[:5]
    # The churn log was fully replayed: the caches converge afterwards.
    final = service.answer(queries[0])
    assert final == certain_answers(
        service.pdms, queries[0], combine_peer_instances(data))
