"""Unit tests for repro.datalog.minimize."""

from repro.datalog.containment import are_equivalent
from repro.datalog.minimize import is_minimal, minimize
from repro.datalog.parser import parse_query


class TestMinimize:
    def test_redundant_atom_removed(self):
        query = parse_query("Q(x, y) :- R(x, z), S(z, y), R(x, w)")
        minimized = minimize(query)
        assert len(minimized.relational_body()) == 2
        assert are_equivalent(query, minimized)

    def test_already_minimal_query_unchanged(self):
        query = parse_query("Q(x, y) :- R(x, z), S(z, y)")
        assert len(minimize(query).relational_body()) == 2
        assert is_minimal(query)

    def test_duplicate_atoms_collapse(self):
        query = parse_query("Q(x) :- R(x, y), R(x, y)")
        assert len(minimize(query).relational_body()) == 1

    def test_head_variables_are_preserved(self):
        query = parse_query("Q(x, w) :- R(x, z), S(z, y), R(x, w)")
        minimized = minimize(query)
        # R(x, w) binds the head variable w and therefore cannot be dropped.
        assert any(
            atom.predicate == "R" and atom.args[1].name == "w"
            for atom in minimized.relational_body()
        )
        assert are_equivalent(query, minimized)

    def test_comparisons_on_dropped_variables_are_dropped(self):
        query = parse_query("Q(x) :- R(x, y), R(x, w), w < 10")
        minimized = minimize(query)
        assert are_equivalent(query, minimized) or len(minimized.body) <= len(query.body)

    def test_triangle_vs_path_not_collapsed(self):
        # The triangle is minimal: dropping any atom changes the query.
        triangle = parse_query("Q(x) :- E(x, y), E(y, z), E(z, x)")
        assert len(minimize(triangle).relational_body()) == 3

    def test_unfolded_self_join_minimizes(self):
        query = parse_query("Q(x) :- E(x, y), E(x, z)")
        minimized = minimize(query)
        assert len(minimized.relational_body()) == 1
        assert are_equivalent(query, minimized)
