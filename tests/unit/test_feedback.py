"""Unit tests for the self-tuning loop: q-error feedback, corrections,
champion/challenger racing, and the cost-model floor fix that rides along.

The integration-grade cases build a deliberately *correlated* workload —
a hot join key the independence assumption cannot see — so the static
optimizer picks the wrong join order, the feedback log catches the blown
estimate, and the recompiled challenger plan wins the race.
"""

import pytest

from repro.database import (
    CardinalityCostModel,
    Instance,
    QErrorLog,
    q_error,
)
from repro.datalog.parser import parse_query
from repro.errors import EvaluationError, PDMSConfigurationError
from repro.pdms import (
    PDMS,
    QueryService,
    StorageDescription,
    evaluate_reformulation,
    reformulate,
)
from repro.config import float_from_env, race_margin
from repro.pdms.service import _RACE_BUDGET


# ---------------------------------------------------------------------------
# q_error and the log itself
# ---------------------------------------------------------------------------

class TestQError:
    def test_symmetric_and_floored(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 10) == 10.0
        assert q_error(10, 100) == 10.0
        # Zeroes clamp to 1 instead of dividing by zero.
        assert q_error(0, 0) == 1.0
        assert q_error(0, 1000) == 1000.0
        assert q_error(1000, 0) == 1000.0


class TestQErrorLog:
    def test_record_returns_q_and_keeps_observation(self):
        log = QErrorLog()
        q = log.record("frag", {"r"}, "tok", estimated=10.0, actual=100)
        assert q == 10.0
        (obs,) = log.observations()
        assert obs.key == "frag" and obs.actual == 100 and obs.q == 10.0
        assert obs.relations == frozenset({"r"})
        assert log.stats.observations == 1

    def test_good_estimates_do_not_become_corrections(self):
        log = QErrorLog(correction_threshold=2.0)
        log.record("frag", {"r"}, "tok", estimated=100.0, actual=150)
        assert log.correction("frag", "tok") is None
        assert log.generation == 0

    def test_bad_estimate_becomes_version_scoped_correction(self):
        log = QErrorLog(correction_threshold=2.0)
        log.record("frag", {"r"}, "tok", estimated=10.0, actual=100)
        assert log.correction("frag", "tok") == 100
        assert log.generation == 1
        # A different data version means the truth is stale: miss.
        assert log.correction("frag", "other-token") is None

    def test_estimateless_observation_feeds_corrections_consumers(self):
        # The per-rewriting engines measure actuals without an estimate:
        # no q, no percentile movement, but no crash either.
        log = QErrorLog()
        assert log.record("frag", {"r"}, "tok", estimated=None, actual=7) is None
        assert log.stats.observations == 1
        (obs,) = log.observations()
        assert obs.q is None and obs.estimated is None

    def test_generation_moves_only_on_material_change(self):
        log = QErrorLog(correction_threshold=2.0)
        log.record("frag", {"r"}, "tok", estimated=10.0, actual=100)
        assert log.generation == 1
        # Re-observing roughly the same actual refreshes the entry
        # without another generation bump (no planning decision changes).
        log.record("frag", {"r"}, "tok2", estimated=10.0, actual=110)
        assert log.generation == 1
        assert log.correction("frag", "tok2") == 110
        # A materially different actual bumps it again.
        log.record("frag", {"r"}, "tok3", estimated=10.0, actual=500)
        assert log.generation == 2

    def test_invalidate_relations_drops_dependent_corrections(self):
        log = QErrorLog()
        log.record("f1", {"r", "s"}, "t", estimated=1.0, actual=50)
        log.record("f2", {"u"}, "t", estimated=1.0, actual=50)
        assert log.stats.corrections == 2
        assert log.invalidate_relations({"s"}) == 1
        assert log.correction("f1", "t") is None
        assert log.correction("f2", "t") == 50
        assert log.stats.corrections == 1

    def test_correction_capacity_is_bounded_lru(self):
        log = QErrorLog(max_corrections=2)
        for i in range(3):
            log.record(f"f{i}", {"r"}, "t", estimated=1.0, actual=100)
        assert log.correction("f0", "t") is None  # oldest evicted
        assert log.correction("f2", "t") == 100

    def test_blown_estimates_are_counted(self):
        log = QErrorLog(blowup_factor=8.0)
        log.record("f", {"r"}, "t", estimated=10.0, actual=50)  # 5x: not blown
        assert log.blown_events == 0
        log.record("g", {"r"}, "t", estimated=10.0, actual=100)  # 10x: blown
        assert log.blown_events == 1
        # Overestimates are errors but not blowups (they cost time, not
        # memory); only actual >> estimated trips the re-plan trigger.
        log.record("h", {"r"}, "t", estimated=1000.0, actual=10)
        assert log.blown_events == 1

    def test_percentiles_and_aggregates(self):
        log = QErrorLog()
        for i, q in enumerate([1.0, 1.0, 4.0, 100.0]):
            log.record(f"f{i}", {"r"}, "t", estimated=1.0, actual=int(q),
                       columns=[("r", 0)])
        log.refresh_percentiles()
        assert log.stats.q_error_p50 == 4.0
        assert log.stats.q_error_max == 100.0
        per_rel = log.per_relation()["r"]
        assert per_rel["count"] == 4 and per_rel["max"] == 100.0
        per_col = log.per_column()[("r", 0)]
        assert per_col["count"] == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QErrorLog(correction_threshold=0.5)
        with pytest.raises(ValueError):
            QErrorLog(blowup_factor=0.0)


# ---------------------------------------------------------------------------
# Satellite: the scan_estimate zero floor
# ---------------------------------------------------------------------------

class TestScanEstimateFloor:
    def test_restricted_scan_of_populated_relation_floors_at_one(self):
        instance = Instance()
        instance.add_all("small", [(1, 2), (3, 4)])
        model = CardinalityCostModel(instance)
        # 2 // (1 + 3) == 0 before the fix; the floor keeps it at 1.
        assert model.scan_estimate("small", filters=3) == 1

    def test_empty_relation_still_estimates_zero(self):
        instance = Instance()
        instance.add_all("small", [(1, 2)])
        model = CardinalityCostModel(instance)
        assert model.scan_estimate("missing") == 0
        assert model.scan_estimate("missing", filters=5) == 0

    def test_populated_never_ties_with_empty(self):
        """The ordering bug the floor fixes: a heavily restricted scan of
        real data must rank strictly above a genuinely empty relation."""
        instance = Instance()
        instance.add_all("tiny", [(1, 1), (2, 2), (3, 3)])
        model = CardinalityCostModel(instance)
        for restrictions in range(10):
            populated = model.scan_estimate("tiny", filters=restrictions)
            assert populated >= 1 > model.scan_estimate("void", filters=restrictions)


# ---------------------------------------------------------------------------
# Knob parsing
# ---------------------------------------------------------------------------

class TestKnobs:
    def test_float_from_env_parses_and_fails_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_RACE_MARGIN", raising=False)
        assert race_margin() == 2.0
        monkeypatch.setenv("REPRO_RACE_MARGIN", "1.5")
        assert race_margin() == 1.5
        monkeypatch.setenv("REPRO_RACE_MARGIN", "fast")
        with pytest.raises(EvaluationError, match="REPRO_RACE_MARGIN"):
            race_margin()
        monkeypatch.setenv("REPRO_RACE_MARGIN", "0.5")
        with pytest.raises(EvaluationError, match=">= 1.0"):
            race_margin()
        monkeypatch.setenv("SOME_FLOAT", "-3")
        with pytest.raises(EvaluationError, match="SOME_FLOAT"):
            float_from_env("SOME_FLOAT", 0.0)

    def test_malformed_adaptive_knobs_fail_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE", "yes")
        with pytest.raises(PDMSConfigurationError):
            QueryService()
        monkeypatch.delenv("REPRO_ADAPTIVE")
        monkeypatch.setenv("REPRO_RACE_MARGIN", "0.1")
        with pytest.raises(PDMSConfigurationError):
            QueryService()

    def test_race_margin_parameter_validated(self):
        with pytest.raises(PDMSConfigurationError):
            QueryService(race_margin=0.9)


# ---------------------------------------------------------------------------
# A correlated workload the static cost model misjudges
# ---------------------------------------------------------------------------

def _skewed_pdms():
    """A three-way chain join whose cheap-looking first join is a trap.

    ``A |><| B`` estimates tiny under independence (B's y column is
    almost all distinct) but the 50 hot ``y=0`` rows of A each match
    B's 1000 hot rows — 50k intermediate rows.  ``B |><| C`` estimates
    large (B's z column has ~1000 distinct values against 10k rows) but
    actually yields 5 rows.  A static plan joins A-B first; a corrected
    plan joins B-C first.
    """
    pdms = PDMS()
    peer = pdms.add_peer("P")
    peer.add_relation("A", ["x", "y"])
    peer.add_relation("B", ["y", "z"])
    peer.add_relation("C", ["z", "w"])
    pdms.add_storage_description(
        StorageDescription("P", "sa", parse_query("V(x, y) :- P:A(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "sb", parse_query("V(y, z) :- P:B(y, z)")))
    pdms.add_storage_description(
        StorageDescription("P", "sc", parse_query("V(z, w) :- P:C(z, w)")))
    instance = Instance()
    a_rows = [(i, 0) for i in range(50)]
    a_rows += [(150 + i, 20000 + i) for i in range(5)]
    a_rows += [(50 + i, 30000 + i) for i in range(95)]
    instance.add_all("sa", a_rows)
    b_rows = [(0, z) for z in range(1000)]
    b_rows += [(20000 + i, 2000 + i) for i in range(5)]
    b_rows += [(40000 + i, i % 1000) for i in range(3995)]
    instance.add_all("sb", b_rows)
    # C is wide enough that the B-C estimate safely out-prices A-B, yet
    # only B's five rare rows actually reach its range.
    instance.add_all("sc", [(2000 + i, i) for i in range(200)])
    query = parse_query("Q(x, w) :- P:A(x, y), P:B(y, z), P:C(z, w)")
    truth = frozenset((150 + i, i) for i in range(5))
    return pdms, query, instance, truth


class TestAdaptiveService:
    def test_adaptive_converges_and_races(self):
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, fragment_cache_bytes=0)
        for _ in range(6):
            assert service.answer(query) == truth
        adaptive = service.stats_snapshot().adaptive
        assert adaptive.observations > 0
        assert adaptive.corrections > 0
        assert adaptive.corrections_applied > 0
        assert adaptive.races_run > 0
        assert adaptive.races_won > 0
        assert adaptive.races_mismatched == 0
        assert service.feedback.blown_events > 0
        assert adaptive.q_error_max > 8.0  # the trap was measured

    def test_adaptive_matches_static_on_every_engine(self):
        pdms, query, instance, truth = _skewed_pdms()
        for engine in ("backtracking", "plan", "shared", "columnar"):
            adaptive = QueryService(pdms, data={"P": instance}, engine=engine,
                                    adaptive=True, fragment_cache_bytes=0)
            static = QueryService(pdms, data={"P": instance}, engine=engine,
                                  fragment_cache_bytes=0)
            for _ in range(3):
                assert adaptive.answer(query) == static.answer(query) == truth

    def test_env_toggle_builds_the_same_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE", "1")
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               fragment_cache_bytes=0)
        assert service.adaptive and service.feedback is not None
        for _ in range(3):
            assert service.answer(query) == truth
        assert service.stats.adaptive.observations > 0

    def test_disabled_service_keeps_no_log(self):
        pdms, query, instance, truth = _skewed_pdms()
        # adaptive=False beats any REPRO_ADAPTIVE in the environment.
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=False)
        assert not service.adaptive and service.feedback is None
        assert service.answer(query) == truth
        assert service.stats.adaptive.observations == 0

    def test_losing_challenger_never_contributes_rows(self, monkeypatch):
        """Satellite 3c as a deterministic unit test: poison every
        challenger evaluation; the served answer must still be the
        champion's, the mismatch counted, the champion retained."""
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, race_margin=100.0,
                               fragment_cache_bytes=0)
        assert service.answer(query) == truth  # seeds corrections

        real = QueryService._evaluate_candidate

        def poisoned(self, result, source, engine, plan, feedback):
            rows, seconds = real(self, result, source, engine, plan, feedback)
            if plan is not champion_plan:
                return set(rows) | {("poison", "poison")}, 0.0  # "fastest"
            return rows, seconds

        champion_plan = service._champions[next(iter(service._champions))].plan
        monkeypatch.setattr(QueryService, "_evaluate_candidate", poisoned)
        served = service.answer(query)
        assert served == truth
        assert ("poison", "poison") not in served
        stats = service.stats_snapshot().adaptive
        assert stats.races_run >= 1
        assert stats.races_mismatched >= 1
        assert stats.races_won == 0
        state = service._champions[next(iter(service._champions))]
        assert state.plan is champion_plan  # mismatching challenger rejected

    def test_race_budget_is_bounded_then_adopts_outright(self):
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, fragment_cache_bytes=0)
        for _ in range(_RACE_BUDGET + 4):
            assert service.answer(query) == truth
        assert service.stats.adaptive.races_run <= _RACE_BUDGET + 1

    def test_limited_answers_never_race(self):
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, fragment_cache_bytes=0)
        for _ in range(4):
            assert len(service.answer(query, limit=2)) == 2
        assert service.stats.adaptive.races_run == 0

    def test_writes_invalidate_corrections_via_version_tokens(self):
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, fragment_cache_bytes=0)
        for _ in range(3):
            service.answer(query)
        assert service.stats.adaptive.corrections > 0
        instance.add("sc", (2100, 99))  # no new answers, new data version
        before = service.feedback.stats.observations
        assert service.answer(query) == truth
        # Stale corrections missed (token moved), fragments re-measured.
        assert service.feedback.stats.observations > before

    def test_peer_removal_drops_dependent_corrections(self):
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, fragment_cache_bytes=0)
        for _ in range(3):
            service.answer(query)
        assert service.stats.adaptive.corrections > 0
        service.remove_peer("P")
        assert service.stats.adaptive.corrections == 0


class TestRecordingAcrossEngines:
    def test_every_engine_records_true_fragment_counts(self):
        pdms, query, instance, truth = _skewed_pdms()
        result = reformulate(pdms, query)
        for engine in ("backtracking", "plan", "shared", "columnar",
                       "distributed"):
            log = QErrorLog()
            rows = evaluate_reformulation(
                result, {"P": instance}, engine=engine, feedback=log)
            assert rows == truth, engine
            assert log.stats.observations > 0, engine
            for obs in log.observations():
                assert obs.actual >= 0

    def test_scan_observations_match_relation_cardinality(self):
        pdms, query, instance, truth = _skewed_pdms()
        result = reformulate(pdms, query)
        log = QErrorLog()
        evaluate_reformulation(
            result, {"P": instance}, engine="shared", feedback=log)
        sizes = {name: instance.cardinality(name) for name in ("sa", "sb", "sc")}
        scans = [obs for obs in log.observations()
                 if len(obs.relations) == 1 and obs.q is not None]
        assert scans, "scan fragments should have been measured"
        for obs in scans:
            (relation,) = obs.relations
            assert obs.actual == sizes[relation], relation
            assert obs.q == 1.0  # scan estimates are exact here


# ---------------------------------------------------------------------------
# Mid-union re-planning
# ---------------------------------------------------------------------------

def _multi_rewriting_pdms():
    """The skewed join reachable through several storage descriptions, so
    the union has multiple rewritings and a blown first fragment leaves
    work to re-plan."""
    pdms, query, instance, truth = _skewed_pdms()
    pdms.add_storage_description(
        StorageDescription("P", "sa2", parse_query("V(x, y) :- P:A(x, y)")))
    instance.add_all("sa2", [(i, 0) for i in range(25)])
    extra = frozenset()
    return pdms, query, instance, truth | extra


class TestReplan:
    def test_blown_estimate_triggers_replan_and_answers_survive(self):
        pdms, query, instance, truth = _multi_rewriting_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, fragment_cache_bytes=0)
        static = QueryService(pdms, data={"P": instance}, engine="shared",
                              fragment_cache_bytes=0)
        expected = static.answer(query)
        for _ in range(4):
            assert service.answer(query) == expected
        assert service.feedback.blown_events > 0
        assert service.stats.adaptive.replans > 0

    def test_measurement_only_log_never_replans(self):
        pdms, query, instance, truth = _multi_rewriting_pdms()
        log = QErrorLog(replan=False)
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True, feedback=log,
                               fragment_cache_bytes=0)
        for _ in range(4):
            service.answer(query)
        assert service.feedback.blown_events > 0
        assert service.stats.adaptive.replans == 0


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

class TestStatsSnapshot:
    def test_snapshot_is_deep_and_independent(self):
        pdms, query, instance, truth = _skewed_pdms()
        service = QueryService(pdms, data={"P": instance}, engine="shared",
                               adaptive=True)
        service.answer(query)
        snap = service.stats_snapshot()
        before = (snap.hits, snap.misses, snap.fragments.lookups,
                  snap.adaptive.observations)
        service.answer(query)
        service.answer(query)
        assert (snap.hits, snap.misses, snap.fragments.lookups,
                snap.adaptive.observations) == before
        assert snap.adaptive is not service.stats.adaptive
        assert snap.fragments is not service.stats.fragments
        live = service.stats_snapshot()
        assert live.adaptive.observations > snap.adaptive.observations

    def test_snapshot_percentiles_are_fresh(self):
        log = QErrorLog()
        service = QueryService(adaptive=True, feedback=log)
        for i in range(3):  # far below the 64-record refresh cadence
            log.record(f"f{i}", {"r"}, "t", estimated=1.0, actual=50)
        assert service.stats_snapshot().adaptive.q_error_p50 == 50.0

    def test_as_dict_carries_adaptive_block(self):
        service = QueryService(adaptive=True)
        rendered = service.stats_snapshot().as_dict()
        assert rendered["adaptive"]["observations"] == 0
        assert "q_error_p50" in rendered["adaptive"]
