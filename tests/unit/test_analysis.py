"""Unit tests for the complexity classification (repro.pdms.analysis)."""

import pytest

from repro.datalog import parse_atom, parse_query
from repro.pdms import (
    PDMS,
    ComplexityClass,
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
    analyze_pdms,
    build_inclusion_graph,
    lav_style,
    replication,
)
from repro.pdms.analysis import is_acyclic


def _pdms_with(*, peers=("A", "B")):
    pdms = PDMS()
    for name in peers:
        peer = pdms.add_peer(name)
        peer.add_relation("R", ["x", "y"])
    return pdms


class TestInclusionGraph:
    def test_acyclic_inclusions(self):
        pdms = _pdms_with()
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x, y)"), parse_query("Q(x, y) :- A:R(x, y)")))
        graph = build_inclusion_graph(pdms)
        assert graph["B:R"] == {"A:R"}
        assert is_acyclic(graph)

    def test_equality_creates_cycle(self):
        pdms = _pdms_with()
        pdms.add_peer_mapping(replication(
            parse_atom("A:R(x, y)"), parse_atom("B:R(x, y)")))
        graph = build_inclusion_graph(pdms)
        assert not is_acyclic(graph)

    def test_cycle_through_two_inclusions(self):
        pdms = _pdms_with()
        pdms.add_peer_mapping(lav_style(
            parse_atom("A:R(x, y)"), parse_query("Q(x, y) :- B:R(x, y)")))
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x, y)"), parse_query("Q(x, y) :- A:R(x, y)")))
        assert not is_acyclic(build_inclusion_graph(pdms))


class TestClassification:
    def test_acyclic_inclusion_only_is_polynomial(self):
        """Theorem 3.1(2)."""
        pdms = _pdms_with()
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x, y)"), parse_query("Q(x, y) :- A:R(x, y)")))
        report = analyze_pdms(pdms)
        assert report.complexity is ComplexityClass.POLYNOMIAL
        assert report.tractable and report.algorithm_complete
        assert "3.1" in report.theorem

    def test_cyclic_inclusions_undecidable(self):
        """Theorem 3.1(1)."""
        pdms = _pdms_with()
        pdms.add_peer_mapping(lav_style(
            parse_atom("A:R(x, y)"), parse_query("Q(x, y) :- B:R(x, y)")))
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x, y)"), parse_query("Q(x, y) :- A:R(x, y)")))
        report = analyze_pdms(pdms)
        assert report.complexity is ComplexityClass.UNDECIDABLE
        assert not report.inclusion_graph_acyclic

    def test_projection_free_equality_is_polynomial(self):
        """Theorem 3.2(1): replication stays tractable."""
        pdms = _pdms_with()
        pdms.add_peer_mapping(replication(
            parse_atom("A:R(x, y)"), parse_atom("B:R(x, y)")))
        report = analyze_pdms(pdms)
        assert report.complexity is ComplexityClass.POLYNOMIAL
        assert "3.2" in report.theorem

    def test_projecting_equality_not_tractable(self):
        pdms = _pdms_with()
        pdms.add_peer_mapping(EqualityMapping(
            parse_query("L(x) :- A:R(x, y)"), parse_query("R(x) :- B:R(x, x)")))
        report = analyze_pdms(pdms)
        assert report.complexity is not ComplexityClass.POLYNOMIAL
        assert not report.algorithm_complete

    def test_projecting_equality_storage_description_conp(self):
        """Theorem 3.2(2)."""
        pdms = _pdms_with()
        pdms.add_storage_description(StorageDescription(
            "A", "s", parse_query("V(x) :- A:R(x, y)"), exact=True))
        report = analyze_pdms(pdms)
        assert report.complexity is ComplexityClass.CONP_COMPLETE
        assert "3.2(2)" in report.theorem

    def test_definitional_head_on_rhs_violates_restriction(self):
        pdms = _pdms_with()
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:R(x, y)")))
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:R(x, y)"), parse_query("Q(x, y) :- A:R(x, y)")))
        report = analyze_pdms(pdms)
        assert report.complexity is ComplexityClass.CONP_COMPLETE
        assert not report.algorithm_complete

    def test_comparisons_in_storage_only_polynomial(self):
        """Theorem 3.3(1)."""
        pdms = _pdms_with()
        pdms.add_storage_description(StorageDescription(
            "A", "cheap", parse_query("V(x, y) :- A:R(x, y), y < 100")))
        report = analyze_pdms(pdms)
        assert report.complexity is ComplexityClass.POLYNOMIAL
        assert "3.3" in report.theorem

    def test_comparisons_in_peer_mappings_conp(self):
        """Theorem 3.3(2)."""
        pdms = _pdms_with()
        pdms.add_peer_mapping(InclusionMapping(
            parse_query("L(x, y) :- B:R(x, y), y < 5"),
            parse_query("R(x, y) :- A:R(x, y)")))
        report = analyze_pdms(pdms)
        assert report.complexity is ComplexityClass.CONP_COMPLETE
        assert "3.3(2)" in report.theorem

    def test_empty_pdms_is_trivially_polynomial(self):
        report = analyze_pdms(_pdms_with())
        assert report.tractable
        assert str(report)

    def test_pdms_analyze_method_delegates(self):
        pdms = _pdms_with()
        assert pdms.analyze().tractable
