"""Unit tests for repro.datalog.unify."""

import pytest

from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import (
    apply_substitution_atom,
    apply_substitution_body,
    apply_substitution_term,
    compose,
    is_variable_renaming,
    match_atom,
    rename_substitution,
    restrict,
    unify_atoms,
    unify_terms,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestUnifyTerms:
    def test_identical_terms(self):
        assert unify_terms(X, X) == {}
        assert unify_terms(Constant(1), Constant(1)) == {}

    def test_variable_to_constant(self):
        assert unify_terms(X, Constant(1)) == {X: Constant(1)}

    def test_constant_clash_fails(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_respects_existing_bindings(self):
        subst = unify_terms(X, Constant(1))
        assert unify_terms(X, Constant(2), subst) is None
        assert unify_terms(X, Constant(1), subst) == subst


class TestUnifyAtoms:
    def test_mgu_of_compatible_atoms(self):
        result = unify_atoms(Atom("R", [X, Y]), Atom("R", [Constant(1), Z]))
        assert result is not None
        assert apply_substitution_term(X, result) == Constant(1)
        assert apply_substitution_term(Y, result) == apply_substitution_term(Z, result)

    def test_different_predicates_fail(self):
        assert unify_atoms(Atom("R", [X]), Atom("S", [X])) is None

    def test_different_arity_fails(self):
        assert unify_atoms(Atom("R", [X]), Atom("R", [X, Y])) is None

    def test_repeated_variable_forces_equality(self):
        result = unify_atoms(Atom("R", [X, X]), Atom("R", [Constant(1), Y]))
        assert result is not None
        assert apply_substitution_term(Y, result) == Constant(1)

    def test_unification_failure_on_constants(self):
        assert unify_atoms(Atom("R", [Constant(1)]), Atom("R", [Constant(2)])) is None


class TestMatchAtom:
    def test_one_way_matching_binds_only_pattern(self):
        result = match_atom(Atom("R", [X, Y]), Atom("R", [Constant(1), Z]))
        assert result == {X: Constant(1), Y: Z}

    def test_target_variables_are_rigid(self):
        # The pattern constant cannot match a different target constant.
        assert match_atom(Atom("R", [Constant(1)]), Atom("R", [Constant(2)])) is None

    def test_pattern_repeated_variable(self):
        assert match_atom(Atom("R", [X, X]), Atom("R", [Constant(1), Constant(2)])) is None
        assert match_atom(Atom("R", [X, X]), Atom("R", [Constant(1), Constant(1)])) is not None


class TestSubstitutionHelpers:
    def test_apply_substitution_follows_chains(self):
        subst = {X: Y, Y: Constant(3)}
        assert apply_substitution_term(X, subst) == Constant(3)

    def test_apply_substitution_atom_and_body(self):
        body = [Atom("R", [X]), ComparisonAtom(X, "<", Constant(5))]
        result = apply_substitution_body(body, {X: Constant(1)})
        assert result[0] == Atom("R", [Constant(1)])
        assert result[1] == ComparisonAtom(Constant(1), "<", Constant(5))
        assert apply_substitution_atom(Atom("R", [X, Y]), {X: Z}) == Atom("R", [Z, Y])

    def test_compose(self):
        first = {X: Y}
        second = {Y: Constant(1)}
        composed = compose(first, second)
        assert apply_substitution_term(X, composed) == Constant(1)
        assert composed[Y] == Constant(1)

    def test_compose_drops_identity_bindings(self):
        composed = compose({X: Y}, {Y: X})
        assert X not in composed

    def test_restrict(self):
        subst = {X: Constant(1), Y: Constant(2)}
        assert restrict(subst, [X]) == {X: Constant(1)}

    def test_rename_substitution_and_renaming_check(self):
        renaming = rename_substitution([X, Y], "_1")
        assert renaming == {X: Variable("x_1"), Y: Variable("y_1")}
        assert is_variable_renaming(renaming)
        assert not is_variable_renaming({X: Constant(1)})
        assert not is_variable_renaming({X: Z, Y: Z})
