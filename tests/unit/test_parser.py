"""Unit tests for repro.datalog.parser."""

import pytest

from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.parser import (
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
    parse_union,
)
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError


class TestParseQuery:
    def test_simple_query(self):
        query = parse_query("Q(x, y) :- R(x, z), S(z, y)")
        assert query.name == "Q"
        assert [a.predicate for a in query.relational_body()] == ["R", "S"]

    def test_peer_qualified_predicates(self):
        query = parse_query("Q(sid) :- H:Doctor(sid, h, l, s, e)")
        assert query.relational_body()[0].predicate == "H:Doctor"

    def test_peer_names_starting_with_digits(self):
        query = parse_query('Q(p) :- 9DC:SkilledPerson(p, "Doctor")')
        assert query.relational_body()[0].predicate == "9DC:SkilledPerson"

    def test_string_constants(self):
        query = parse_query('Q(x) :- R(x, "Doctor")')
        assert query.relational_body()[0].args[1] == Constant("Doctor")

    def test_single_quoted_constants(self):
        query = parse_query("Q(x) :- R(x, 'EMT')")
        assert query.relational_body()[0].args[1] == Constant("EMT")

    def test_numeric_constants(self):
        query = parse_query("Q(x) :- R(x, 3, 2.5, -1)")
        args = query.relational_body()[0].args
        assert args[1:] == (Constant(3), Constant(2.5), Constant(-1))

    def test_comparisons(self):
        query = parse_query("Q(x) :- R(x, y), y < 5, x != y")
        comparisons = query.comparison_body()
        assert comparisons[0] == ComparisonAtom(Variable("y"), "<", Constant(5))
        assert comparisons[1] == ComparisonAtom(Variable("x"), "!=", Variable("y"))

    def test_head_constants(self):
        query = parse_query('Q(x, "EMT") :- R(x)')
        assert query.head.args[1] == Constant("EMT")

    def test_whitespace_insensitive(self):
        assert parse_query("Q(x):-R(x,y)") == parse_query("Q( x ) :- R( x , y )")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) R(x)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- R(x) extra")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x :- R(x)")

    def test_comparison_head_rejected(self):
        with pytest.raises(ParseError):
            parse_query("x < 5 :- R(x)")

    def test_unknown_character_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- R(x) & S(x)")


class TestParseAtomAndRule:
    def test_parse_atom(self):
        atom = parse_atom('FS:Skill(f1, "medical")')
        assert atom == Atom("FS:Skill", [Variable("f1"), Constant("medical")])

    def test_parse_atom_rejects_comparison(self):
        with pytest.raises(ParseError):
            parse_atom("x < 5")

    def test_parse_atom_rejects_trailing(self):
        with pytest.raises(ParseError):
            parse_atom("R(x), S(x)")

    def test_parse_rule_returns_datalog_rule(self):
        rule = parse_rule("T(x, y) :- E(x, y)")
        assert rule.name == "T"


class TestParseProgramAndUnion:
    def test_parse_program_skips_comments_and_blanks(self):
        program = parse_program(
            """
            % transitive closure
            T(x, y) :- E(x, y)

            # recursive step
            T(x, y) :- E(x, z), T(z, y)
            """,
            query_predicate="T",
        )
        assert len(program) == 2
        assert program.query_predicate == "T"

    def test_parse_union(self):
        union = parse_union(
            """
            Q(x) :- R(x)
            Q(x) :- S(x)
            """
        )
        assert len(union) == 2
        assert union.name == "Q"

    def test_parse_union_from_list(self):
        union = parse_union(["Q(x) :- R(x)", "Q(x) :- S(x, y)"])
        assert len(union) == 2

    def test_roundtrip_through_str(self):
        query = parse_query('Q(x, y) :- R(x, z), S(z, y), z < 5, x != "a"')
        assert parse_query(str(query)) == query
