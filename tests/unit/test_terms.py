"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import (
    Constant,
    FreshVariableFactory,
    Variable,
    is_constant,
    is_variable,
    term_from_python,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable_and_usable_in_sets(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_ordering_is_by_name(self):
        assert Variable("a") < Variable("b")
        assert sorted([Variable("z"), Variable("a")]) == [Variable("a"), Variable("z")]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str_and_repr(self):
        assert str(Variable("x")) == "x"
        assert repr(Variable("x")) == "?x"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(5) == Constant(5)
        assert Constant("a") != Constant("b")

    def test_string_constants_render_quoted(self):
        assert str(Constant("Doctor")) == '"Doctor"'

    def test_numeric_constants_render_bare(self):
        assert str(Constant(5)) == "5"
        assert str(Constant(2.5)) == "2.5"

    def test_constant_not_equal_to_variable_of_same_text(self):
        assert Constant("x") != Variable("x")


class TestPredicates:
    def test_is_variable_and_is_constant(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant("x"))
        assert is_constant(Constant(1))
        assert not is_constant(Variable("x"))

    def test_term_from_python_passthrough(self):
        v = Variable("x")
        assert term_from_python(v) is v

    def test_term_from_python_wraps_scalars(self):
        assert term_from_python("a") == Constant("a")
        assert term_from_python(3) == Constant(3)
        assert term_from_python(3.5) == Constant(3.5)

    def test_term_from_python_rejects_bool_and_objects(self):
        with pytest.raises(TypeError):
            term_from_python(True)
        with pytest.raises(TypeError):
            term_from_python(object())


class TestFreshVariableFactory:
    def test_fresh_variables_are_distinct(self):
        fresh = FreshVariableFactory()
        produced = {fresh() for _ in range(50)}
        assert len(produced) == 50

    def test_reserved_names_are_avoided(self):
        fresh = FreshVariableFactory(prefix="v")
        fresh.reserve(["v0", "v1"])
        assert fresh().name == "v2"

    def test_reserve_from_terms(self):
        fresh = FreshVariableFactory(prefix="x")
        fresh.reserve_from_terms([Variable("x0"), Constant("x1")])
        assert fresh().name == "x1"  # constants do not reserve names

    def test_hint_is_used_as_stem(self):
        fresh = FreshVariableFactory()
        assert fresh("skill_").name.startswith("skill_")

    def test_fresh_many(self):
        fresh = FreshVariableFactory()
        batch = fresh.fresh_many(5)
        assert len(set(batch)) == 5
