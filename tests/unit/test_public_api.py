"""Tests for the public API surface and the error hierarchy.

A downstream user's first contact with the library is ``import repro`` and
the names re-exported from the package roots; these tests pin that surface
so refactorings cannot silently break it.
"""

import pytest

import repro
import repro.datalog as datalog
import repro.database as database
import repro.integration as integration
import repro.pdms as pdms
import repro.workload as workload
from repro.errors import (
    EvaluationError,
    MalformedQueryError,
    MappingError,
    ParseError,
    PDMSConfigurationError,
    ReformulationError,
    ReproError,
    SchemaError,
    UnsatisfiableConstraintError,
)


class TestPackageExports:
    @pytest.mark.parametrize("module", [repro, datalog, database, integration, pdms, workload])
    def test_all_names_resolve(self, module):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name} missing"

    def test_lazy_pdms_exports_from_top_level(self):
        assert repro.PDMS is pdms.PDMS
        assert repro.Peer is pdms.Peer

    def test_unknown_top_level_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_symbol  # noqa: B018

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_parse_query_reachable_from_top_level(self):
        query = repro.parse_query("Q(x) :- R(x, y)")
        assert isinstance(query, repro.ConjunctiveQuery)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exception_type", [
        ParseError,
        MalformedQueryError,
        SchemaError,
        MappingError,
        PDMSConfigurationError,
        ReformulationError,
        EvaluationError,
        UnsatisfiableConstraintError,
    ])
    def test_every_error_derives_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_parse_error_carries_position(self):
        error = ParseError("boom", text="Q(x ...", position=3)
        assert "position 3" in str(error)

    def test_catching_the_base_class_is_enough(self):
        with pytest.raises(ReproError):
            repro.parse_query("this is not a query")
        with pytest.raises(ReproError):
            repro.RelationSchema("R", ["a", "a"])


class TestDocstrings:
    @pytest.mark.parametrize("module", [repro, datalog, database, integration, pdms, workload])
    def test_packages_have_docstrings(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize("obj", [
        pdms.PDMS, pdms.Peer, pdms.StorageDescription, pdms.InclusionMapping,
        pdms.EqualityMapping, pdms.DefinitionalMapping, pdms.reformulate,
        pdms.certain_answers, pdms.analyze_pdms,
        datalog.ConjunctiveQuery, datalog.parse_query, datalog.evaluate_query,
        integration.GAVMediator, integration.LAVMediator, integration.create_mcds,
        database.Instance, database.Table, database.compile_query,
        workload.GeneratorParameters, workload.generate_workload,
        workload.build_emergency_services,
    ])
    def test_public_objects_have_docstrings(self, obj):
        assert obj.__doc__ and len(obj.__doc__.strip()) > 10
