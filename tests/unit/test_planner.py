"""Unit tests for the logical-plan compiler and executor."""

import pytest

from repro.database import Instance
from repro.database.planner import (
    EmptyNode,
    JoinNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    UnionNode,
    compile_query,
    compile_union,
    evaluate_query_via_plan,
    evaluate_union_via_plan,
    execute_plan,
)
from repro.datalog import evaluate_query, evaluate_union, parse_query, parse_union
from repro.datalog.queries import UnionQuery
from repro.errors import EvaluationError

FACTS = {
    "E": [(1, 2), (2, 3), (3, 4), (2, 2)],
    "L": [(2, "a"), (3, "b")],
}


class TestCompilation:
    def test_single_atom_plan_shape(self):
        plan = compile_query(parse_query("Q(x, y) :- E(x, y)"), FACTS)
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, ScanNode)
        assert plan.output_columns() == ("x", "y")

    def test_join_plan_shape(self):
        plan = compile_query(parse_query("Q(x, z) :- E(x, y), L(y, z)"), FACTS)
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, JoinNode)

    def test_constants_become_scan_filters(self):
        plan = compile_query(parse_query("Q(y) :- E(2, y)"), FACTS)
        scan = plan.child
        assert isinstance(scan, ScanNode)
        assert scan.filters == ((0, 2),)

    def test_repeated_variables_become_equality_filters(self):
        plan = compile_query(parse_query("Q(x) :- E(x, x)"), FACTS)
        scan = plan.child
        assert isinstance(scan, ScanNode)
        assert scan.equal_positions == ((0, 1),)

    def test_comparisons_become_select_node(self):
        plan = compile_query(parse_query("Q(x, y) :- E(x, y), y < 4"), FACTS)
        assert isinstance(plan.child, SelectNode)

    def test_empty_union_compiles_to_empty_node(self):
        plan = compile_union(UnionQuery([], name="Q", arity=2), FACTS)
        assert isinstance(plan, EmptyNode)

    def test_union_plan(self):
        union = parse_union(["Q(x) :- E(x, 2)", "Q(x) :- E(x, 4)"])
        plan = compile_union(union, FACTS)
        assert isinstance(plan, UnionNode)
        assert len(plan.branches) == 2

    def test_no_relational_atoms_rejected(self):
        query = parse_query("Q(x) :- E(x, y)")
        stripped = type(query)(query.head, query.relational_body())
        object.__setattr__(stripped, "body", ())
        with pytest.raises(EvaluationError):
            compile_query(stripped, FACTS)

    def test_explain_renders_every_operator(self):
        plan = compile_query(parse_query("Q(x, z) :- E(x, y), L(y, z), x < 3"), FACTS)
        rendering = plan.explain()
        assert "Project" in rendering
        assert "Select" in rendering
        assert "Join" in rendering
        assert "Scan(E)" in rendering and "Scan(L)" in rendering


class TestExecution:
    def test_single_atom(self):
        assert evaluate_query_via_plan(parse_query("Q(x, y) :- E(x, y)"), FACTS) == {
            (1, 2), (2, 3), (3, 4), (2, 2)}

    def test_join(self):
        query = parse_query("Q(x, z) :- E(x, y), L(y, z)")
        # E(1,2)⋈L(2,a), E(2,3)⋈L(3,b), and E(2,2)⋈L(2,a).
        assert evaluate_query_via_plan(query, FACTS) == {(1, "a"), (2, "b"), (2, "a")}

    def test_constant_filter(self):
        assert evaluate_query_via_plan(parse_query("Q(y) :- E(2, y)"), FACTS) == {(3,), (2,)}

    def test_repeated_variable(self):
        assert evaluate_query_via_plan(parse_query("Q(x) :- E(x, x)"), FACTS) == {(2,)}

    def test_comparison(self):
        query = parse_query("Q(x) :- E(x, y), y >= 3")
        assert evaluate_query_via_plan(query, FACTS) == {(2,), (3,)}

    def test_head_constants(self):
        query = parse_query('Q(x, "edge") :- E(x, 2)')
        assert evaluate_query_via_plan(query, FACTS) == {(1, "edge"), (2, "edge")}

    def test_cross_product_when_disconnected(self):
        query = parse_query("Q(x, z) :- E(x, 2), L(3, z)")
        assert evaluate_query_via_plan(query, FACTS) == {(1, "b"), (2, "b")}

    def test_union_execution(self):
        union = parse_union(["Q(x) :- E(x, 2)", "Q(x) :- E(x, 4)"])
        assert evaluate_union_via_plan(union, FACTS) == {(1,), (2,), (3,)}

    def test_empty_union_executes_to_no_rows(self):
        plan = compile_union(UnionQuery([], name="Q", arity=1), FACTS)
        assert execute_plan(plan, FACTS).to_set() == set()

    def test_instance_as_fact_source(self):
        instance = Instance.from_dict(FACTS)
        query = parse_query("Q(x, z) :- E(x, y), L(y, z)")
        assert evaluate_query_via_plan(query, instance) == {(1, "a"), (2, "b"), (2, "a")}

    def test_arity_mismatch_detected(self):
        query = parse_query("Q(x) :- E(x)")
        with pytest.raises(EvaluationError):
            evaluate_query_via_plan(query, FACTS)


class TestAgreementWithBacktrackingEvaluator:
    QUERIES = [
        "Q(x, y) :- E(x, y)",
        "Q(x, z) :- E(x, y), E(y, z)",
        "Q(x) :- E(x, x)",
        "Q(x, z) :- E(x, y), L(y, z)",
        "Q(x) :- E(x, y), y < 4",
        "Q(y) :- E(2, y)",
        'Q(x, "k") :- E(x, y), L(y, w)',
        "Q(x, w) :- E(x, y), E(y, z), E(z, w)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_same_answers_as_evaluate_query(self, text):
        query = parse_query(text)
        assert evaluate_query_via_plan(query, FACTS) == evaluate_query(query, FACTS)

    def test_same_answers_on_reformulated_union(self, figure2_pdms, figure2_query):
        from repro.pdms import reformulate

        data = {
            "S1": [("alice", "e1", 17), ("bob", "e1", 18), ("carol", "e2", 17)],
            "S2": [("alice", "bob"), ("carol", "dave")],
        }
        union = reformulate(figure2_pdms, figure2_query).union()
        assert evaluate_union_via_plan(union, data) == evaluate_union(union, data)
