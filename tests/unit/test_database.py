"""Unit tests for repro.database (schema, instance, algebra, csvio)."""

import pytest

from repro.database import (
    DatabaseSchema,
    Instance,
    RelationSchema,
    Table,
    load_relation_csv,
    save_relation_csv,
    table_from_instance,
)
from repro.database.csvio import load_instance_directory
from repro.errors import EvaluationError, InstanceError, SchemaError


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema("R", ["a", "b"])
        assert schema.arity == 2
        assert schema.position_of("b") == 1
        assert str(schema) == "R(a, b)"

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"]).position_of("z")

    def test_typed_validation(self):
        schema = RelationSchema("R", ["a", "b"], [int, str])
        assert schema.validate_row([1, "x"]) == (1, "x")
        with pytest.raises(SchemaError):
            schema.validate_row(["not-int", "x"])
        with pytest.raises(SchemaError):
            schema.validate_row([1])

    def test_type_count_must_match(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "b"], [int])

    def test_rename(self):
        assert RelationSchema("R", ["a"]).rename("S").name == "S"


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema("db", [RelationSchema("R", ["a"])])
        assert "R" in schema
        assert schema.relation("R").arity == 1
        assert schema.relation_names() == ("R",)

    def test_duplicate_relation_rejected(self):
        schema = DatabaseSchema("db", [RelationSchema("R", ["a"])])
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("R", ["b"]))

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema("db").relation("missing")


class TestInstance:
    def test_add_and_get(self):
        instance = Instance()
        instance.add("R", (1, 2))
        instance.add_all("R", [(3, 4), (1, 2)])
        assert set(instance.get_tuples("R")) == {(1, 2), (3, 4)}
        assert instance.cardinality("R") == 2

    def test_arity_enforced_without_schema(self):
        instance = Instance()
        instance.add("R", (1, 2))
        with pytest.raises(InstanceError):
            instance.add("R", (1,))

    def test_schema_validation(self):
        schema = DatabaseSchema("db", [RelationSchema("R", ["a"], [int])])
        instance = Instance(schema)
        instance.add("R", (1,))
        with pytest.raises(InstanceError):
            instance.add("S", (1,))

    def test_remove_and_clear(self):
        instance = Instance.from_dict({"R": [(1,), (2,)]})
        instance.remove("R", (1,))
        assert set(instance.get_tuples("R")) == {(2,)}
        with pytest.raises(InstanceError):
            instance.remove("R", (9,))
        instance.clear("R")
        assert instance.cardinality("R") == 0

    def test_copy_and_merge_and_equality(self):
        first = Instance.from_dict({"R": [(1,)]})
        second = Instance.from_dict({"R": [(2,)], "S": [(3,)]})
        merged = first.merge(second)
        assert set(merged.get_tuples("R")) == {(1,), (2,)}
        assert first == Instance.from_dict({"R": [(1,)]})
        assert first != merged
        copy = first.copy()
        copy.add("R", (9,))
        assert first.cardinality("R") == 1

    def test_active_domain_and_total_rows(self):
        instance = Instance.from_dict({"R": [(1, "a")], "S": [(2,)]})
        assert instance.active_domain() == {1, "a", 2}
        assert instance.total_rows() == 2

    def test_instances_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Instance())


class TestTable:
    def test_projection_and_selection(self):
        table = Table(["a", "b"], [(1, 2), (3, 4)])
        assert table.project(["b"]).to_set() == {(2,), (4,)}
        assert table.select_eq("a", 1).to_set() == {(1, 2)}
        assert table.select(lambda row: row["b"] > 2).to_set() == {(3, 4)}

    def test_natural_join(self):
        left = Table(["a", "b"], [(1, 2), (3, 4)])
        right = Table(["b", "c"], [(2, "x"), (4, "y"), (5, "z")])
        joined = left.natural_join(right)
        assert set(joined.columns) == {"a", "b", "c"}
        assert len(joined) == 2

    def test_union_and_difference_require_same_columns(self):
        first = Table(["a"], [(1,)])
        second = Table(["a"], [(2,)])
        assert first.union(second).to_set() == {(1,), (2,)}
        assert first.difference(second).to_set() == {(1,)}
        with pytest.raises(EvaluationError):
            first.union(Table(["b"], [(1,)]))

    def test_rename_and_cross(self):
        first = Table(["a"], [(1,)])
        second = Table(["b"], [(2,)])
        crossed = first.cross(second)
        assert crossed.to_set() == {(1, 2)}
        with pytest.raises(EvaluationError):
            first.cross(Table(["a"], [(9,)]))
        assert first.rename({"a": "z"}).columns == ("z",)

    def test_select_columns_equal(self):
        table = Table(["a", "b"], [(1, 1), (1, 2)])
        assert table.select_columns_equal("a", "b").to_set() == {(1, 1)}

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EvaluationError):
            Table(["a", "a"], [])

    def test_row_width_checked(self):
        with pytest.raises(EvaluationError):
            Table(["a", "b"], [(1,)])

    def test_table_from_instance_uses_schema_columns(self):
        schema = DatabaseSchema("db", [RelationSchema("R", ["x", "y"])])
        instance = Instance(schema)
        instance.add("R", (1, 2))
        table = table_from_instance(instance, "R")
        assert table.columns == ("x", "y")


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        instance = Instance.from_dict({"R": [(1, "a"), (2, "b")]})
        path = tmp_path / "R.csv"
        written = save_relation_csv(instance, "R", path, header=["n", "s"])
        assert written == 2
        loaded = Instance()
        count = load_relation_csv(loaded, "R", path)
        assert count == 2
        assert set(loaded.get_tuples("R")) == {(1, "a"), (2, "b")}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(InstanceError):
            load_relation_csv(Instance(), "R", tmp_path / "nope.csv")

    def test_load_directory(self, tmp_path):
        instance = Instance.from_dict({"R": [(1, 2)], "S": [("a", "b")]})
        save_relation_csv(instance, "R", tmp_path / "R.csv", header=["x", "y"])
        save_relation_csv(instance, "S", tmp_path / "S.csv", header=["x", "y"])
        loaded = load_instance_directory(tmp_path)
        assert set(loaded.relations()) == {"R", "S"}
        assert set(loaded.get_tuples("R")) == {(1, 2)}
