"""Unit tests for the distributed peer runtime (ISSUE 5).

Covers the wire contract (pattern encoding, loopback + process
transports, chaos hooks), :class:`RemotePeerFactSource` (routing, scan
memoization, version tokens over the wire, degradation), the
``"distributed"`` engine (registry, equivalence, completeness, fragment-
cache safety under faults), :class:`ServiceCluster` (admission,
concurrent fan-in), and the RPC-boundary edge cases the peer source must
survive: cross-transport arity clashes, empty-peer scans, and peer leave
mid-stream.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.datalog.indexing import WILDCARD
from repro.errors import (
    EvaluationError,
    MappingError,
    PDMSConfigurationError,
    TransportError,
)
from repro.pdms import (
    PDMS,
    FragmentCache,
    LoopbackTransport,
    ProcessTransport,
    QueryService,
    RemotePeerFactSource,
    ServiceCluster,
    StorageDescription,
    answer_query,
    certain_answers,
    combine_peer_instances,
    evaluate_distributed,
    get_engine,
    reformulate,
    registered_engines,
)
from repro.pdms.distributed.transport import decode_pattern, encode_pattern
from repro.workload import (
    build_emergency_services,
    example_queries,
    sample_instance,
    sample_peer_instances,
)


def two_peer_system():
    """A tiny two-peer PDMS: ``Q :- T:A ⨝ T:B`` with A on P1, B on P2."""
    pdms = PDMS("two-peer")
    top = pdms.add_peer("T")
    top.add_relation("A", ["x", "y"])
    top.add_relation("B", ["x", "y"])
    for peer_name, relation, stored in (("P1", "A", "sa"), ("P2", "B", "sb")):
        pdms.add_peer(peer_name)
        pdms.add_storage_description(StorageDescription(
            peer_name, stored,
            parse_query(f"V(x, y) :- T:{relation}(x, y)"),
            exact=False, name=f"store_{stored}",
        ))
    data = {
        "P1": Instance.from_dict({"sa": [(1, 2), (2, 3), (5, 6)]}),
        "P2": Instance.from_dict({"sb": [(2, 10), (3, 11), (6, 12)]}),
    }
    query = parse_query("Q(x, z) :- T:A(x, y), T:B(y, z)")
    return pdms, data, query


class TestWireEncoding:
    def test_wildcards_and_values_round_trip(self):
        pattern = (WILDCARD, 1, None, "x", WILDCARD)
        assert decode_pattern(encode_pattern(pattern)) == pattern

    def test_none_is_a_value_not_a_wildcard(self):
        encoded = encode_pattern((None,))
        assert encoded == (("=", None),)
        assert decode_pattern(encoded) == (None,)

    def test_malformed_wire_entry_raises(self):
        with pytest.raises(TransportError):
            decode_pattern((("?",),))


class TestLoopbackTransport:
    def test_describe_ships_arity_cardinality_and_version(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        info = transport.describe("P1")
        arity, cardinality, token = info["sa"]
        assert (arity, cardinality) == (2, 3)
        assert token == data["P1"].data_version("sa")

    def test_scan_batch_routes_and_counts(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        rows, all_rows = transport.scan_batch("P1", [
            ("sa", encode_pattern((1, WILDCARD))),
            ("sa", encode_pattern((WILDCARD, WILDCARD))),
        ])
        assert set(rows) == {(1, 2)}
        assert len(all_rows) == 3
        assert transport.scan_count("P1") == 2

    def test_failed_peer_raises_until_restored(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        transport.fail_peer("P1")
        with pytest.raises(TransportError):
            transport.describe("P1")
        assert transport.failed_peers() == ("P1",)
        transport.restore_peer("P1")
        assert transport.describe("P1")

    def test_drop_every_n_drops_scan_rpcs(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data, drop_every_n=2)
        request = [("sa", encode_pattern((WILDCARD, WILDCARD)))]
        assert transport.scan_batch("P1", request)
        with pytest.raises(TransportError):
            transport.scan_batch("P1", request)
        assert transport.scan_batch("P1", request)

    def test_insert_moves_the_version_token(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        before = transport.describe("P1")["sa"][2]
        transport.insert("P1", "sa", [(7, 8)])
        after = transport.describe("P1")["sa"][2]
        assert before != after

    def test_unknown_peer_raises(self):
        transport = LoopbackTransport({})
        with pytest.raises(TransportError):
            transport.describe("ghost")


class TestProcessTransport:
    def test_round_trip_scan_insert_and_tokens(self):
        _, data, _ = two_peer_system()
        with ProcessTransport(data) as transport:
            assert transport.ping("P1")
            info = transport.describe("P1")
            assert info["sa"][:2] == (2, 3)
            rows, = transport.scan_batch(
                "P1", [("sa", encode_pattern((WILDCARD, 3)))])
            assert set(rows) == {(2, 3)}
            token_before = transport.describe("P1")["sa"][2]
            transport.insert("P1", "sa", [(9, 9)])
            info_after = transport.describe("P1")
            assert info_after["sa"][1] == 4
            assert info_after["sa"][2] != token_before

    def test_tokens_are_salted_per_transport(self):
        _, data, _ = two_peer_system()
        with ProcessTransport({"P1": data["P1"]}) as first, \
                ProcessTransport({"P1": data["P1"]}) as second:
            assert first.describe("P1")["sa"][2] != second.describe("P1")["sa"][2]

    def test_data_errors_surface_as_value_error(self):
        with ProcessTransport(
            {"P1": Instance.from_dict({"sa": [(1, 2)]})}
        ) as transport:
            with pytest.raises(ValueError):
                transport.scan_batch("P1", [("sa", encode_pattern((WILDCARD,)))])
            # The worker survives a data error: later RPCs still work.
            assert transport.ping("P1")

    def test_timeout_circuit_breaks_the_peer(self):
        _, data, _ = two_peer_system()
        transport = ProcessTransport({"P1": data["P1"]}, timeout=0.05)
        try:
            # The worker is held busy well past the deadline, so the RPC
            # deterministically times out and trips the breaker.
            with pytest.raises(TransportError):
                transport.sleep("P1", 1.0)
            assert "P1" in transport.failed_peers()
            with pytest.raises(TransportError):
                transport.ping("P1")
        finally:
            transport.close()

    def test_insert_data_errors_match_loopback(self):
        """Invalid remote inserts raise the same type as a local instance."""
        from repro.errors import InstanceError

        local = Instance.from_dict({"sa": [(1, 2)]})
        loopback = LoopbackTransport({"P1": local.copy()})
        with pytest.raises(InstanceError):
            loopback.insert("P1", "sa", [(1, 2, 3)])
        with ProcessTransport({"P1": local}) as transport:
            with pytest.raises(InstanceError):
                transport.insert("P1", "sa", [(1, 2, 3)])
            assert transport.ping("P1")  # worker survives the data error

    def test_empty_declared_relation_crosses_the_wire(self):
        """A declared-but-empty relation keeps its arity at the worker."""
        holder = Instance()
        holder.add("r", (1, 2))
        holder.remove("r", (1, 2))
        with ProcessTransport({"E": holder}) as transport:
            info = transport.describe("E")
            assert info["r"][0] == 2 and info["r"][1] == 0

    def test_instance_pickle_round_trip(self):
        instance = Instance.from_dict({"r": [(1, None), ("a", 2.5)]})
        clone = pickle.loads(pickle.dumps(instance))
        assert clone == instance
        assert clone.arity("r") == 2
        assert clone.instance_id != instance.instance_id
        empty = Instance()
        empty.add("s", (1,))
        empty.remove("s", (1,))
        clone2 = pickle.loads(pickle.dumps(empty))
        assert clone2.relations() == ("s",)
        assert clone2.arity("s") == 1


class TestRemotePeerFactSource:
    def test_routes_scans_and_memoizes(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        assert sorted(source.relations()) == ["sa", "sb"]
        assert source.owner_count("sa") == 1
        assert source.cardinality("sa") == 3
        rows = source.get_matching("sa", (1, WILDCARD))
        assert set(rows) == {(1, 2)}
        before = transport.rpc_count
        assert source.get_matching("sa", (1, WILDCARD)) == rows
        assert transport.rpc_count == before  # served from the memo
        assert set(source.get_tuples("sb")) == set(data["P2"].get_tuples("sb"))

    def test_refresh_drops_only_moved_relations(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        source.get_tuples("sa")
        source.get_tuples("sb")
        token_sa = source.data_version("sa")
        transport.insert("P1", "sa", [(100, 200)])
        source.refresh()
        assert source.data_version("sa") != token_sa
        before = transport.rpc_count
        source.get_tuples("sb")  # memo survived: sb's token never moved
        assert transport.rpc_count == before
        assert (100, 200) in set(source.get_tuples("sa"))

    def test_unknown_relation_is_empty_with_empty_token(self):
        _, data, _ = two_peer_system()
        source = RemotePeerFactSource(LoopbackTransport(data))
        assert source.get_tuples("nope") == ()
        assert source.get_matching("nope", (WILDCARD,)) == ()
        assert source.data_version("nope") == ()

    def test_empty_peer_is_served_quietly(self):
        """A peer with no relations contributes nothing and fails nothing."""
        _, data, _ = two_peer_system()
        data["P3"] = Instance()
        source = RemotePeerFactSource(LoopbackTransport(data))
        assert sorted(source.relations()) == ["sa", "sb"]
        assert source.complete
        assert source.failure_count == 0

    def test_arity_clash_across_peers_names_both(self):
        data = {
            "P1": Instance.from_dict({"shared": [(1, 2)]}),
            "P2": Instance.from_dict({"shared": [(1, 2, 3)]}),
        }
        with pytest.raises(MappingError) as excinfo:
            RemotePeerFactSource(LoopbackTransport(data))
        message = str(excinfo.value)
        assert "P1" in message and "P2" in message and "shared" in message

    def test_arity_clash_across_process_transport(self):
        data = {
            "P1": Instance.from_dict({"shared": [(1, 2)]}),
            "P2": Instance.from_dict({"shared": [(1, 2, 3)]}),
        }
        with ProcessTransport(data) as transport:
            with pytest.raises(MappingError):
                RemotePeerFactSource(transport)

    def test_multi_owner_relation_fans_out(self):
        data = {
            "P1": Instance.from_dict({"shared": [(1, 1)]}),
            "P2": Instance.from_dict({"shared": [(2, 2)]}),
        }
        source = RemotePeerFactSource(LoopbackTransport(data))
        assert source.owner_count("shared") == 2
        assert set(source.get_tuples("shared")) == {(1, 1), (2, 2)}
        assert source.cardinality("shared") == 2

    def test_failed_scan_degrades_and_blocks_version_tokens(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        transport.fail_peer("P1")
        assert source.get_tuples("sa") == ()  # sound subset: no rows
        assert source.failure_count == 1
        assert "sa" in source.degraded_relations
        assert source.data_version("sa") is None  # cache must bypass
        assert not source.complete
        transport.restore_peer("P1")
        source.refresh()
        assert source.complete
        assert set(source.get_tuples("sa")) == set(data["P1"].get_tuples("sa"))

    def test_closed_source_fails_fast(self):
        _, data, _ = two_peer_system()
        source = RemotePeerFactSource(LoopbackTransport(data))
        source.close()
        with pytest.raises(TransportError):
            source.get_matching("sa", (WILDCARD, WILDCARD))
        with pytest.raises(TransportError):
            source.refresh()
        with pytest.raises(TransportError):
            source.prefetch([("sa", (WILDCARD, WILDCARD))])

    def test_unreachable_peer_at_refresh_is_recorded(self):
        _, data, _ = two_peer_system()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        transport.fail_peer("P2")
        source.refresh()
        assert source.unreachable_peers == ("P2",)
        assert not source.complete
        assert "sb" not in source.relations()
        assert source.failure_count == 1


class TestDistributedEngine:
    def test_registered_fourth(self):
        assert "distributed" in registered_engines()
        assert getattr(get_engine("distributed"), "uses_plans", False)

    def test_matches_other_engines_on_the_scenario(self):
        pdms = build_emergency_services()
        data = sample_peer_instances()
        combined = combine_peer_instances(data)
        for name, query in example_queries().items():
            expected = answer_query(pdms, query, combined, engine="backtracking")
            assert answer_query(
                pdms, query, data, engine="distributed"
            ) == expected, name

    def test_limit_streams_a_subset(self):
        pdms, data, query = two_peer_system()
        full = answer_query(pdms, query, data, engine="distributed")
        assert len(full) >= 2
        partial = answer_query(pdms, query, data, engine="distributed", limit=1)
        assert len(partial) == 1 and partial <= full

    def test_plan_for_wrong_result_raises(self):
        pdms, data, query = two_peer_system()
        first = reformulate(pdms, query)
        second = reformulate(pdms, query)
        from repro.pdms.planning import ensure_plan

        plan = ensure_plan(first, None)
        engine = get_engine("distributed")
        with pytest.raises(EvaluationError):
            engine.stream(second, data, plan=plan)

    def test_flat_source_falls_back_to_shared_path(self):
        pdms, data, query = two_peer_system()
        combined = combine_peer_instances(data)
        assert answer_query(pdms, query, combined, engine="distributed") == \
            answer_query(pdms, query, combined, engine="shared")

    def test_evaluate_distributed_completeness_cycle(self):
        pdms, data, query = two_peer_system()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        result = reformulate(pdms, query)
        oracle = certain_answers(pdms, query, combine_peer_instances(data))
        answer = evaluate_distributed(result, source)
        assert answer.rows == frozenset(oracle) and answer.complete
        transport.fail_peer("P2")
        degraded = evaluate_distributed(reformulate(pdms, query), source)
        assert not degraded.complete
        assert degraded.rows <= frozenset(oracle)
        assert degraded.failures
        transport.restore_peer("P2")
        recovered = evaluate_distributed(reformulate(pdms, query), source)
        assert recovered.complete and recovered.rows == frozenset(oracle)

    def test_evaluate_distributed_rejects_flat_sources(self):
        pdms, data, query = two_peer_system()
        result = reformulate(pdms, query)
        with pytest.raises(EvaluationError):
            evaluate_distributed(result, combine_peer_instances(data))

    def test_fragment_cache_never_serves_degraded_fragments(self):
        """A fault-free call after a faulty one must not see cached partials."""
        pdms, data, query = two_peer_system()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        cache = FragmentCache(max_bytes=1 << 20)
        oracle = certain_answers(pdms, query, combine_peer_instances(data))
        transport.fail_peer("P2")
        faulty = evaluate_distributed(reformulate(pdms, query), source, cache=cache)
        assert not faulty.complete
        transport.restore_peer("P2")
        healed = evaluate_distributed(reformulate(pdms, query), source, cache=cache)
        assert healed.complete and healed.rows == frozenset(oracle)

    def test_process_transport_end_to_end(self):
        pdms, data, query = two_peer_system()
        oracle = certain_answers(pdms, query, combine_peer_instances(data))
        with ProcessTransport(data) as transport:
            source = RemotePeerFactSource(transport)
            answer = evaluate_distributed(reformulate(pdms, query), source)
            assert answer.rows == frozenset(oracle) and answer.complete
            # A remote write becomes visible after the next call's refresh.
            transport.insert("P2", "sb", [(6, 99)])
            updated = evaluate_distributed(reformulate(pdms, query), source)
            assert (5, 99) in updated.rows
            source.close()


class TestServiceCluster:
    def test_answers_match_oracle_and_report_complete(self):
        pdms, data, query = two_peer_system()
        oracle = certain_answers(pdms, query, combine_peer_instances(data))
        with ServiceCluster(
            pdms=pdms, transport=LoopbackTransport(data)
        ) as cluster:
            answer = cluster.answer(query)
            assert answer.rows == frozenset(oracle)
            assert answer.complete
            assert cluster.served == 1

    def test_incomplete_under_injected_failure(self):
        pdms, data, query = two_peer_system()
        transport = LoopbackTransport(data)
        oracle = certain_answers(pdms, query, combine_peer_instances(data))
        with ServiceCluster(pdms=pdms, transport=transport) as cluster:
            transport.fail_peer("P1")
            answer = cluster.answer(query)
            assert not answer.complete
            assert answer.rows <= frozenset(oracle)
            transport.restore_peer("P1")
            healed = cluster.answer(query)
            assert healed.complete and healed.rows == frozenset(oracle)

    def test_admission_bounds_concurrency(self):
        pdms, data, query = two_peer_system()
        observed = []
        gauge_lock = threading.Lock()
        live = [0]

        class Probe(LoopbackTransport):
            def scan_batch(self, peer, requests):
                with gauge_lock:
                    live[0] += 1
                    observed.append(live[0])
                try:
                    return super().scan_batch(peer, requests)
                finally:
                    with gauge_lock:
                        live[0] -= 1

        with ServiceCluster(
            pdms=pdms, transport=Probe(data, delay=0.002), max_inflight=2
        ) as cluster:
            answers = cluster.answer_many([query] * 12, workers=8)
        assert all(a.rows for a in answers)
        assert cluster.peak_inflight <= 2
        assert cluster.served == 12

    def test_concurrent_mix_stays_correct(self):
        pdms = build_emergency_services()
        data = sample_peer_instances()
        combined = combine_peer_instances(data)
        queries = list(example_queries().values())
        expected = [
            answer_query(pdms, query, combined, engine="backtracking")
            for query in queries
        ]
        with ServiceCluster(
            pdms=pdms, transport=LoopbackTransport(data)
        ) as cluster:
            answers = cluster.answer_many(queries * 3, workers=6)
        for index, answer in enumerate(answers):
            assert answer.rows == frozenset(expected[index % len(queries)])
            assert answer.complete

    def test_env_knob_and_validation(self, monkeypatch):
        pdms, data, _ = two_peer_system()
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "3")
        cluster = ServiceCluster(pdms=pdms, transport=LoopbackTransport(data))
        assert cluster.max_inflight == 3
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "banana")
        with pytest.raises(PDMSConfigurationError):
            ServiceCluster(pdms=pdms, transport=LoopbackTransport(data))
        monkeypatch.delenv("REPRO_MAX_INFLIGHT")
        with pytest.raises(PDMSConfigurationError):
            ServiceCluster(
                pdms=pdms, transport=LoopbackTransport(data), max_inflight=-1
            )
        with pytest.raises(PDMSConfigurationError):
            ServiceCluster()

    def test_wraps_prebuilt_service(self):
        pdms, data, query = two_peer_system()
        service = QueryService(pdms, data=data, engine="shared")
        cluster = ServiceCluster(service=service)
        answer = cluster.answer(query)
        assert answer.rows and answer.complete  # no transport: trivially so
        assert cluster.source is None

    def test_describe_snapshot(self):
        pdms, data, query = two_peer_system()
        with ServiceCluster(
            pdms=pdms, transport=LoopbackTransport(data)
        ) as cluster:
            cluster.answer(query)
            snapshot = cluster.describe()
        assert snapshot["served"] == 1
        assert set(snapshot["peer_scan_counts"]) == {"P1", "P2"}
        assert snapshot["service"]["misses"] == 1


class TestPeerLeaveMidStream:
    def test_stream_snapshot_survives_peer_leave(self):
        """Provenance invalidation fires while a stream is being consumed."""
        pdms, data, query = two_peer_system()
        service = QueryService(pdms, data=data, engine="distributed")
        stream = service.stream(query)
        first = next(stream)
        invalidations_before = service.stats.invalidations
        service.remove_peer("P2")
        data.pop("P2")
        # The snapshot iterator keeps draining the reformulation it started
        # with (over the data that remains), without raising.
        rest = list(stream)
        assert first not in rest
        # Provenance invalidation fired for the affected entry...
        assert service.stats.invalidations > invalidations_before
        # ...and post-churn answers reflect the departure: the joined
        # relation is gone, so the query has no stored rewritings left.
        assert service.answer(query) == set()

    def test_post_leave_answers_match_oracle(self):
        pdms = build_emergency_services()
        data = sample_peer_instances()
        service = QueryService(pdms, data=data, engine="distributed")
        query = parse_query('Q(pid) :- 9DC:SkilledPerson(pid, "EMT")')
        assert service.answer(query)
        service.remove_peer("FH")
        data.pop("FH")
        oracle = certain_answers(
            service.pdms, query, combine_peer_instances(data))
        assert service.answer(query) == oracle
