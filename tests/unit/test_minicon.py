"""Unit tests for the MiniCon algorithm (repro.integration.minicon)."""

from repro.datalog import evaluate_union, parse_query
from repro.datalog.containment import is_contained_in
from repro.datalog.terms import Variable
from repro.integration import View, ViewSet, create_mcds, minicon_rewrite
from repro.integration.bucket import expand_view_atoms


def _views_from_paper():
    """The views of Section 4.1 of the PDMS paper (MiniCon recap)."""
    return ViewSet([
        View(parse_query("V1(a, b) :- e1(a, c), e2(c, b)")),
        View(parse_query("V2(d, e) :- e3(d, e), e4(e)")),
        View(parse_query("V3(u) :- e1(u, z)")),
    ])


class TestMCDConstruction:
    def test_paper_example_mcd_covers_two_subgoals(self):
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        views = _views_from_paper()
        mcds = create_mcds(query, views.by_name("V1"))
        # V1 covers the first two subgoals together (z is existential in V1).
        assert any(mcd.covered == frozenset({0, 1}) for mcd in mcds)
        assert all(mcd.covered != frozenset({0}) for mcd in mcds)

    def test_useless_view_creates_no_mcd(self):
        """V3 projects away the join variable, so no MCD is created (paper text)."""
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        views = _views_from_paper()
        assert create_mcds(query, views.by_name("V3")) == []

    def test_view_projecting_distinguished_variable_rejected(self):
        query = parse_query("Q(x, y) :- e1(x, y)")
        view = View(parse_query("V(u) :- e1(u, w)"))
        assert create_mcds(query, view) == []

    def test_only_subgoal_filter(self):
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        views = _views_from_paper()
        mcds = create_mcds(query, views.by_name("V2"), only_subgoal=2)
        assert len(mcds) == 1
        assert mcds[0].created_for == 2

    def test_equalities_recorded_when_variables_identified(self):
        # Covering both Skill atoms with the same view subgoal forces f1 = f2.
        query = parse_query("Q(f1, f2) :- Skill(f1, s), Skill(f2, s)")
        view = View(parse_query("SameSkill(a, b) :- Skill(a, s), Skill(b, s)"))
        mcds = create_mcds(query, view)
        with_equalities = [m for m in mcds if m.equalities]
        without_equalities = [m for m in mcds if not m.equalities]
        assert with_equalities, "expected at least one MCD identifying f1 and f2"
        assert without_equalities, "expected the symmetric MCDs without equalities"

    def test_constants_in_query_subgoals(self):
        query = parse_query('Q(x) :- Skills(x, "medical")')
        view = View(parse_query("SkillView(a, b) :- Skills(a, b)"))
        mcds = create_mcds(query, view)
        assert len(mcds) == 1
        assert '"medical"' in str(mcds[0].view_atom)


class TestMiniConRewriting:
    def test_paper_example_rewriting(self):
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        union = minicon_rewrite(query, _views_from_paper())
        assert len(union) == 1
        rewriting = union.disjuncts[0]
        assert {a.predicate for a in rewriting.relational_body()} == {"V1", "V2"}

    def test_rewritings_are_sound(self):
        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y), e3(x, y)")
        views = _views_from_paper()
        union = minicon_rewrite(query, views)
        for rewriting in union:
            expansion = expand_view_atoms(rewriting, views)
            assert expansion is not None
            assert is_contained_in(expansion, query)

    def test_no_views_no_rewriting(self):
        query = parse_query("Q(x) :- p(x)")
        assert minicon_rewrite(query, ViewSet()).is_empty()

    def test_multiple_alternative_views_give_union(self):
        query = parse_query("Q(x) :- p(x)")
        views = ViewSet([
            View(parse_query("V1(a) :- p(a)")),
            View(parse_query("V2(a) :- p(a), q(a)")),
        ])
        union = minicon_rewrite(query, views)
        assert len(union) == 2

    def test_query_comparisons_carried_when_expressible(self):
        query = parse_query("Q(x, y) :- p(x, y), y < 5")
        views = ViewSet([View(parse_query("V(a, b) :- p(a, b)"))])
        union = minicon_rewrite(query, views)
        assert len(union) == 1
        assert union.disjuncts[0].has_comparisons()

    def test_query_comparisons_on_unexported_variable_discard_rewriting(self):
        query = parse_query("Q(x) :- p(x, y), y < 5")
        views = ViewSet([View(parse_query("V(a) :- p(a, b)"))])
        union = minicon_rewrite(query, views)
        assert union.is_empty()

    def test_rewriting_answers_match_certain_answers(self):
        from repro.integration import certain_answers

        query = parse_query("Q(x, y) :- e1(x, z), e2(z, y)")
        views = ViewSet([
            View(parse_query("V1(a, b) :- e1(a, c), e2(c, b)")),
            View(parse_query("V4(a, c) :- e1(a, c)")),
            View(parse_query("V5(c, b) :- e2(c, b)")),
        ])
        data = {"V1": [(1, 10)], "V4": [(2, 5)], "V5": [(5, 20)]}
        union = minicon_rewrite(query, views)
        assert evaluate_union(union, data) == certain_answers(query, views, data)
        assert evaluate_union(union, data) == {(1, 10), (2, 20)}

    def test_self_join_query(self):
        query = parse_query("Q(x, y) :- e(x, z), e(z, y)")
        views = ViewSet([View(parse_query("V(a, b) :- e(a, b)"))])
        union = minicon_rewrite(query, views)
        assert len(union) == 1
        assert len(union.disjuncts[0].relational_body()) == 2
