"""Unit tests for repro.datalog.evaluation."""

import pytest

from repro.datalog.evaluation import (
    evaluate_program,
    evaluate_program_query,
    evaluate_query,
    evaluate_union,
)
from repro.datalog.parser import parse_program, parse_query, parse_union
from repro.errors import EvaluationError


EDGES = {"E": [(1, 2), (2, 3), (3, 4)]}


class TestEvaluateQuery:
    def test_single_atom(self):
        query = parse_query("Q(x, y) :- E(x, y)")
        assert evaluate_query(query, EDGES) == {(1, 2), (2, 3), (3, 4)}

    def test_join(self):
        query = parse_query("Q(x, z) :- E(x, y), E(y, z)")
        assert evaluate_query(query, EDGES) == {(1, 3), (2, 4)}

    def test_projection(self):
        query = parse_query("Q(x) :- E(x, y)")
        assert evaluate_query(query, EDGES) == {(1,), (2,), (3,)}

    def test_constant_selection(self):
        query = parse_query("Q(y) :- E(2, y)")
        assert evaluate_query(query, EDGES) == {(3,)}

    def test_head_constant(self):
        query = parse_query('Q(x, "edge") :- E(x, y)')
        assert evaluate_query(query, EDGES) == {(1, "edge"), (2, "edge"), (3, "edge")}

    def test_comparison_filtering(self):
        query = parse_query("Q(x, y) :- E(x, y), y < 4")
        assert evaluate_query(query, EDGES) == {(1, 2), (2, 3)}

    def test_variable_join_in_same_atom(self):
        facts = {"R": [(1, 1), (1, 2)]}
        query = parse_query("Q(x) :- R(x, x)")
        assert evaluate_query(query, facts) == {(1,)}

    def test_empty_relation_gives_empty_answer(self):
        query = parse_query("Q(x) :- Missing(x)")
        assert evaluate_query(query, EDGES) == set()

    def test_arity_mismatch_raises(self):
        query = parse_query("Q(x) :- E(x)")
        with pytest.raises(EvaluationError):
            evaluate_query(query, EDGES)

    def test_cartesian_product(self):
        facts = {"A": [(1,), (2,)], "B": [(3,), (4,)]}
        query = parse_query("Q(x, y) :- A(x), B(y)")
        assert evaluate_query(query, facts) == {(1, 3), (1, 4), (2, 3), (2, 4)}

    def test_instance_object_as_fact_source(self):
        from repro.database import Instance

        instance = Instance.from_dict(EDGES)
        query = parse_query("Q(x, z) :- E(x, y), E(y, z)")
        assert evaluate_query(query, instance) == {(1, 3), (2, 4)}


class TestEvaluateUnion:
    def test_union_of_two_disjuncts(self):
        union = parse_union(["Q(x) :- E(x, 2)", "Q(x) :- E(x, 4)"])
        assert evaluate_union(union, EDGES) == {(1,), (3,)}

    def test_empty_union(self):
        from repro.datalog.queries import UnionQuery

        assert evaluate_union(UnionQuery([], name="Q", arity=1), EDGES) == set()


class TestEvaluateProgram:
    def test_transitive_closure(self):
        program = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, y) :- E(x, z), T(z, y)
            """,
            query_predicate="T",
        )
        result = evaluate_program_query(program, EDGES)
        assert result == {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}

    def test_nonrecursive_program(self):
        program = parse_program(
            """
            P(x) :- E(x, y)
            QQ(x) :- P(x), E(x, 2)
            """,
            query_predicate="QQ",
        )
        assert evaluate_program_query(program, EDGES) == {(1,)}

    def test_program_result_contains_all_idb(self):
        program = parse_program(
            """
            A(x) :- E(x, y)
            B(y) :- E(x, y)
            """,
            query_predicate="A",
        )
        result = evaluate_program(program, EDGES)
        assert set(result.keys()) == {"A", "B"}
        assert result["B"] == {(2,), (3,), (4,)}

    def test_mutual_recursion(self):
        program = parse_program(
            """
            Even(x) :- Zero(x)
            Even(y) :- Odd(x), Succ(x, y)
            Odd(y) :- Even(x), Succ(x, y)
            """,
            query_predicate="Even",
        )
        facts = {"Zero": [(0,)], "Succ": [(i, i + 1) for i in range(6)]}
        assert evaluate_program_query(program, facts) == {(0,), (2,), (4,), (6,)}

    def test_iteration_limit(self):
        program = parse_program(
            """
            T(x, y) :- E(x, y)
            T(x, y) :- E(x, z), T(z, y)
            """,
            query_predicate="T",
        )
        long_chain = {"E": [(i, i + 1) for i in range(30)]}
        with pytest.raises(EvaluationError):
            evaluate_program(program, long_chain, max_iterations=2)
