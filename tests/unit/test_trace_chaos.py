"""Trace chaos tests (ISSUE 10).

The invariants under fault injection: every span closes exactly once
(``Tracer.health()`` shows no double closes and nothing left open) and
every trace is a well-formed tree (each span's parent is present in the
record set) — across retries, hedges with cancelled losers, deadline
expiries, and breaker trips, on all three transports.  Plus the wire
compatibility contract: a legacy peer that knows nothing about trace
contexts still serves traced queries correctly, just without worker-side
spans.
"""

from __future__ import annotations

import time

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.datalog.indexing import WILDCARD
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_tracer,
    render_trace,
    reset_tracer,
    set_tracer,
)
from repro.pdms import (
    PDMS,
    AsyncSocketTransport,
    LoopbackTransport,
    ProcessTransport,
    RemotePeerFactSource,
    ScanPolicy,
    ServiceCluster,
    ShardMap,
    StorageDescription,
)
from repro.pdms.distributed.transport import decode_pattern

ALL = (WILDCARD, WILDCARD)

#: No-sleep, no-jitter policies so tests stay fast and deterministic.
FAST = dict(backoff=0.0, backoff_cap=0.0, jitter=0.0)


@pytest.fixture
def tracer():
    installed = Tracer(
        enabled=True, sample_rate=1.0, sink_path=None,
        registry=MetricsRegistry(),
    )
    set_tracer(installed)
    yield installed
    set_tracer(None)


def assert_well_formed(tracer):
    """Spans closed exactly once; every recorded parent is present."""
    health = tracer.health()
    assert health["open"] == 0
    assert health["double_closes"] == 0
    assert health["started"] == health["finished"]
    for trace_id in tracer.trace_ids():
        spans = tracer.trace(trace_id)
        ids = {record["span_id"] for record in spans}
        for record in spans:
            parent = record.get("parent_id")
            if parent is not None:
                assert parent in ids, f"dangling parent in {record}"
    return health


def last_spans(tracer, name=None):
    _, spans = tracer.last_trace()
    if name is None:
        return spans
    return [record for record in spans if record["name"] == name]


def _single_peer():
    instance = Instance.from_dict({"r": [(1, 10), (2, 20), (3, 30)]})
    return {"A": instance}, {(1, 10), (2, 20), (3, 30)}


def _replicated_pair():
    instance = Instance.from_dict({"r": [(1, 10), (2, 20), (3, 30)]})
    shard_map = ShardMap().shard_by_hash("r", 0, [("A", "B")])
    return {"A": instance, "B": instance}, shard_map, {(1, 10), (2, 20), (3, 30)}


def two_peer_system():
    """``Q :- T:A ⨝ T:B`` with A stored on P1 and B on P2."""
    pdms = PDMS("trace-chaos")
    top = pdms.add_peer("T")
    top.add_relation("A", ["x", "y"])
    top.add_relation("B", ["x", "y"])
    for peer_name, relation, stored in (("P1", "A", "sa"), ("P2", "B", "sb")):
        pdms.add_peer(peer_name)
        pdms.add_storage_description(StorageDescription(
            peer_name, stored,
            parse_query(f"V(x, y) :- T:{relation}(x, y)"),
            exact=False, name=f"store_{stored}",
        ))
    data = {
        "P1": Instance.from_dict({"sa": [(1, 2), (2, 3), (5, 6)]}),
        "P2": Instance.from_dict({"sb": [(2, 10), (3, 11), (6, 12)]}),
    }
    query = parse_query("Q(x, z) :- T:A(x, y), T:B(y, z)")
    expected = frozenset({(1, 10), (2, 11), (5, 12)})
    return pdms, data, query, expected


# ---------------------------------------------------------------------------
# Loopback: retries, hedges, deadlines, unreachable peers
# ---------------------------------------------------------------------------


class TestLoopbackChaos:
    def test_retry_attempts_each_get_a_closed_span(self, tracer):
        data, expected = _single_peer()
        transport = LoopbackTransport(data, drop_every_n=2)
        source = RemotePeerFactSource(
            transport, policy=ScanPolicy(retries=2, hedging=False, **FAST)
        )
        with tracer.start_trace("query.answer"):
            assert set(source.get_matching("r", ALL)) == expected  # scan #1
            # Scan #2 is dropped; the retry heals it under the same unit.
            assert set(source.get_matching("r", (1, WILDCARD))) == {(1, 10)}
        assert_well_formed(tracer)
        attempts = last_spans(tracer, "scan.attempt")
        assert any(record["status"] == "error" for record in attempts)
        retries = [r for r in attempts if r["attrs"].get("kind") == "retry"]
        assert retries and all(r["status"] == "ok" for r in retries)
        unit = next(
            record for record in last_spans(tracer, "scan.unit")
            if record["attrs"].get("attempts", 0) > 1
        )
        assert unit["status"] == "ok"

    def test_hedge_loser_closes_as_cancelled(self, tracer):
        data, shard_map, expected = _replicated_pair()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            shard_map=shard_map,
            policy=ScanPolicy(retries=0, hedge=0.01, **FAST),
        )
        transport.set_peer_delay("A", 0.3)
        with tracer.start_trace("query.answer"):
            assert set(source.get_matching("r", ALL)) == expected
        assert source.scatter_stats()["hedges_won"] == 1
        health = assert_well_formed(tracer)
        assert health["double_closes"] == 0
        attempts = last_spans(tracer, "scan.attempt")
        kinds = {record["attrs"].get("kind") for record in attempts}
        assert "hedge" in kinds
        statuses = [record["status"] for record in attempts]
        assert statuses.count("cancelled") == 1  # exactly the loser
        assert statuses.count("ok") == 1  # exactly the winner

    def test_deadline_expiry_closes_the_whole_subtree(self, tracer):
        data, _ = _single_peer()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            policy=ScanPolicy(retries=2, hedging=False, deadline=0.05, **FAST),
        )
        transport.set_peer_delay("A", 0.4)
        with tracer.start_trace("query.answer"):
            assert source.get_matching("r", ALL) == ()
        assert_well_formed(tracer)
        [unit] = last_spans(tracer, "scan.unit")
        assert unit["status"] == "deadline"
        for record in last_spans(tracer, "scan.attempt"):
            assert record["status"] in ("cancelled", "error")

    def test_unreachable_peer_exhausts_retries_with_error_spans(self, tracer):
        data, _ = _single_peer()
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport, policy=ScanPolicy(retries=1, hedging=False, **FAST)
        )
        source.refresh()  # learn the routes while the peer is up
        transport.fail_peer("A")
        with tracer.start_trace("query.answer"):
            assert source.get_matching("r", ALL) == ()
        assert_well_formed(tracer)
        [unit] = last_spans(tracer, "scan.unit")
        assert unit["status"] == "error" and "error" in unit["attrs"]
        attempts = last_spans(tracer, "scan.attempt")
        assert attempts and all(r["status"] == "error" for r in attempts)

    def test_pool_scattered_prefetch_keeps_the_tree_stitched(self, tracer):
        data, shard_map, _ = _replicated_pair()
        transport = LoopbackTransport(data, delay=0.001)  # forces the pool
        source = RemotePeerFactSource(
            transport,
            shard_map=shard_map,
            policy=ScanPolicy(retries=0, hedging=False, **FAST),
        )
        with tracer.start_trace("query.answer"):
            assert source.prefetch([("r", ALL)]) == 1
        assert_well_formed(tracer)
        [wave] = last_spans(tracer, "scatter.wave")
        assert wave["attrs"]["units"] == 1
        # Pool threads cannot see the thread-ambient span; the wave is
        # threaded through explicitly, so the unit still parents to it.
        [unit] = last_spans(tracer, "scan.unit")
        assert unit["parent_id"] == wave["span_id"]


# ---------------------------------------------------------------------------
# ProcessTransport: worker-side stitching and breaker trips
# ---------------------------------------------------------------------------


class TestProcessTransportChaos:
    def test_worker_serve_spans_stitch_into_the_query_tree(self, tracer):
        pdms, data, query, expected = two_peer_system()
        with ProcessTransport(data) as transport:
            with ServiceCluster(
                pdms=pdms,
                transport=transport,
                scan_policy=ScanPolicy(retries=0, hedging=False, **FAST),
            ) as cluster:
                answer = cluster.answer(query)
                assert answer.rows == expected and answer.complete
        assert_well_formed(tracer)
        spans = last_spans(tracer)
        names = {record["name"] for record in spans}
        assert {"query.answer", "plan.compile", "plan.execute"} <= names
        remote = [record for record in spans if record.get("remote")]
        assert remote, "worker-side serve spans were not shipped back"
        for record in remote:
            assert record["name"].startswith("rpc.serve.")

    def test_breaker_tripped_worker_yields_clean_error_spans(self, tracer):
        data, _ = _single_peer()
        transport = ProcessTransport(data, timeout=0.05, breaker_cooldown=60.0)
        try:
            source = RemotePeerFactSource(
                transport, policy=ScanPolicy(retries=1, hedging=False, **FAST)
            )
            source.refresh()
            with pytest.raises(Exception):
                transport.sleep("A", 0.3)  # times out: the breaker trips
            assert "A" in transport.failed_peers()
            with tracer.start_trace("query.answer"):
                assert source.get_matching("r", ALL) == ()
            assert_well_formed(tracer)
            [unit] = last_spans(tracer, "scan.unit")
            assert unit["status"] == "error"
            attempts = last_spans(tracer, "scan.attempt")
            assert attempts and all(r["status"] == "error" for r in attempts)
        finally:
            transport.close()


# ---------------------------------------------------------------------------
# Socket transport: the end-to-end acceptance trace
# ---------------------------------------------------------------------------


class _SlowTwin:
    """A replica that serves scans slowly (forces the hedge to fire)."""

    def __init__(self, inner, delay=0.08):
        self._inner = inner
        self._delay = delay

    def get_matching(self, relation, pattern):
        time.sleep(self._delay)
        return self._inner.get_matching(relation, pattern)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestSocketAcceptanceTrace:
    def test_traced_query_over_sockets_with_a_hedged_duplicate(
        self, monkeypatch
    ):
        """The ISSUE acceptance scenario: REPRO_TRACE=1, socket transport,
        one query, one well-formed renderable tree with a hedged scan."""
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.delenv("REPRO_TRACE_SAMPLE", raising=False)
        monkeypatch.delenv("REPRO_TRACE_SINK", raising=False)
        reset_tracer()  # re-read the env knobs
        try:
            pdms, data, query, expected = two_peer_system()
            instances = {
                "P1": _SlowTwin(data["P1"]),
                "P1r": data["P1"],
                "P2": _SlowTwin(data["P2"]),
                "P2r": data["P2"],
            }
            shard_map = (
                ShardMap()
                .shard_by_hash("sa", 0, [("P1", "P1r")])
                .shard_by_hash("sb", 0, [("P2", "P2r")])
            )
            transport = AsyncSocketTransport(instances)
            try:
                with ServiceCluster(
                    pdms=pdms,
                    transport=transport,
                    shard_map=shard_map,
                    scan_policy=ScanPolicy(retries=0, hedge=0.01, **FAST),
                ) as cluster:
                    answer = cluster.answer(query)
                    assert answer.rows == expected and answer.complete
                    assert cluster.source.scatter_stats()["hedges_fired"] >= 1
            finally:
                transport.close()
            tracer = get_tracer()
            assert_well_formed(tracer)
            spans = last_spans(tracer)
            names = {record["name"] for record in spans}
            assert {
                "query.answer", "query.reformulate", "plan.compile",
                "plan.execute", "scatter.wave", "scan.unit", "scan.attempt",
            } <= names
            attempts = [r for r in spans if r["name"] == "scan.attempt"]
            assert any(r["attrs"].get("kind") == "hedge" for r in attempts)
            assert any(r["status"] == "cancelled" for r in attempts)
            remote = [r for r in spans if r.get("remote")]
            assert remote, "socket workers shipped no serve spans"
            text = render_trace(spans)
            assert "query.answer" in text
            assert "kind=hedge" in text
            assert "~ rpc.serve." in text
        finally:
            set_tracer(None)


# ---------------------------------------------------------------------------
# Wire compatibility: legacy peers ignore the trace context
# ---------------------------------------------------------------------------


class LegacyTransport(LoopbackTransport):
    """An 'old peer': serves every scan, knows nothing about tracing."""

    def scan_batch(self, peer, requests):
        self._enter_rpc(peer, scan=True)
        instance = self.instance(peer)
        return [
            tuple(instance.get_matching(relation, decode_pattern(encoded)))
            for relation, encoded in requests
        ]


class TestLegacyPeerInterop:
    def test_traced_queries_work_without_worker_spans(self, tracer):
        data, expected = _single_peer()
        source = RemotePeerFactSource(
            LegacyTransport(data),
            policy=ScanPolicy(retries=0, hedging=False, **FAST),
        )
        with tracer.start_trace("query.answer"):
            assert set(source.get_matching("r", ALL)) == expected
        health = assert_well_formed(tracer)
        assert health["adopted"] == 0  # nothing shipped back, nothing broke
        assert not [r for r in last_spans(tracer) if r.get("remote")]
        # The client side of the tree is still complete.
        assert last_spans(tracer, "scan.attempt")

    def test_legacy_peer_still_serves_untraced_queries(self):
        data, expected = _single_peer()
        source = RemotePeerFactSource(
            LegacyTransport(data),
            policy=ScanPolicy(retries=0, hedging=False, **FAST),
        )
        assert set(source.get_matching("r", ALL)) == expected
