"""Versioned relation statistics and the stats-driven cost model."""

import pytest

from repro.database import Instance, StatisticsCatalog
from repro.database.planner import CardinalityCostModel
from repro.database.statistics import compute_relation_stats, source_data_version
from repro.datalog.parser import parse_query


def _atom(text):
    return parse_query(text).relational_body()[0]


class TestRelationStats:
    def test_one_pass_cardinality_and_distinct(self):
        stats = compute_relation_stats("r", [(1, 2), (1, 3), (2, 3)])
        assert stats.cardinality == 3
        assert stats.distinct == (2, 2)

    def test_distinct_at_out_of_range_falls_back_to_cardinality(self):
        stats = compute_relation_stats("r", [(1, 2)] * 1)
        assert stats.distinct_at(5) == 1

    def test_selectivity(self):
        stats = compute_relation_stats("r", [(1, 2), (1, 3), (2, 3), (3, 3)])
        assert stats.selectivity(0) == pytest.approx(1 / 3)
        assert compute_relation_stats("r", []).selectivity(0) == 0.0

    def test_ragged_rows_tolerated(self):
        stats = compute_relation_stats("r", [(1,), (1, 2)])
        assert stats.cardinality == 2
        assert stats.distinct == (1, 1)


class TestStatisticsCatalog:
    def test_revalidates_only_when_version_moves(self):
        instance = Instance()
        instance.add_all("r", [(1, 2), (2, 3)])
        catalog = StatisticsCatalog(instance)
        first = catalog.stats("r")
        assert first.cardinality == 2
        assert catalog.stats("r") is first  # version unchanged: cached object
        instance.add("r", (5, 6))
        second = catalog.stats("r")
        assert second is not first
        assert second.cardinality == 3

    def test_delete_also_moves_the_version(self):
        instance = Instance()
        instance.add_all("r", [(1, 2), (2, 3)])
        catalog = StatisticsCatalog(instance)
        assert catalog.cardinality("r") == 2
        instance.remove("r", (1, 2))
        assert catalog.cardinality("r") == 1

    def test_freeze_drops_the_source_but_keeps_stats(self):
        instance = Instance()
        instance.add_all("r", [(1, 2)])
        catalog = StatisticsCatalog(instance).freeze()
        assert catalog.source is None
        assert catalog.cardinality("r") == 1
        instance.add("r", (3, 4))
        assert catalog.cardinality("r") == 1  # frozen: no revalidation

    def test_unknown_relation_is_empty(self):
        catalog = StatisticsCatalog(Instance())
        assert catalog.cardinality("nope") == 0
        assert catalog.column_distinct("nope", 0) == 1


class TestDataVersions:
    def test_instance_tokens_move_on_mutation(self):
        instance = Instance()
        absent = instance.data_version("r")
        instance.add("r", (1, 2))
        created = instance.data_version("r")
        assert created != absent
        instance.add("r", (3, 4))
        grown = instance.data_version("r")
        assert grown != created
        instance.remove("r", (1, 2))
        assert instance.data_version("r") != grown

    def test_tokens_from_different_instances_never_alias(self):
        a, b = Instance(), Instance()
        a.add("r", (1, 2))
        b.add("r", (1, 2))
        assert a.data_version("r") != b.data_version("r")
        assert a.instance_id != b.instance_id

    def test_version_vector(self):
        instance = Instance()
        instance.add("r", (1, 2))
        instance.add("s", (3,))
        vector = instance.version_vector()
        assert set(vector) == {"r", "s"}
        assert vector["r"] == instance.data_version("r")
        assert instance.version_vector(["r"]).keys() == {"r"}

    def test_source_data_version_helper(self):
        instance = Instance()
        assert source_data_version(instance, "r") == instance.data_version("r")
        assert source_data_version({"r": [(1, 2)]}, "r") is None


class TestStatsDrivenCostModel:
    def test_constant_filter_uses_point_selectivity(self):
        instance = Instance()
        # 100 rows, 10 distinct values in column 0, 100 in column 1.
        instance.add_all("r", [(i % 10, i) for i in range(100)])
        model = CardinalityCostModel(instance)
        assert model.cardinality("r") == 100
        assert model.column_distinct("r", 0) == 10
        # A constant at position 0 matches ~1/10 of the rows.
        assert model.atom_estimate(_atom("Q(y) :- r(3, y)")) == 10
        # A constant at position 1 matches ~1/100 of the rows.
        assert model.atom_estimate(_atom("Q(x) :- r(x, 42)")) == 1
        # No restrictions: the full cardinality.
        assert model.atom_estimate(_atom("Q(x, y) :- r(x, y)")) == 100

    def test_repeated_variable_uses_max_distinct(self):
        instance = Instance()
        # 40 distinct rows, 20 distinct values left, 10 right.
        instance.add_all("r", [(i // 2, i % 10) for i in range(40)])
        model = CardinalityCostModel(instance)
        # 1 / max(d0, d1) = 1/20 of 40 rows => 2.
        assert model.atom_estimate(_atom("Q(x) :- r(x, x)")) == 2

    def test_snapshot_does_not_pin_the_source(self):
        instance = Instance()
        instance.add_all("r", [(1, 2), (2, 3)])
        model = CardinalityCostModel.snapshot(instance)
        assert model.statistics.source is None
        instance.add("r", (9, 9))
        assert model.cardinality("r") == 2

    def test_snapshot_of_plain_mapping(self):
        model = CardinalityCostModel.snapshot({"r": [(1, 2), (3, 4)]})
        assert model.cardinality("r") == 2

    def test_pinless_does_not_pin_or_eagerly_scan(self):
        import gc
        import weakref

        instance = Instance()
        instance.add_all("r", [(1, 2), (2, 3)])
        model = CardinalityCostModel.pinless(instance)
        assert model.cardinality("r") == 2
        instance.add("r", (9, 9))
        assert model.cardinality("r") == 3  # live: revalidates
        ref = weakref.ref(instance)
        del instance
        gc.collect()
        assert ref() is None, "pinless model kept the source alive"

    def test_pinless_of_plain_mapping_captures_eagerly(self):
        # The mapping adapter is throwaway; a weak reference to it would
        # die before any stats read — eager capture keeps estimates real.
        model = CardinalityCostModel.pinless({"r": [(1, 2), (3, 4)]})
        assert model.cardinality("r") == 2

    def test_modelless_estimates_are_zero(self):
        model = CardinalityCostModel()
        assert model.cardinality("r") == 0
        assert model.atom_estimate(_atom("Q(x) :- r(x, 1)")) == 0
