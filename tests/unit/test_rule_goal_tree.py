"""Unit tests for the rule-goal tree data structures."""

from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.constraints import ConstraintSet
from repro.datalog.terms import Constant, Variable
from repro.pdms.rule_goal_tree import GoalNode, RuleGoalTree, RuleNode, TreeStatistics


def _tiny_tree():
    """root -> query rule -> [g1, g2]; g1 -> definitional -> [leaf]."""
    root = GoalNode(Atom("Q", [Variable("x")]),
                    external=frozenset({Variable("x")}))
    query_rule = RuleNode(RuleNode.KIND_QUERY, description=None, origin="__query__",
                          parent=root)
    root.add_child(query_rule)
    g1 = GoalNode(Atom("A:R", [Variable("x"), Variable("y")]), parent=query_rule, depth=1)
    g2 = GoalNode(Atom("A:S", [Variable("y")]), parent=query_rule, depth=1)
    query_rule.add_child(g1)
    query_rule.add_child(g2)
    definitional = RuleNode(RuleNode.KIND_DEFINITIONAL, description=None, origin="d1",
                            parent=g1)
    g1.add_child(definitional)
    leaf = GoalNode(Atom("stored_r", [Variable("x"), Variable("y")]),
                    parent=definitional, is_stored=True, depth=2)
    definitional.add_child(leaf)
    inclusion = RuleNode(RuleNode.KIND_INCLUSION, description=None, origin="i1",
                         parent=g2, covers=frozenset({g1, g2}))
    g2.add_child(inclusion)
    view_goal = GoalNode(Atom("stored_v", [Variable("y")]), parent=inclusion,
                         is_stored=True, depth=2)
    inclusion.add_child(view_goal)
    return RuleGoalTree(root), root, g1, g2, leaf


class TestNodes:
    def test_goal_node_ids_are_unique(self):
        first = GoalNode(Atom("R", [Variable("x")]))
        second = GoalNode(Atom("R", [Variable("x")]))
        assert first.id != second.id

    def test_siblings(self):
        _, root, g1, g2, _ = _tiny_tree()
        assert g1.siblings() == [g1, g2]
        assert root.siblings() == [root]

    def test_constraint_label_defaults_to_true(self):
        node = GoalNode(Atom("R", [Variable("x")]))
        assert node.constraint.is_trivially_true()

    def test_rule_node_covers(self):
        _, _, g1, g2, _ = _tiny_tree()
        inclusion = g2.children[0]
        assert inclusion.covers == frozenset({g1, g2})
        assert "inclusion" in repr(inclusion)

    def test_repr_marks_stored_leaves(self):
        _, _, _, _, leaf = _tiny_tree()
        assert "$" in repr(leaf)


class TestTreeTraversal:
    def test_goal_and_rule_node_counts(self):
        tree, *_ = _tiny_tree()
        stats = tree.count_nodes()
        assert stats.goal_nodes == 5
        assert stats.rule_nodes == 3
        assert stats.total_nodes == 8
        assert stats.stored_leaves == 2
        assert stats.dead_leaves == 0
        assert stats.max_depth == 2

    def test_dead_leaf_counted(self):
        tree, root, g1, g2, _ = _tiny_tree()
        dead = GoalNode(Atom("A:T", [Variable("z")]), parent=g2.children[0], depth=2)
        g2.children[0].add_child(dead)
        stats = tree.count_nodes()
        assert stats.dead_leaves == 1

    def test_leaves_iterator(self):
        tree, *_ = _tiny_tree()
        leaf_predicates = {leaf.label.predicate for leaf in tree.leaves()}
        assert leaf_predicates == {"stored_r", "stored_v"}

    def test_pretty_rendering_contains_covers_and_constraints(self):
        tree, root, g1, _, _ = _tiny_tree()
        g1.constraint = ConstraintSet(
            [ComparisonAtom(Variable("y"), "<", Constant(5))])
        rendering = tree.pretty()
        assert "covers(" in rendering
        assert "y < 5" in rendering
        assert "$stored_r" in rendering

    def test_pretty_respects_max_depth(self):
        tree, *_ = _tiny_tree()
        shallow = tree.pretty(max_depth=0)
        assert "stored_r" not in shallow

    def test_statistics_preserved_counters(self):
        tree, *_ = _tiny_tree()
        tree.statistics.pruned_unsatisfiable = 3
        tree.statistics.memoization_hits = 7
        stats = tree.count_nodes()
        assert stats.pruned_unsatisfiable == 3
        assert stats.memoization_hits == 7

    def test_tree_repr(self):
        tree, *_ = _tiny_tree()
        tree.count_nodes()
        assert "RuleGoalTree(8 nodes" in repr(tree)
