"""Edge-case tests for reformulation and the surrounding machinery."""

import pytest

from repro.datalog import parse_atom, parse_query
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    ReformulationConfig,
    StorageDescription,
    answer_query,
    certain_answers,
    lav_style,
    reformulate,
)


def _single_peer_pdms():
    pdms = PDMS()
    peer = pdms.add_peer("A")
    peer.add_relation("R", ["x", "y"])
    peer.add_relation("T", ["x", "y"])
    pdms.add_storage_description(
        StorageDescription("A", "stored_r", parse_query("V(x, y) :- A:R(x, y)")))
    return pdms


class TestQueriesOverStoredRelations:
    def test_query_mentioning_a_stored_relation_directly(self):
        """Stored relations can be queried directly; they are leaves."""
        pdms = _single_peer_pdms()
        query = parse_query("Q(x, y) :- stored_r(x, y)")
        result = reformulate(pdms, query)
        rewritings = result.all_rewritings()
        assert len(rewritings) == 1
        assert rewritings[0].relational_body()[0].predicate == "stored_r"
        assert answer_query(pdms, query, {"stored_r": [(1, 2)]}) == {(1, 2)}

    def test_mixed_stored_and_peer_relations_in_one_query(self):
        pdms = _single_peer_pdms()
        query = parse_query("Q(x, z) :- A:R(x, y), stored_r(y, z)")
        result = reformulate(pdms, query)
        assert len(result.all_rewritings()) == 1
        data = {"stored_r": [(1, 2), (2, 3)]}
        # A:R contains at least the stored rows, so the join yields (1, 3).
        assert answer_query(pdms, query, data) == {(1, 3)}


class TestConstantsInQueries:
    def test_constant_selection_pushes_through_mappings(self):
        pdms = _single_peer_pdms()
        query = parse_query("Q(y) :- A:R(7, y)")
        data = {"stored_r": [(7, 1), (8, 2)]}
        assert answer_query(pdms, query, data) == {(1,)}
        assert certain_answers(pdms, query, data) == {(1,)}

    def test_repeated_variable_in_query_subgoal(self):
        pdms = _single_peer_pdms()
        query = parse_query("Q(x) :- A:R(x, x)")
        data = {"stored_r": [(1, 1), (1, 2)]}
        assert answer_query(pdms, query, data) == {(1,)}
        assert certain_answers(pdms, query, data) == {(1,)}


class TestUnmappedAndEmptyCases:
    def test_peer_relation_without_any_mapping(self):
        pdms = _single_peer_pdms()
        query = parse_query("Q(x, y) :- A:T(x, y)")
        result = reformulate(pdms, query)
        assert result.all_rewritings() == []
        assert result.union().is_empty()
        assert answer_query(pdms, query, {"stored_r": [(1, 2)]}) == set()

    def test_empty_stored_data_gives_empty_answers(self):
        pdms = _single_peer_pdms()
        query = parse_query("Q(x, y) :- A:R(x, y)")
        assert answer_query(pdms, query, {}) == set()

    def test_union_object_carries_query_signature(self):
        pdms = _single_peer_pdms()
        query = parse_query("Q(x, y) :- A:T(x, y)")
        union = reformulate(pdms, query).union()
        assert union.name == "Q" and union.arity == 2


class TestMultiHopWithConstantsAndComparisons:
    def test_comparison_survives_two_hops(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("Item", ["x", "price"])
        b = pdms.add_peer("B")
        b.add_relation("Listing", ["x", "price"])
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:Item(x, p) :- B:Listing(x, p)")))
        pdms.add_storage_description(StorageDescription(
            "B", "listings", parse_query("V(x, p) :- B:Listing(x, p)")))
        query = parse_query("Q(x) :- A:Item(x, p), p < 10")
        data = {"listings": [("cheap", 5), ("pricey", 50)]}
        assert answer_query(pdms, query, data) == {("cheap",)}

    def test_lav_hop_then_definitional_hop(self):
        pdms = PDMS()
        a = pdms.add_peer("A")
        a.add_relation("Top", ["x", "y"])
        b = pdms.add_peer("B")
        b.add_relation("Mid", ["x", "y"])
        c = pdms.add_peer("C")
        c.add_relation("Low", ["x", "y"])
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:Top(x, y) :- B:Mid(x, y)")))
        pdms.add_peer_mapping(lav_style(
            parse_atom("C:Low(x, y)"), parse_query("V(x, y) :- B:Mid(x, y)")))
        pdms.add_storage_description(StorageDescription(
            "C", "low_store", parse_query("V(x, y) :- C:Low(x, y)")))
        query = parse_query("Q(x, y) :- A:Top(x, y)")
        result = reformulate(pdms, query)
        assert len(result.all_rewritings()) == 1
        data = {"low_store": [(1, 2)]}
        assert answer_query(pdms, query, data) == {(1, 2)}
        assert certain_answers(pdms, query, data) == {(1, 2)}


class TestResultObject:
    def test_first_rewritings_does_not_exhaust_result(self):
        pdms = _single_peer_pdms()
        query = parse_query("Q(x, y) :- A:R(x, y)")
        result = reformulate(pdms, query)
        assert len(result.first_rewritings(5)) == 1
        assert len(result.all_rewritings()) == 1
        # Streaming after materialisation replays the cached list.
        assert len(list(result.rewritings())) == 1

    def test_statistics_exposed_via_result(self):
        pdms = _single_peer_pdms()
        result = reformulate(pdms, parse_query("Q(x, y) :- A:R(x, y)"))
        assert result.statistics.total_nodes >= 4
