"""Unit tests for the shared union-plan IR, the engine registry, and the
federated :class:`PeerFactSource` (ISSUE 3).

Covers, per layer:

* ``repro.pdms.planning`` — hash-consed fragment sharing, incremental
  compilation, sequential/parallel execution equality, worker config;
* ``repro.pdms.execution`` — engine registry semantics and dynamic error
  messages, federated probe routing and the arity-clash check, the
  per-batch canonical-signature cache of ``answer_query_batch``;
* ``repro.database.planner`` — the cardinality cost model and the new
  distinct/materialize operators with memoized execution.
"""

import pytest

from repro.database import (
    CardinalityCostModel,
    Instance,
    Table,
    compile_union,
    execute_plan,
)
from repro.database.algebra import union_many
from repro.database.planner import DistinctNode, MaterializeNode
from repro.datalog import parse_query
from repro.datalog.queries import UnionQuery
from repro.errors import EvaluationError, MappingError
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    PeerFactSource,
    PerRewritingEngine,
    StorageDescription,
    answer_query,
    answer_query_batch,
    compile_reformulation,
    evaluate_plan,
    evaluate_reformulation,
    get_engine,
    reformulate,
    register_engine,
    registered_engines,
    stream_plan_answers,
    validate_engine,
)
from repro.pdms import execution as execution_module
from repro.pdms.planning import shared_workers_from_env


@pytest.fixture
def two_peer_pdms():
    pdms = PDMS()
    a = pdms.add_peer("A")
    a.add_relation("R", ["x", "y"])
    b = pdms.add_peer("B")
    b.add_relation("S", ["x", "y"])
    pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:R(x, y) :- B:S(x, y)")))
    pdms.add_storage_description(
        StorageDescription("B", "stored_s", parse_query("V(x, y) :- B:S(x, y)")))
    return pdms


@pytest.fixture
def fan_out_pdms():
    """A chain query whose last subgoal has several storage alternatives —
    the shape whose rewritings share a long common prefix."""
    pdms = PDMS()
    peer = pdms.add_peer("P")
    for relation in ("A1", "A2", "A3"):
        peer.add_relation(relation, ["x", "y"])
    pdms.add_storage_description(
        StorageDescription("P", "s_a1", parse_query("V(x, y) :- P:A1(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "s_a2", parse_query("V(x, y) :- P:A2(x, y)")))
    for i in range(3):
        pdms.add_storage_description(
            StorageDescription("P", f"s_a3_{i}", parse_query("V(x, y) :- P:A3(x, y)")))
    return pdms


FAN_OUT_QUERY = "Q(x0, x3) :- P:A1(x0, x1), P:A2(x1, x2), P:A3(x2, x3)"


def fan_out_data():
    data = {
        "s_a1": [(i, i + 1) for i in range(4)],
        "s_a2": [(i, i + 1) for i in range(1, 5)],
    }
    for i in range(3):
        data[f"s_a3_{i}"] = [(j, 100 + i) for j in range(2, 6)]
    return data


class TestUnionPlanSharing:
    def test_rewritings_share_prefix_fragments(self, fan_out_pdms):
        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        plan = compile_reformulation(result)
        answers = evaluate_plan(plan, fan_out_data())
        assert answers  # sanity: the chain joins do produce rows
        stats = plan.stats
        assert stats.rewritings == 3
        # Each rewriting references 3 atoms => 3 spine fragments; the
        # two-atom prefix (and its leaves) is shared by all three.
        assert stats.reused_references > 0
        assert stats.sharing_ratio >= 0.4

    def test_shared_engine_matches_other_engines(self, fan_out_pdms):
        data = fan_out_data()
        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        expected = evaluate_reformulation(result, data, engine="backtracking")
        assert evaluate_reformulation(result, data, engine="plan") == expected
        assert evaluate_reformulation(result, data, engine="shared") == expected

    def test_parallel_execution_matches_sequential(self, fan_out_pdms):
        data = fan_out_data()
        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        plan = compile_reformulation(result, data)
        sequential = evaluate_plan(plan, data)
        assert evaluate_plan(plan, data, max_workers=3) == sequential
        assert set(stream_plan_answers(plan, data, max_workers=2)) == sequential

    def test_compilation_is_incremental(self, fan_out_pdms):
        """A limit-satisfied consumer compiles only a prefix of the union."""
        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        plan = compile_reformulation(result)
        limited = evaluate_plan(plan, fan_out_data(), limit=1)
        assert len(limited) == 1
        assert plan.stats.rewritings == 1
        full = evaluate_plan(plan, fan_out_data())
        assert plan.stats.rewritings == 3
        assert limited <= full

    def test_plan_cached_on_result_survives_reuse(self, fan_out_pdms):
        from repro.pdms import ensure_plan

        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        plan = ensure_plan(result, fan_out_data())
        assert ensure_plan(result) is plan

    def test_mismatched_plan_is_rejected(self, fan_out_pdms, two_peer_pdms):
        other = reformulate(two_peer_pdms, parse_query("Q(x) :- A:R(x, y)"))
        wrong_plan = compile_reformulation(other)
        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        with pytest.raises(EvaluationError):
            evaluate_reformulation(
                result, fan_out_data(), engine="shared", plan=wrong_plan)

    def test_evaluate_plan_rejects_negative_limit(self, fan_out_pdms):
        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        plan = compile_reformulation(result)
        with pytest.raises(EvaluationError):
            evaluate_plan(plan, fan_out_data(), limit=-1)

    def test_comparisons_and_head_constants_survive_compilation(self):
        pdms = PDMS()
        peer = pdms.add_peer("A")
        peer.add_relation("R", ["x", "y"])
        pdms.add_storage_description(
            StorageDescription("A", "s", parse_query("V(x, y) :- A:R(x, y)")))
        data = {"s": [(1, 5), (2, 1), (3, 9)]}
        query = parse_query('Q(x, "tag") :- A:R(x, y), y > 2')
        result = reformulate(pdms, query)
        expected = evaluate_reformulation(result, data, engine="backtracking")
        assert expected == {(1, "tag"), (3, "tag")}
        assert evaluate_reformulation(result, data, engine="shared") == expected

    def test_workers_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARED_WORKERS", "3")
        assert shared_workers_from_env() == 3
        monkeypatch.setenv("REPRO_SHARED_WORKERS", "lots")
        with pytest.raises(EvaluationError):
            shared_workers_from_env()
        monkeypatch.setenv("REPRO_SHARED_WORKERS", "-1")
        with pytest.raises(EvaluationError):
            shared_workers_from_env()


class TestEngineRegistry:
    def test_default_engines_registered_in_order(self):
        assert registered_engines()[:4] == (
            "backtracking", "plan", "shared", "columnar")

    def test_validate_engine_message_enumerates_dynamically(self):
        with pytest.raises(EvaluationError) as excinfo:
            validate_engine("warp-drive")
        message = str(excinfo.value)
        for name in registered_engines():
            assert name in message

    def test_default_engine_misconfiguration_fails_fast(self, monkeypatch):
        from repro.pdms import default_engine

        monkeypatch.setenv("REPRO_DEFAULT_ENGINE", "warp-drive")
        with pytest.raises(EvaluationError) as excinfo:
            default_engine()
        message = str(excinfo.value)
        assert "REPRO_DEFAULT_ENGINE" in message
        for name in registered_engines():
            assert name in message

    def test_register_rejects_taken_name_unless_replaced(self):
        engine = get_engine("backtracking")
        with pytest.raises(EvaluationError):
            register_engine(PerRewritingEngine("backtracking", lambda q, d: set()))
        # Restore the original under replace=True (also exercises replace).
        assert register_engine(engine, replace=True) is engine
        assert get_engine("backtracking") is engine

    def test_custom_engine_round_trip(self, two_peer_pdms):
        calls = []

        def noisy(query, data):
            calls.append(query)
            from repro.datalog.evaluation import evaluate_query

            return evaluate_query(query, data)

        name = "test-noisy"
        register_engine(PerRewritingEngine(name, noisy), replace=True)
        try:
            answers = answer_query(
                two_peer_pdms, parse_query("Q(x) :- A:R(x, y)"),
                {"stored_s": [(1, 2)]}, engine=name)
            assert answers == {(1,)}
            assert calls
            assert name in registered_engines()
        finally:
            execution_module._ENGINE_REGISTRY.pop(name, None)
            execution_module.ENGINES = tuple(execution_module._ENGINE_REGISTRY)


class TestPeerFactSource:
    def test_probes_route_to_owning_instance(self):
        first = Instance.from_dict({"r1": [(1, 2), (3, 4)]})
        second = Instance.from_dict({"r2": [(5, 6)]})
        source = PeerFactSource({"A": first, "B": second})
        assert set(source.get_tuples("r1")) == {(1, 2), (3, 4)}
        assert set(source.get_tuples("r2")) == {(5, 6)}
        assert source.get_tuples("missing") == ()
        assert set(source.get_matching("r1", (1, object))) == set()
        from repro.datalog.indexing import WILDCARD

        assert set(source.get_matching("r1", (3, WILDCARD))) == {(3, 4)}
        assert source.get_matching("missing", (WILDCARD,)) == ()
        assert source.owner_count("r1") == 1
        assert source.owner_count("missing") == 0
        assert sorted(source.relations()) == ["r1", "r2"]

    def test_no_copy_probes_see_live_updates(self):
        instance = Instance.from_dict({"r": [(1,)]})
        source = PeerFactSource({"A": instance})
        assert set(source.get_tuples("r")) == {(1,)}
        instance.add("r", (2,))
        assert set(source.get_tuples("r")) == {(1,), (2,)}

    def test_shared_relation_fans_out_to_all_owners(self):
        from repro.datalog.indexing import WILDCARD

        first = Instance.from_dict({"shared": [(1, 2)]})
        second = Instance.from_dict({"shared": [(3, 4)]})
        source = PeerFactSource({"A": first, "B": second})
        assert source.owner_count("shared") == 2
        assert set(source.get_tuples("shared")) == {(1, 2), (3, 4)}
        assert set(source.get_matching("shared", (WILDCARD, 4))) == {(3, 4)}
        assert source.cardinality("shared") == 2

    def test_relation_created_after_construction_is_discovered(self):
        instance = Instance.from_dict({"r": [(1,)]})
        source = PeerFactSource({"A": instance})
        assert source.get_tuples("late") == ()
        instance.add("late", (7, 8))
        assert set(source.get_tuples("late")) == {(7, 8)}
        assert source.cardinality("late") == 1
        assert source.owner_count("late") == 1
        assert "late" in source.relations()
        from repro.datalog.indexing import WILDCARD

        assert set(source.get_matching("late", (7, WILDCARD))) == {(7, 8)}

    def test_late_relation_arity_clash_still_raises(self):
        first = Instance.from_dict({"r": [(1,)]})
        second = Instance.from_dict({"q": [(2,)]})
        source = PeerFactSource({"A": first, "B": second})
        first.add("late", (1, 2))
        second.add("late", (3,))
        with pytest.raises(MappingError):
            source.get_tuples("late")

    def test_second_owner_of_known_relation_becomes_visible(self):
        """A relation routed at construction gains a new owner later: the
        stamp-based refresh must pick it up (the half-live-view bug)."""
        first = Instance.from_dict({"s": [(1, 1)]})
        second = Instance.from_dict({"other": [(9,)]})
        source = PeerFactSource({"A": first, "B": second})
        assert set(source.get_tuples("s")) == {(1, 1)}
        second.add("s", (2, 2))
        assert set(source.get_tuples("s")) == {(1, 1), (2, 2)}
        assert source.owner_count("s") == 2
        # And a late clash on an already-routed relation raises, exactly
        # as a fresh construction would.
        third = Instance.from_dict({"t": [(5, 6)]})
        clashing = PeerFactSource({"A": first, "C": third})
        third.add("s", (7,))
        with pytest.raises(MappingError):
            clashing.get_tuples("s")

    def test_unrelated_instance_creation_does_not_rebuild_routes(self):
        """The global clock is only a fast gate: creations on instances a
        source does not own must not force a route re-derivation."""
        instance = Instance.from_dict({"r": [(1, 2)]})
        source = PeerFactSource({"A": instance})
        assert set(source.get_tuples("r")) == {(1, 2)}
        routes_before = source._routes
        Instance.from_dict({"unrelated": [(9,)]})  # ticks the global clock
        assert set(source.get_tuples("r")) == {(1, 2)}
        assert source._routes is routes_before  # no rebuild happened
        instance.add("mine", (3,))  # owned creation -> rebuild
        assert set(source.get_tuples("mine")) == {(3,)}
        assert source._routes is not routes_before

    def test_arity_clash_raises_naming_both_peers(self):
        first = Instance.from_dict({"s": [(1, 2)]})
        second = Instance.from_dict({"s": [(3,)]})
        with pytest.raises(MappingError) as excinfo:
            PeerFactSource({"A": first, "B": second})
        message = str(excinfo.value)
        assert "'A'" in message and "'B'" in message and "'s'" in message
        assert "arity 2" in message and "arity 1" in message

    def test_arity_clash_detected_eagerly_even_for_empty_overlap(self):
        schema_less = Instance()
        schema_less.add("t", (1, 2, 3))
        other = Instance.from_dict({"t": [(0, 0)]})
        with pytest.raises(MappingError):
            PeerFactSource({"X": schema_less, "Y": other})

    def test_answer_query_federates_per_peer_data(self, two_peer_pdms):
        per_peer = {"B": Instance.from_dict({"stored_s": [(1, 2), (2, 3)]})}
        query = parse_query("Q(x, y) :- A:R(x, y)")
        for engine in registered_engines()[:3]:
            assert answer_query(two_peer_pdms, query, per_peer, engine=engine) == {
                (1, 2), (2, 3)}


class TestBatchCanonicalCache:
    def test_isomorphic_queries_reformulate_once(self, two_peer_pdms, monkeypatch):
        calls = []
        original = execution_module.reformulate

        def counting(pdms, query, config=None):
            calls.append(query)
            return original(pdms, query, config=config)

        monkeypatch.setattr(execution_module, "reformulate", counting)
        queries = [
            parse_query("Q(x, y) :- A:R(x, y)"),
            parse_query("Ans(u, v) :- A:R(u, v)"),   # isomorphic to the first
            parse_query("Q(x) :- A:R(x, y)"),         # structurally different
        ]
        data = {"stored_s": [(1, 2), (2, 3)]}
        batch = answer_query_batch(two_peer_pdms, queries, data)
        assert len(calls) == 2
        assert batch == [answer_query(two_peer_pdms, q, data) for q in queries]

    def test_batch_per_peer_data_wrapped_once(self, two_peer_pdms, monkeypatch):
        built = []
        original = execution_module.PeerFactSource

        class Counting(original):
            def __init__(self, instances):
                built.append(1)
                super().__init__(instances)

        monkeypatch.setattr(execution_module, "PeerFactSource", Counting)
        per_peer = {"B": Instance.from_dict({"stored_s": [(1, 2)]})}
        answer_query_batch(
            two_peer_pdms,
            [parse_query("Q(x) :- A:R(x, y)"), parse_query("Q(y) :- A:R(x, y)")],
            per_peer,
        )
        assert built == [1]


class TestConcurrentConsumers:
    """Stress the lock-guarded memoized streams: every concurrent consumer
    must see every item exactly once (the lost-tail race regression)."""

    def test_lazy_seq_concurrent_consumers_see_all_items(self):
        import threading

        from repro.pdms.reformulation import _LazySeq

        for _ in range(20):
            seq = _LazySeq(iter(range(500)))
            results = {}

            def consume(slot):
                results[slot] = list(seq)

            threads = [
                threading.Thread(target=consume, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for slot, items in results.items():
                assert items == list(range(500)), f"consumer {slot} lost items"

    def test_lazy_seq_mid_stream_failure_is_not_silent_truncation(self):
        """A generator error must re-raise for *every* consumer — a failed
        enumeration may never masquerade as a complete shorter one."""
        from repro.pdms.reformulation import _LazySeq

        def broken():
            yield 1
            yield 2
            raise RuntimeError("boom")

        seq = _LazySeq(broken())
        with pytest.raises(RuntimeError):
            list(seq)
        # Later consumers still see the prefix, then the same error.
        consumed = []
        with pytest.raises(RuntimeError):
            for item in seq:
                consumed.append(item)
        assert consumed == [1, 2]

    def test_lazy_seq_interrupt_does_not_poison_with_stale_interrupt(self):
        """Ctrl-C mid-enumeration must not be cached and re-raised at every
        later consumer; they get a fresh, diagnosable error instead."""
        from repro.errors import ReformulationError
        from repro.pdms.reformulation import _LazySeq

        def interrupted():
            yield 1
            raise KeyboardInterrupt

        seq = _LazySeq(interrupted())
        with pytest.raises(KeyboardInterrupt):
            list(seq)
        with pytest.raises(ReformulationError, match="interrupted"):
            list(seq)

    def test_once_map_interrupt_not_cached_for_waiters(self):
        from repro.pdms.planning import _OnceMap

        memo = _OnceMap()

        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            memo.get_or_compute("k", interrupted)
        # Later consumers of the key get a fresh error, not a stale Ctrl-C.
        with pytest.raises(EvaluationError, match="interrupted"):
            memo.get_or_compute("k", lambda: None)

    def test_concurrent_plan_streams_agree(self, fan_out_pdms):
        import threading

        result = reformulate(fan_out_pdms, parse_query(FAN_OUT_QUERY))
        plan = compile_reformulation(result)
        data = fan_out_data()
        expected = evaluate_plan(plan, data)
        outcomes = {}

        def consume(slot):
            outcomes[slot] = set(stream_plan_answers(plan, data))

        threads = [threading.Thread(target=consume, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(answers == expected for answers in outcomes.values())


class TestServicePlanCache:
    def _service(self, fan_out_pdms):
        from repro.pdms import QueryService

        data = {
            "P": Instance.from_dict(
                {name: rows for name, rows in fan_out_data().items()}
            )
        }
        return QueryService(fan_out_pdms, data=data, engine="shared")

    def test_plans_compiled_once_and_reused(self, fan_out_pdms):
        service = self._service(fan_out_pdms)
        query = parse_query(FAN_OUT_QUERY)
        first = service.answer(query)
        second = service.answer(query)
        assert first == second
        assert service.stats.plans_compiled == 1
        assert service.plan_cache_size == 1
        # Non-plan engines neither compile nor consume plans.
        assert service.answer(query, engine="backtracking") == first
        assert service.stats.plans_compiled == 1

    def test_plans_invalidated_with_reformulation_entries(self, fan_out_pdms):
        service = self._service(fan_out_pdms)
        query = parse_query(FAN_OUT_QUERY)
        baseline = service.answer(query)
        assert service.plan_cache_size == 1
        # A new storage description for P:A3 provenance-affects the entry;
        # the compiled plan must go with it and answers must grow.
        service.add_storage_description(
            StorageDescription("P", "s_a3_extra",
                               parse_query("V(x, y) :- P:A3(x, y)")))
        assert service.plan_cache_size == 0
        assert service.stats.plan_invalidations == 1
        service.set_peer_data(
            "P",
            Instance.from_dict(
                {**{name: rows for name, rows in fan_out_data().items()},
                 "s_a3_extra": [(2, 999), (3, 999)]}
            ),
        )
        updated = service.answer(query)
        assert baseline < updated
        assert service.stats.plans_compiled == 2

    def test_clear_cache_drops_plans(self, fan_out_pdms):
        service = self._service(fan_out_pdms)
        service.answer(parse_query(FAN_OUT_QUERY))
        assert service.plan_cache_size == 1
        service.clear_cache()
        assert service.plan_cache_size == 0

    def test_shared_engine_through_service_matches_others(self, fan_out_pdms):
        service = self._service(fan_out_pdms)
        query = parse_query(FAN_OUT_QUERY)
        shared = service.answer(query)
        assert shared == service.answer(query, engine="backtracking")
        assert shared == service.answer(query, engine="plan")
        assert set(service.stream(query)) == shared


class _CountingSource:
    """A fact source that counts how often each relation is scanned."""

    def __init__(self, mapping):
        self._mapping = mapping
        self.scans = 0

    def get_tuples(self, predicate):
        self.scans += 1
        return self._mapping.get(predicate, ())


class TestPlannerAdditions:
    def test_cost_model_caches_cardinalities(self):
        source = _CountingSource({"r": [(1,), (2,)]})
        cost = CardinalityCostModel(source)
        assert cost.cardinality("r") == 2
        assert cost.cardinality("r") == 2
        assert source.scans == 1
        assert cost.cardinality("missing") == 0
        assert cost.scan_estimate("r", filters=1) == 1

    def test_cost_model_without_source(self):
        cost = CardinalityCostModel()
        assert cost.cardinality("anything") == 0

    def test_snapshot_model_drops_source_but_keeps_cardinalities(self):
        import gc
        import weakref

        instance = Instance.from_dict({"r": [(1, 2), (3, 4)], "s": [(5, 6)]})
        cost = CardinalityCostModel.snapshot(instance)
        ref = weakref.ref(instance)
        del instance
        gc.collect()
        assert ref() is None, "snapshot cost model retained the data source"
        assert cost.cardinality("r") == 2
        assert cost.cardinality("s") == 1
        assert cost.cardinality("unknown") == 0

    def test_cached_plan_does_not_retain_removed_peer_data(self, fan_out_pdms):
        """The reviewer's leak repro: a shared-engine service must not pin a
        removed peer's instance through a cached plan's cost model."""
        import gc
        import weakref

        from repro.pdms import QueryService

        victim = Instance.from_dict({"victim_rel": [(i, i) for i in range(50)]})
        service = QueryService(
            fan_out_pdms,
            data={"P": Instance.from_dict(dict(fan_out_data()))},
            engine="shared",
        )
        service.add_peer("Bystander", data=victim)
        service.answer(parse_query(FAN_OUT_QUERY))
        ref = weakref.ref(victim)
        del victim
        service.remove_peer("Bystander")
        gc.collect()
        assert ref() is None, "cached plan retained the removed peer's instance"
        # The surviving entry still answers correctly.
        assert service.answer(parse_query(FAN_OUT_QUERY))

    def test_materialize_nodes_share_work_through_memo(self):
        union = parse_query("Q(x) :- r(x, y)")
        other = parse_query("Q(x) :- r(x, y)")
        plan = compile_union(UnionQuery([union, other]), share_common=True)
        assert isinstance(plan, DistinctNode)
        materialized = [
            node for node in plan.child.children()
            if isinstance(node, MaterializeNode)
        ]
        assert len(materialized) == 2
        # Identical branches hash-cons to one key.
        assert len({node.key for node in materialized}) == 1
        source = _CountingSource({"r": [(1, 2), (3, 4)]})
        memo = {}
        table = execute_plan(plan, source, memo=memo)
        assert table.to_set() == {(1,), (3,)}
        assert source.scans == 1  # the duplicate branch came from the memo

    def test_materialize_keys_differ_for_different_branches(self):
        """Content-derived keys: a memo shared across plans must never
        serve one branch's table for a structurally different branch."""
        first = compile_union(
            UnionQuery([parse_query("Q(x) :- r(x, y)")]), share_common=True)
        second = compile_union(
            UnionQuery([parse_query("Q(x) :- r(y, x)")]), share_common=True)
        key_of = lambda plan: next(
            node.key for node in plan.child.children()
            if isinstance(node, MaterializeNode)
        )
        assert key_of(first) != key_of(second)
        memo = {}
        source = {"r": [(1, 2)]}
        assert execute_plan(first, source, memo=memo).to_set() == {(1,)}
        assert execute_plan(second, source, memo=memo).to_set() == {(2,)}

    def test_union_aligns_disjuncts_with_different_head_names(self):
        union = UnionQuery([
            parse_query("Q(x) :- r(x, y)"),
            parse_query("Q(b) :- s(a, b)"),
        ])
        plan = compile_union(union)
        table = execute_plan(plan, {"r": [(1, 2)], "s": [(3, 4)]})
        assert table.to_set() == {(1,), (4,)}

    def test_materialize_without_memo_is_transparent(self):
        node = MaterializeNode(
            compile_union(UnionQuery([parse_query("Q(x) :- r(x, y)")])), key="k"
        )
        table = execute_plan(node, {"r": [(1, 2)]})
        assert table.to_set() == {(1,)}

    def test_union_many_and_table_helpers(self):
        first = Table(("a",), [(1,), (2,)])
        second = Table(("a",), [(2,), (3,)])
        merged = union_many([first, second])
        assert merged.to_set() == {(1,), (2,), (3,)}
        assert merged.distinct() is merged
        assert union_many([], columns=("a",)).to_set() == set()
        with pytest.raises(EvaluationError):
            union_many([])
        with pytest.raises(EvaluationError):
            union_many([first, Table(("b",), [(1,)])])
        assert Table.empty(("x", "y")).to_set() == set()
