"""Unit tests for the positional hash-index layer and its fact sources."""

import pytest

from repro.database.instance import Instance
from repro.datalog.evaluation import _LayeredFacts, _MappingFacts, evaluate_query
from repro.datalog.indexing import (
    WILDCARD,
    PredicateIndex,
    SnapshotIndexedSource,
    ensure_indexed,
)
from repro.datalog.parser import parse_query
from repro.errors import EvaluationError


class TestPredicateIndex:
    def test_full_scan_with_all_wildcards(self):
        index = PredicateIndex([(1, 2), (3, 4)])
        assert set(index.matching((WILDCARD, WILDCARD))) == {(1, 2), (3, 4)}

    def test_single_position_probe(self):
        index = PredicateIndex([(1, 2), (1, 3), (2, 3)])
        assert set(index.matching((1, WILDCARD))) == {(1, 2), (1, 3)}
        assert set(index.matching((WILDCARD, 3))) == {(1, 3), (2, 3)}
        assert set(index.matching((9, WILDCARD))) == set()

    def test_multi_position_probe(self):
        index = PredicateIndex([(1, 2, 3), (1, 2, 4), (1, 5, 3)])
        assert set(index.matching((1, 2, WILDCARD))) == {(1, 2, 3), (1, 2, 4)}
        assert set(index.matching((1, WILDCARD, 3))) == {(1, 2, 3), (1, 5, 3)}

    def test_incremental_add_updates_built_indexes(self):
        index = PredicateIndex([(1, 2)])
        assert set(index.matching((1, WILDCARD))) == {(1, 2)}  # index now built
        assert index.add((1, 3))
        assert not index.add((1, 3))  # duplicate
        assert set(index.matching((1, WILDCARD))) == {(1, 2), (1, 3)}

    def test_discard_invalidates(self):
        index = PredicateIndex([(1, 2), (1, 3)])
        assert set(index.matching((1, WILDCARD))) == {(1, 2), (1, 3)}
        assert index.discard((1, 2))
        assert not index.discard((9, 9))
        assert set(index.matching((1, WILDCARD))) == {(1, 3)}

    def test_version_bumps_on_mutation(self):
        index = PredicateIndex()
        v0 = index.version
        index.add((1,))
        assert index.version > v0

    def test_ragged_relations_fail_probes_deterministically(self):
        # Any width mismatch between stored rows and the probing atom is
        # malformed data; probes raise regardless of which bucket the
        # probe would have hit (the seed's scanning evaluator raised on
        # every such row too).  rows() stays available for inspection.
        index = PredicateIndex([(1,), (1, 2)])
        with pytest.raises(ValueError):
            index.matching((1, 2))
        with pytest.raises(ValueError):
            index.matching((WILDCARD, WILDCARD))
        assert set(index.rows()) == {(1,), (1, 2)}
        uniform = PredicateIndex([(1, 2), (3, 4)])
        assert set(uniform.matching((WILDCARD, WILDCARD))) == {(1, 2), (3, 4)}

    def test_ragged_relation_surfaces_as_evaluation_error(self):
        # Narrow row relative to the probe:
        query = parse_query('Q(x) :- p(x, "b")')
        with pytest.raises(EvaluationError):
            evaluate_query(query, {"p": {("a",), ("c", "b")}})
        # Over-wide row that would hash into an unprobed bucket:
        query2 = parse_query("Q(x) :- R(x, 2)")
        with pytest.raises(EvaluationError):
            evaluate_query(query2, {"R": [(1, 2), (9, 9, 9)]})


class TestEnsureIndexed:
    def test_indexed_sources_pass_through(self):
        instance = Instance.from_dict({"R": [(1, 2)]})
        assert ensure_indexed(instance) is instance

    def test_plain_sources_get_snapshot_wrapped(self):
        class Plain:
            def get_tuples(self, predicate):
                return [(1, 2), (1, 3)] if predicate == "R" else []

        wrapped = ensure_indexed(Plain())
        assert isinstance(wrapped, SnapshotIndexedSource)
        assert set(wrapped.get_matching("R", (1, WILDCARD))) == {(1, 2), (1, 3)}
        assert set(wrapped.get_matching("Missing", (1,))) == set()


class TestInstanceIndexes:
    def test_get_matching(self):
        instance = Instance.from_dict({"E": [(1, 2), (2, 3), (2, 4)]})
        assert set(instance.get_matching("E", (2, WILDCARD))) == {(2, 3), (2, 4)}
        assert set(instance.get_matching("Nope", (1,))) == set()

    def test_indexes_follow_mutations(self):
        instance = Instance.from_dict({"E": [(1, 2)]})
        assert set(instance.get_matching("E", (1, WILDCARD))) == {(1, 2)}
        instance.add("E", (1, 5))
        assert set(instance.get_matching("E", (1, WILDCARD))) == {(1, 2), (1, 5)}
        instance.remove("E", (1, 2))
        assert set(instance.get_matching("E", (1, WILDCARD))) == {(1, 5)}
        instance.clear("E")
        assert set(instance.get_matching("E", (1, WILDCARD))) == set()

    def test_query_evaluation_uses_live_instance(self):
        instance = Instance.from_dict({"E": [(1, 2), (2, 3)]})
        query = parse_query("Q(x, z) :- E(x, y), E(y, z)")
        assert evaluate_query(query, instance) == {(1, 3)}
        instance.add("E", (3, 4))
        assert evaluate_query(query, instance) == {(1, 3), (2, 4)}


class TestLayeredFacts:
    def test_get_tuples_does_not_alias_derived_state(self):
        # Regression: the seed returned its internal derived set by
        # reference when the base relation was empty, so callers mutating
        # the result corrupted the fixpoint state.
        derived_index = PredicateIndex([(1,)])
        layered = _LayeredFacts(_MappingFacts({}), {"P": derived_index})
        result = layered.get_tuples("P")
        assert set(result) == {(1,)}
        assert result is not derived_index.rows()
        set(result)  # iterable, possibly frozen — mutating a copy is safe
        with pytest.raises(AttributeError):
            result.add((2,))  # frozenset: no mutation hook at all
        assert set(derived_index.rows()) == {(1,)}

    def test_merges_base_and_derived(self):
        layered = _LayeredFacts(_MappingFacts({"P": [(1,)]}), {"P": [(2,)]})
        assert set(layered.get_tuples("P")) == {(1,), (2,)}
        assert set(layered.get_matching("P", (WILDCARD,))) == {(1,), (2,)}
        assert set(layered.get_matching("P", (2,))) == {(2,)}

    def test_scan_cache_tracks_new_derivations(self):
        index = PredicateIndex([(1,)])
        layered = _LayeredFacts(_MappingFacts({"P": [(0,)]}), {"P": index})
        assert set(layered.get_tuples("P")) == {(0,), (1,)}
        index.add((2,))
        assert set(layered.get_tuples("P")) == {(0,), (1,), (2,)}


class TestArityChecking:
    def test_full_scan_arity_mismatch_still_raises(self):
        query = parse_query("Q(x) :- E(x)")
        with pytest.raises(EvaluationError):
            evaluate_query(query, {"E": [(1, 2)]})
