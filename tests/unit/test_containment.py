"""Unit tests for repro.datalog.containment."""

from repro.datalog.containment import (
    are_equivalent,
    containment_mapping,
    is_contained_in,
    remove_redundant_disjuncts,
    ucq_is_contained_in,
)
from repro.datalog.parser import parse_query
from repro.datalog.queries import UnionQuery


class TestCQContainment:
    def test_adding_atoms_shrinks_the_result(self):
        bigger = parse_query("Q(x, y) :- R(x, z), S(z, y)")
        smaller = parse_query("Q(x, y) :- R(x, z), S(z, y), R(x, w)")
        assert is_contained_in(smaller, bigger)
        # And in this particular case the extra atom is redundant:
        assert is_contained_in(bigger, smaller)

    def test_specialisation_by_constant(self):
        general = parse_query("Q(x) :- R(x, y)")
        specific = parse_query("Q(x) :- R(x, 5)")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_incomparable_queries(self):
        first = parse_query("Q(x) :- R(x, y)")
        second = parse_query("Q(x) :- S(x, y)")
        assert not is_contained_in(first, second)
        assert not is_contained_in(second, first)

    def test_head_must_map(self):
        first = parse_query("Q(x) :- R(x, y)")
        second = parse_query("Q(y) :- R(x, y)")
        assert not is_contained_in(first, second)

    def test_join_pattern_containment(self):
        path2 = parse_query("Q(x, y) :- E(x, z), E(z, y)")
        triangle = parse_query("Q(x, y) :- E(x, z), E(z, y), E(y, x)")
        assert is_contained_in(triangle, path2)
        assert not is_contained_in(path2, triangle)

    def test_containment_mapping_returned(self):
        container = parse_query("Q(x) :- R(x, y)")
        contained = parse_query("Q(a) :- R(a, b), S(b)")
        mapping = containment_mapping(container, contained)
        assert mapping is not None

    def test_equivalence_up_to_renaming(self):
        first = parse_query("Q(x, y) :- R(x, z), S(z, y)")
        second = parse_query("Q(a, b) :- R(a, c), S(c, b)")
        assert are_equivalent(first, second)


class TestComparisonContainment:
    def test_stricter_comparison_is_contained(self):
        broad = parse_query("Q(x) :- R(x, y), y < 10")
        narrow = parse_query("Q(x) :- R(x, y), y < 5")
        assert is_contained_in(narrow, broad)
        assert not is_contained_in(broad, narrow)

    def test_comparison_free_container(self):
        broad = parse_query("Q(x) :- R(x, y)")
        narrow = parse_query("Q(x) :- R(x, y), y < 5")
        assert is_contained_in(narrow, broad)
        assert not is_contained_in(broad, narrow)


class TestUCQContainment:
    def test_union_containment(self):
        union_small = [parse_query("Q(x) :- R(x, 1)")]
        union_big = [parse_query("Q(x) :- R(x, y)"), parse_query("Q(x) :- S(x)")]
        assert ucq_is_contained_in(union_small, union_big)
        assert not ucq_is_contained_in(union_big, union_small)

    def test_union_query_objects_accepted(self):
        small = UnionQuery([parse_query("Q(x) :- R(x, 1)")])
        big = UnionQuery([parse_query("Q(x) :- R(x, y)")])
        assert ucq_is_contained_in(small, big)


class TestRedundancyRemoval:
    def test_subsumed_disjunct_removed(self):
        general = parse_query("Q(x) :- R(x, y)")
        specific = parse_query("Q(x) :- R(x, 5)")
        kept = remove_redundant_disjuncts([specific, general])
        assert kept == [general]

    def test_keeps_incomparable_disjuncts(self):
        first = parse_query("Q(x) :- R(x, y)")
        second = parse_query("Q(x) :- S(x, y)")
        assert len(remove_redundant_disjuncts([first, second])) == 2

    def test_duplicates_collapse(self):
        first = parse_query("Q(x) :- R(x, y)")
        second = parse_query("Q(a) :- R(a, b)")
        assert len(remove_redundant_disjuncts([first, second])) == 1
