"""Unit tests for repro.datalog.constraints."""

from repro.datalog.atoms import ComparisonAtom
from repro.datalog.constraints import ConstraintSet
from repro.datalog.terms import Constant, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def c(left, op, right):
    return ComparisonAtom(left, op, right)


class TestSatisfiability:
    def test_empty_conjunction_is_satisfiable(self):
        assert ConstraintSet().is_satisfiable()
        assert ConstraintSet().is_trivially_true()

    def test_single_bound(self):
        assert ConstraintSet([c(X, "<", Constant(5))]).is_satisfiable()

    def test_contradictory_constant_bounds(self):
        assert not ConstraintSet([c(X, "<", Constant(5)), c(X, ">", Constant(7))]).is_satisfiable()

    def test_compatible_constant_bounds(self):
        assert ConstraintSet([c(X, ">", Constant(3)), c(X, "<", Constant(10))]).is_satisfiable()

    def test_strict_cycle(self):
        assert not ConstraintSet([c(X, "<", Y), c(Y, "<", X)]).is_satisfiable()

    def test_nonstrict_cycle_is_fine(self):
        assert ConstraintSet([c(X, "<=", Y), c(Y, "<=", X)]).is_satisfiable()

    def test_forced_equality_with_disequality(self):
        constraints = ConstraintSet([c(X, "<=", Y), c(Y, "<=", X), c(X, "!=", Y)])
        assert not constraints.is_satisfiable()

    def test_equality_chain_with_two_constants(self):
        constraints = ConstraintSet([c(X, "=", Constant(5)), c(X, "=", Constant(6))])
        assert not constraints.is_satisfiable()

    def test_equality_with_strict_order(self):
        assert not ConstraintSet([c(X, "=", Y), c(X, "<", Y)]).is_satisfiable()

    def test_transitive_constant_conflict(self):
        constraints = ConstraintSet(
            [c(X, "<", Y), c(Y, "<", Z), c(Z, "<", Constant(2)), c(X, ">", Constant(10))]
        )
        assert not constraints.is_satisfiable()

    def test_ground_comparisons(self):
        assert not ConstraintSet([c(Constant(3), "<", Constant(2))]).is_satisfiable()
        assert ConstraintSet([c(Constant(2), "<", Constant(3))]).is_satisfiable()

    def test_string_constants_ordered_lexicographically(self):
        assert ConstraintSet([c(X, ">", Constant("a")), c(X, "<", Constant("m"))]).is_satisfiable()
        assert not ConstraintSet([c(X, "<", Constant("a")), c(X, ">", Constant("m"))]).is_satisfiable()

    def test_disequality_of_distinct_constants_is_fine(self):
        assert ConstraintSet([c(Constant(1), "!=", Constant(2))]).is_satisfiable()
        assert not ConstraintSet([c(Constant(1), "!=", Constant(1))]).is_satisfiable()


class TestAlgebra:
    def test_conjoin_and_deduplicate(self):
        first = ConstraintSet([c(X, "<", Constant(5))])
        combined = first.conjoin([c(X, "<", Constant(5)), c(Y, ">", Constant(1))])
        assert len(combined) == 2

    def test_substitute(self):
        constraints = ConstraintSet([c(X, "<", Y)])
        result = constraints.substitute({Y: Constant(3)})
        assert result.atoms[0] == c(X, "<", Constant(3))

    def test_variables(self):
        constraints = ConstraintSet([c(X, "<", Y), c(Y, "<", Constant(1))])
        assert constraints.variables() == frozenset({X, Y})

    def test_str(self):
        assert str(ConstraintSet()) == "true"
        assert "<" in str(ConstraintSet([c(X, "<", Constant(5))]))


class TestProjection:
    def test_projection_keeps_visible_atoms(self):
        constraints = ConstraintSet([c(X, "<", Constant(5)), c(Y, ">", Constant(1))])
        projected = constraints.project([X])
        assert c(X, "<", Constant(5)) in projected.atoms
        assert all(Y not in atom.variable_set() for atom in projected.atoms)

    def test_projection_derives_transitive_bound(self):
        constraints = ConstraintSet([c(X, "<", Y), c(Y, "<", Constant(5))])
        projected = constraints.project([X])
        assert projected.implies(c(X, "<", Constant(5)))

    def test_projection_is_sound(self):
        # Whatever the projection keeps must be implied by the original.
        constraints = ConstraintSet([c(X, "<", Y), c(Y, "<=", Z), c(Z, "<", Constant(9))])
        projected = constraints.project([X, Z])
        for atom in projected:
            assert constraints.implies(atom)


class TestImplication:
    def test_implies_weaker_bound(self):
        constraints = ConstraintSet([c(X, "<", Constant(5))])
        assert constraints.implies(c(X, "<", Constant(6)))
        assert constraints.implies(c(X, "<=", Constant(5)))
        assert not constraints.implies(c(X, "<", Constant(4)))

    def test_implies_via_equality(self):
        constraints = ConstraintSet([c(X, "=", Y), c(Y, "<", Constant(3))])
        assert constraints.implies(c(X, "<", Constant(3)))

    def test_unsatisfiable_implies_everything(self):
        constraints = ConstraintSet([c(X, "<", Constant(1)), c(X, ">", Constant(2))])
        assert constraints.implies(c(Y, "=", Constant(42)))
