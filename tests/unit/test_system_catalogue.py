"""Unit tests for repro.pdms.system (PDMS object and PPL normalisation)."""

import pytest

from repro.datalog import parse_atom, parse_query
from repro.errors import MappingError, PDMSConfigurationError
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    Peer,
    StorageDescription,
    lav_style,
    replication,
)


def _small_pdms() -> PDMS:
    pdms = PDMS("small")
    a = pdms.add_peer("A")
    a.add_relation("R", ["x", "y"])
    b = pdms.add_peer("B")
    b.add_relation("S", ["x", "y"])
    return pdms


class TestPDMSBasics:
    def test_add_peer_by_name_and_lookup(self):
        pdms = PDMS()
        peer = pdms.add_peer("X")
        assert isinstance(peer, Peer)
        assert pdms.peer("X") is peer
        assert "X" in pdms
        with pytest.raises(PDMSConfigurationError):
            pdms.add_peer("X")
        with pytest.raises(PDMSConfigurationError):
            pdms.peer("Y")

    def test_relation_name_registries(self):
        pdms = _small_pdms()
        pdms.add_storage_description(
            StorageDescription("A", "stored_r", parse_query("V(x, y) :- A:R(x, y)")))
        assert pdms.is_peer_relation("A:R")
        assert not pdms.is_peer_relation("stored_r")
        assert pdms.is_stored_relation("stored_r")
        assert pdms.stored_relation_names() == frozenset({"stored_r"})

    def test_storage_description_requires_known_peer(self):
        pdms = _small_pdms()
        with pytest.raises(PDMSConfigurationError):
            pdms.add_storage_description(
                StorageDescription("Z", "s", parse_query("V(x) :- Z:R(x)")))

    def test_storage_description_autodeclares_stored_relation(self):
        pdms = _small_pdms()
        pdms.add_storage_description(
            StorageDescription("A", "s", parse_query("V(x, y) :- A:R(x, y)")))
        assert "s" in pdms.peer("A").stored_relation_names()

    def test_unsupported_mapping_type_rejected(self):
        pdms = _small_pdms()
        with pytest.raises(MappingError):
            pdms.add_peer_mapping("not a mapping")  # type: ignore[arg-type]

    def test_describe_and_repr(self):
        pdms = _small_pdms()
        assert "small" in pdms.describe()
        assert "2 peers" in repr(pdms)


class TestNormalisation:
    def test_definitional_mapping_kept_as_rule(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:S(x, y)"), name="d1"))
        catalogue = pdms.catalogue()
        assert len(catalogue.rules) == 1
        assert not catalogue.rules[0].synthetic
        assert catalogue.definitional_for("A:R")[0].origin == "d1"

    def test_single_atom_inclusion_needs_no_synthetic_predicate(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:S(x, y)"), parse_query("R(x, y) :- A:R(x, y)"), name="i1"))
        catalogue = pdms.catalogue()
        assert len(catalogue.rules) == 0
        assert len(catalogue.inclusions) == 1
        inclusion = catalogue.inclusions[0]
        assert inclusion.head_predicate == "B:S"
        assert inclusion.body_predicates() == frozenset({"A:R"})
        assert catalogue.inclusions_mentioning("A:R") == (inclusion,)

    def test_general_inclusion_produces_synthetic_pair(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(InclusionMapping(
            parse_query("L(x) :- B:S(x, y)"),
            parse_query("R(x) :- A:R(x, z)"), name="proj"))
        catalogue = pdms.catalogue()
        assert len(catalogue.inclusions) == 1
        assert len(catalogue.rules) == 1
        assert catalogue.rules[0].synthetic
        assert catalogue.rules[0].origin == "proj"
        synthetic_predicate = catalogue.inclusions[0].head_predicate
        assert synthetic_predicate.startswith("__ppl_")
        assert catalogue.rules[0].head_predicate == synthetic_predicate

    def test_equality_becomes_two_inclusions_sharing_origin(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(replication(
            parse_atom("A:R(x, y)"), parse_atom("B:S(x, y)"), name="rep"))
        catalogue = pdms.catalogue()
        assert len(catalogue.inclusions) == 2
        assert {i.origin for i in catalogue.inclusions} == {"rep"}
        heads = {i.head_predicate for i in catalogue.inclusions}
        assert heads == {"A:R", "B:S"}

    def test_storage_description_becomes_stored_inclusion(self):
        pdms = _small_pdms()
        pdms.add_storage_description(
            StorageDescription("A", "s", parse_query("V(x, y) :- A:R(x, y)"), name="st"))
        catalogue = pdms.catalogue()
        assert len(catalogue.inclusions) == 1
        assert catalogue.inclusions[0].stored
        assert catalogue.is_stored("s")

    def test_catalogue_cache_invalidation(self):
        pdms = _small_pdms()
        first = pdms.catalogue()
        pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:R(x, y) :- B:S(x, y)")))
        second = pdms.catalogue()
        assert first is not second
        assert len(second.rules) == 1
        assert pdms.catalogue() is second  # cached until the next change
