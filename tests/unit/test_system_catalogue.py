"""Unit tests for repro.pdms.system (PDMS object and PPL normalisation)."""

import pytest

from repro.datalog import parse_atom, parse_query
from repro.errors import MappingError, PDMSConfigurationError
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    Peer,
    StorageDescription,
    lav_style,
    replication,
)


def _small_pdms() -> PDMS:
    pdms = PDMS("small")
    a = pdms.add_peer("A")
    a.add_relation("R", ["x", "y"])
    b = pdms.add_peer("B")
    b.add_relation("S", ["x", "y"])
    return pdms


class TestPDMSBasics:
    def test_add_peer_by_name_and_lookup(self):
        pdms = PDMS()
        peer = pdms.add_peer("X")
        assert isinstance(peer, Peer)
        assert pdms.peer("X") is peer
        assert "X" in pdms
        with pytest.raises(PDMSConfigurationError):
            pdms.add_peer("X")
        with pytest.raises(PDMSConfigurationError):
            pdms.peer("Y")

    def test_relation_name_registries(self):
        pdms = _small_pdms()
        pdms.add_storage_description(
            StorageDescription("A", "stored_r", parse_query("V(x, y) :- A:R(x, y)")))
        assert pdms.is_peer_relation("A:R")
        assert not pdms.is_peer_relation("stored_r")
        assert pdms.is_stored_relation("stored_r")
        assert pdms.stored_relation_names() == frozenset({"stored_r"})

    def test_storage_description_requires_known_peer(self):
        pdms = _small_pdms()
        with pytest.raises(PDMSConfigurationError):
            pdms.add_storage_description(
                StorageDescription("Z", "s", parse_query("V(x) :- Z:R(x)")))

    def test_storage_description_autodeclares_stored_relation(self):
        pdms = _small_pdms()
        pdms.add_storage_description(
            StorageDescription("A", "s", parse_query("V(x, y) :- A:R(x, y)")))
        assert "s" in pdms.peer("A").stored_relation_names()

    def test_unsupported_mapping_type_rejected(self):
        pdms = _small_pdms()
        with pytest.raises(MappingError):
            pdms.add_peer_mapping("not a mapping")  # type: ignore[arg-type]

    def test_describe_and_repr(self):
        pdms = _small_pdms()
        assert "small" in pdms.describe()
        assert "2 peers" in repr(pdms)


class TestNormalisation:
    def test_definitional_mapping_kept_as_rule(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:S(x, y)"), name="d1"))
        catalogue = pdms.catalogue()
        assert len(catalogue.rules) == 1
        assert not catalogue.rules[0].synthetic
        assert catalogue.definitional_for("A:R")[0].origin == "d1"

    def test_single_atom_inclusion_needs_no_synthetic_predicate(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:S(x, y)"), parse_query("R(x, y) :- A:R(x, y)"), name="i1"))
        catalogue = pdms.catalogue()
        assert len(catalogue.rules) == 0
        assert len(catalogue.inclusions) == 1
        inclusion = catalogue.inclusions[0]
        assert inclusion.head_predicate == "B:S"
        assert inclusion.body_predicates() == frozenset({"A:R"})
        assert catalogue.inclusions_mentioning("A:R") == (inclusion,)

    def test_general_inclusion_produces_synthetic_pair(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(InclusionMapping(
            parse_query("L(x) :- B:S(x, y)"),
            parse_query("R(x) :- A:R(x, z)"), name="proj"))
        catalogue = pdms.catalogue()
        assert len(catalogue.inclusions) == 1
        assert len(catalogue.rules) == 1
        assert catalogue.rules[0].synthetic
        assert catalogue.rules[0].origin == "proj"
        synthetic_predicate = catalogue.inclusions[0].head_predicate
        assert synthetic_predicate.startswith("__ppl_")
        assert catalogue.rules[0].head_predicate == synthetic_predicate

    def test_equality_becomes_two_inclusions_sharing_origin(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(replication(
            parse_atom("A:R(x, y)"), parse_atom("B:S(x, y)"), name="rep"))
        catalogue = pdms.catalogue()
        assert len(catalogue.inclusions) == 2
        assert {i.origin for i in catalogue.inclusions} == {"rep"}
        heads = {i.head_predicate for i in catalogue.inclusions}
        assert heads == {"A:R", "B:S"}

    def test_storage_description_becomes_stored_inclusion(self):
        pdms = _small_pdms()
        pdms.add_storage_description(
            StorageDescription("A", "s", parse_query("V(x, y) :- A:R(x, y)"), name="st"))
        catalogue = pdms.catalogue()
        assert len(catalogue.inclusions) == 1
        assert catalogue.inclusions[0].stored
        assert catalogue.is_stored("s")

    def test_catalogue_updated_incrementally_on_mapping_add(self):
        pdms = _small_pdms()
        first = pdms.catalogue()
        assert len(first.rules) == 0
        pdms.add_peer_mapping(DefinitionalMapping(parse_query("A:R(x, y) :- B:S(x, y)")))
        second = pdms.catalogue()
        # The normalised catalogue is maintained in place, not rebuilt.
        assert first is second
        assert len(second.rules) == 1
        assert second.definitional_for("A:R")


def _catalogue_fingerprint(catalogue):
    """Order-insensitive content signature of a normalised catalogue."""
    return (
        frozenset((str(r.rule), r.origin, r.synthetic) for r in catalogue.rules),
        frozenset(
            (str(i.view.definition), i.origin, i.stored) for i in catalogue.inclusions
        ),
        catalogue.stored_relations,
        {p: len(rs) for p, rs in catalogue.rules_by_head.items() if rs},
        {p: len(is_) for p, is_ in catalogue.inclusions_by_body_predicate.items() if is_},
    )


class TestIncrementalCatalogue:
    """The incrementally maintained catalogue must equal a fresh rebuild."""

    def _mutations(self, pdms: PDMS):
        yield pdms.catalogue()  # force the initial build, then mutate
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:S(x, y)"), name="m1"))
        yield
        pdms.add_storage_description(StorageDescription(
            "B", "sb", parse_query("V(x, y) :- B:S(x, y)"), name="st1"))
        yield
        c = pdms.add_peer("C")
        c.add_relation("T", ["x", "y"])
        yield
        pdms.add_peer_mapping(InclusionMapping(
            parse_query("L(x) :- C:T(x, y)"),
            parse_query("R(x) :- A:R(x, z)"), name="m2"))
        yield
        pdms.add_peer_mapping(replication(
            parse_atom("C:T(x, y)"), parse_atom("B:S(x, y)"), name="m3"))
        yield
        pdms.add_storage_description(StorageDescription(
            "C", "sc", parse_query("V(x) :- C:T(x, x)"), name="st2"))
        yield
        pdms.remove_peer_mapping("m1")
        yield
        pdms.remove_peer("C")
        yield

    def test_incremental_equals_rebuild_after_every_mutation(self):
        pdms = _small_pdms()
        for _ in self._mutations(pdms):
            incremental = pdms.catalogue()
            rebuilt = pdms._normalise()
            assert _catalogue_fingerprint(incremental) == _catalogue_fingerprint(rebuilt)

    def test_version_bumps_on_every_mutation(self):
        pdms = _small_pdms()
        seen = [pdms.catalogue_version]
        for _ in self._mutations(pdms):
            seen.append(pdms.catalogue_version)
        assert seen == sorted(seen)
        assert len(set(seen[1:])) == len(seen[1:])


class TestPeerRemoval:
    def test_remove_unknown_peer_raises(self):
        pdms = _small_pdms()
        with pytest.raises(PDMSConfigurationError):
            pdms.remove_peer("nope")

    def test_remove_unknown_mapping_raises(self):
        pdms = _small_pdms()
        with pytest.raises(MappingError):
            pdms.remove_peer_mapping("nope")

    def test_remove_peer_drops_its_descriptions(self):
        pdms = _small_pdms()
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:S(x, y)"), name="ab"))
        pdms.add_storage_description(StorageDescription(
            "B", "sb", parse_query("V(x, y) :- B:S(x, y)"), name="store_b"))
        pdms.add_storage_description(StorageDescription(
            "A", "sa", parse_query("V(x, y) :- A:R(x, y)"), name="store_a"))
        change = pdms.remove_peer("B")
        assert "B" not in pdms
        assert change.removed_origins == {"ab", "store_b"}
        assert {d.name for d in pdms.storage_descriptions()} == {"store_a"}
        assert pdms.peer_mappings() == ()
        assert pdms.stored_relation_names() == frozenset({"sa"})

    def test_remove_peer_drops_descriptions_referencing_it(self):
        """A storage description at A querying B's relations dies with B."""
        pdms = _small_pdms()
        pdms.add_storage_description(StorageDescription(
            "A", "cross", parse_query("V(x) :- A:R(x, y), B:S(y, x)"), name="cross_d"))
        change = pdms.remove_peer("B")
        assert "cross_d" in change.removed_origins
        assert pdms.storage_descriptions() == ()

    def test_duplicate_description_names_rejected(self):
        """Names double as catalogue origins; collisions would desync the
        incremental catalogue from the registered descriptions."""
        pdms = _small_pdms()
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:S(x, y)"), name="dup"))
        with pytest.raises(MappingError):
            pdms.add_peer_mapping(DefinitionalMapping(
                parse_query("A:R(y, x) :- B:S(x, y)"), name="dup"))
        with pytest.raises(MappingError):
            pdms.add_storage_description(StorageDescription(
                "B", "sb", parse_query("V(x, y) :- B:S(x, y)"), name="dup"))
        # The name is reusable once its owner is removed.
        pdms.remove_peer_mapping("dup")
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:S(x, y)"), name="dup"))

    def test_remove_peer_undeclares_auto_declared_cross_peer_stored_relation(self):
        """A cross-peer description's auto-declared stored relation must not
        outlive the description as a phantom stored relation."""
        pdms = _small_pdms()
        pdms.add_storage_description(StorageDescription(
            "A", "cross", parse_query("V(x) :- A:R(x, y), B:S(y, x)"), name="cd"))
        assert pdms.is_stored_relation("cross")
        pdms.remove_peer("B")
        assert not pdms.is_stored_relation("cross")
        assert pdms.catalogue().stored_relations == frozenset()

    def test_remove_peer_keeps_explicitly_declared_stored_relations(self):
        pdms = _small_pdms()
        pdms.peer("A").add_stored_relation("explicit", ["x"])
        pdms.add_storage_description(StorageDescription(
            "A", "explicit", parse_query("V(y) :- B:S(y, y)"), name="ed"))
        pdms.remove_peer("B")
        # The description dies with B, but the user-declared relation stays.
        assert pdms.is_stored_relation("explicit")

    def test_change_log_reports_affected_predicates(self):
        pdms = _small_pdms()
        version = pdms.catalogue_version
        pdms.add_peer_mapping(DefinitionalMapping(
            parse_query("A:R(x, y) :- B:S(x, y)"), name="ab"))
        (change,) = pdms.changes_since(version)
        assert change.kind == "add-mapping"
        assert change.affected_predicates == frozenset({"A:R"})

    def test_inclusion_add_affects_right_hand_side_predicates(self):
        pdms = _small_pdms()
        version = pdms.catalogue_version
        pdms.add_peer_mapping(lav_style(
            parse_atom("B:S(x, y)"), parse_query("R(x, y) :- A:R(x, y)"), name="i"))
        (change,) = pdms.changes_since(version)
        assert change.affected_predicates == frozenset({"A:R"})
