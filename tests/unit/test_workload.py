"""Unit tests for the workload generator, data population, and scenarios."""

import pytest

from repro.errors import PDMSConfigurationError
from repro.pdms import analyze_pdms, reformulate
from repro.pdms.mappings import DefinitionalMapping, InclusionMapping
from repro.workload import (
    GeneratorParameters,
    add_earthquake_command_center,
    build_emergency_services,
    example_queries,
    generate_runs,
    generate_workload,
    populate_workload,
    sample_instance,
)


class TestGeneratorParameters:
    def test_validation(self):
        with pytest.raises(PDMSConfigurationError):
            GeneratorParameters(num_peers=2, diameter=5).validate()
        with pytest.raises(PDMSConfigurationError):
            GeneratorParameters(diameter=0).validate()
        with pytest.raises(PDMSConfigurationError):
            GeneratorParameters(definitional_ratio=1.5).validate()
        with pytest.raises(PDMSConfigurationError):
            GeneratorParameters(relations_per_peer=0).validate()
        GeneratorParameters().validate()


class TestGenerateWorkload:
    def test_peer_and_stratum_counts(self):
        params = GeneratorParameters(num_peers=10, diameter=3, seed=7)
        workload = generate_workload(params)
        assert len(workload.pdms.peers()) == 10
        assert workload.diameter == 3
        assert sum(len(s) for s in workload.strata) == 10 * params.relations_per_peer

    def test_reproducible_with_same_seed(self):
        params = GeneratorParameters(num_peers=12, diameter=3, seed=42)
        first = generate_workload(params)
        second = generate_workload(params)
        assert str(first.query) == str(second.query)
        assert len(first.pdms.peer_mappings()) == len(second.pdms.peer_mappings())

    def test_different_seeds_differ(self):
        first = generate_workload(GeneratorParameters(num_peers=24, diameter=4, seed=1))
        second = generate_workload(GeneratorParameters(num_peers=24, diameter=4, seed=2))
        assert str(first.query) != str(second.query) or (
            [str(m) for m in first.pdms.peer_mappings()]
            != [str(m) for m in second.pdms.peer_mappings()]
        )

    def test_definitional_ratio_zero_and_one(self):
        none_def = generate_workload(
            GeneratorParameters(num_peers=12, diameter=3, definitional_ratio=0.0, seed=1))
        all_def = generate_workload(
            GeneratorParameters(num_peers=12, diameter=3, definitional_ratio=1.0, seed=1))
        assert all(
            isinstance(m, InclusionMapping) for m in none_def.pdms.peer_mappings())
        assert all(
            isinstance(m, DefinitionalMapping) for m in all_def.pdms.peer_mappings())

    def test_bottom_stratum_has_storage(self):
        workload = generate_workload(GeneratorParameters(num_peers=9, diameter=3, seed=0))
        assert len(workload.stored_relations) == len(workload.strata[-1])
        assert workload.pdms.stored_relation_names() == frozenset(workload.stored_relations)

    def test_query_over_top_stratum(self):
        workload = generate_workload(GeneratorParameters(num_peers=9, diameter=3, seed=0))
        top = set(workload.strata[0])
        assert workload.query.predicates() <= top

    def test_query_is_reformulable(self):
        workload = generate_workload(
            GeneratorParameters(num_peers=12, diameter=3, definitional_ratio=0.25, seed=3))
        result = reformulate(workload.pdms, workload.query)
        assert result.statistics.total_nodes > 4

    def test_tree_grows_with_diameter(self):
        sizes = []
        for diameter in (2, 3, 4):
            workload = generate_workload(
                GeneratorParameters(num_peers=24, diameter=diameter, seed=11))
            sizes.append(
                reformulate(workload.pdms, workload.query).statistics.total_nodes)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_generate_runs_varies_seed(self):
        runs = generate_runs(GeneratorParameters(num_peers=9, diameter=3, seed=5), 3)
        assert len(runs) == 3
        assert {w.parameters.seed for w in runs} == {5, 6, 7}

    def test_generated_pdms_is_inclusion_acyclic_without_equalities(self):
        workload = generate_workload(
            GeneratorParameters(num_peers=12, diameter=3, definitional_ratio=0.0, seed=2))
        assert analyze_pdms(workload.pdms).inclusion_graph_acyclic


class TestDataPopulation:
    def test_populate_workload(self):
        workload = generate_workload(GeneratorParameters(num_peers=9, diameter=3, seed=0))
        instance = populate_workload(workload, rows_per_relation=5, domain_size=4)
        for stored in workload.stored_relations:
            assert 1 <= instance.cardinality(stored) <= 5
        assert all(
            value in range(4) for value in instance.active_domain())

    def test_population_is_reproducible(self):
        workload = generate_workload(GeneratorParameters(num_peers=9, diameter=3, seed=0))
        assert populate_workload(workload) == populate_workload(workload)


class TestEmergencyScenario:
    def test_peers_of_figure_1_present(self):
        pdms = build_emergency_services(include_ecc=False)
        names = {peer.name for peer in pdms.peers()}
        assert {"9DC", "H", "FS", "FH", "LH", "PFD", "VFD"} <= names
        assert "ECC" not in names

    def test_ecc_joins_ad_hoc(self):
        pdms = build_emergency_services(include_ecc=False)
        before = len(pdms.peer_mappings())
        add_earthquake_command_center(pdms)
        assert "ECC" in pdms
        assert len(pdms.peer_mappings()) > before

    def test_sample_instance_covers_every_stored_relation(self):
        pdms = build_emergency_services()
        data = sample_instance()
        missing = [
            name for name in pdms.stored_relation_names()
            if data.cardinality(name) == 0
        ]
        assert missing == []

    def test_example_queries_parse_against_known_relations(self):
        pdms = build_emergency_services()
        peer_relations = pdms.peer_relation_names()
        for query in example_queries().values():
            assert query.predicates() <= peer_relations


class TestChurnScenarios:
    def test_generation_is_deterministic(self):
        from repro.workload import ChurnParameters, generate_churn_scenario

        first = generate_churn_scenario(ChurnParameters(seed=7))
        second = generate_churn_scenario(ChurnParameters(seed=7))
        assert [e.kind for e in first.events] == [e.kind for e in second.events]
        assert [str(s.mapping) for s in first.satellites] == \
            [str(s.mapping) for s in second.satellites]

    def test_event_stream_is_well_formed(self):
        from repro.workload import ChurnParameters, generate_churn_scenario

        scenario = generate_churn_scenario(ChurnParameters(seed=3, num_events=50))
        joined = set()
        for event in scenario.events:
            if event.kind == "join":
                assert event.satellite.peer_name not in joined
                joined.add(event.satellite.peer_name)
            elif event.kind == "leave":
                assert event.satellite.peer_name in joined
                joined.remove(event.satellite.peer_name)
            else:
                assert event.query is not None

    def test_replay_with_verification(self):
        from repro.workload import ChurnParameters, generate_churn_scenario
        from repro.workload.generator import GeneratorParameters

        scenario = generate_churn_scenario(ChurnParameters(
            base=GeneratorParameters(num_peers=6, diameter=2, seed=1),
            num_events=20, seed=1))
        report = scenario.replay(verify=True)
        assert report.verified
        assert report.queries + report.joins + report.leaves == 20
        assert report.cache_hits + report.cache_misses >= report.queries

    def test_replay_is_repeatable_on_one_service(self):
        """Replay restores the base catalogue, so sustained-churn loops
        can drive the same service through the scenario repeatedly."""
        from repro.workload import ChurnParameters, generate_churn_scenario

        scenario = generate_churn_scenario(ChurnParameters(seed=0))
        service = scenario.fresh_service()
        first = scenario.replay(service=service, verify=True)
        second = scenario.replay(service=service, verify=True)
        assert second.queries == first.queries
        # Per-replay counters are deltas, not lifetime totals.
        assert second.invalidations <= first.invalidations + second.joins * 2
        assert second.hit_rate >= first.hit_rate  # warm cache on round two

    def test_replay_with_limit(self):
        from repro.workload import ChurnParameters, generate_churn_scenario

        scenario = generate_churn_scenario(ChurnParameters(seed=5, num_events=15))
        # replay() itself asserts every limited answer is a subset of the
        # fresh full answer set with the right cardinality.
        report = scenario.replay(verify=True, limit=2)
        assert report.verified
        assert report.answers_total <= 2 * report.queries
