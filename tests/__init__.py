"""Test package marker so ``tests.property`` relative imports resolve."""
