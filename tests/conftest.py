"""Shared fixtures: the paper's running examples as ready-made PDMSs."""

from __future__ import annotations

import pytest

from repro.datalog import parse_atom, parse_query
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    StorageDescription,
    lav_style,
)
from repro.workload import build_emergency_services, sample_instance


@pytest.fixture
def figure2_pdms() -> PDMS:
    """The Figure-2 reformulation example: firefighters, engines, skills.

    Descriptions r0–r3 of the paper:

    * r0 (definitional): ``SameEngine(f1,f2,e) :- AssignedTo(f1,e), AssignedTo(f2,e)``
    * r1 (inclusion):    ``SameSkill(f1,f2) ⊆ Skill(f1,s), Skill(f2,s)``
    * r2 (storage):      ``S1(f,e,s) ⊆ AssignedTo(f,e), Sched(f,st,s)``
    * r3 (storage, =):   ``S2(f1,f2) = SameSkill(f1,f2)``
    """
    pdms = PDMS("figure2")
    fs = pdms.add_peer("FS")
    fs.add_relation("SameEngine", ["f1", "f2", "e"])
    fs.add_relation("AssignedTo", ["f", "e"])
    fs.add_relation("Skill", ["f", "s"])
    fs.add_relation("SameSkill", ["f1", "f2"])
    fs.add_relation("Sched", ["f", "st", "end"])

    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        "FS:SameEngine(f1,f2,e) :- FS:AssignedTo(f1,e), FS:AssignedTo(f2,e)"), name="r0"))
    pdms.add_peer_mapping(lav_style(
        parse_atom("FS:SameSkill(f1,f2)"),
        parse_query("R(f1,f2) :- FS:Skill(f1,s), FS:Skill(f2,s)"), name="r1"))
    pdms.add_storage_description(StorageDescription(
        "FS", "S1",
        parse_query("V(f,e,s) :- FS:AssignedTo(f,e), FS:Sched(f,st,s)"),
        exact=False, name="r2"))
    pdms.add_storage_description(StorageDescription(
        "FS", "S2",
        parse_query("V(f1,f2) :- FS:SameSkill(f1,f2)"),
        exact=True, name="r3"))
    return pdms


@pytest.fixture
def figure2_query():
    """The Figure-2 query: firefighters with matching skills on the same engine."""
    return parse_query(
        "Q(f1,f2) :- FS:SameEngine(f1,f2,e), FS:Skill(f1,s), FS:Skill(f2,s)")


@pytest.fixture(scope="session")
def emergency_pdms() -> PDMS:
    """The full Figure-1 emergency-services scenario (with the ECC joined)."""
    return build_emergency_services(include_ecc=True)


@pytest.fixture(scope="session")
def emergency_data():
    """Sample stored-relation data for the emergency-services scenario."""
    return sample_instance()
