"""Property-based tests (Hypothesis); ``strategies`` is imported relatively."""
