"""Property-based tests for comparison-constraint conjunctions."""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import ComparisonAtom, compare_values
from repro.datalog.constraints import ConstraintSet
from repro.datalog.terms import Constant, Variable

from .strategies import comparison_atoms, constraint_sets

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _holds_under(atoms, assignment):
    """Evaluate a conjunction of comparisons under a variable assignment."""
    for atom in atoms:
        def value(term):
            if isinstance(term, Constant):
                return term.value
            return assignment[term]

        if not compare_values(value(atom.left), atom.op, value(atom.right)):
            return False
    return True


class TestSatisfiability:
    @given(constraints=constraint_sets())
    @settings(max_examples=120, **COMMON)
    def test_brute_force_agreement_on_small_domain(self, constraints):
        """Compare the symbolic satisfiability test against brute force.

        The generated constants all lie in {0,..,3}; over a *dense* order a
        conjunction is satisfiable whenever it has a model with rational
        values, so any model found over a slightly finer grid must also be
        accepted by the symbolic test, and if the symbolic test says
        "unsatisfiable" the brute force must not find a model.
        """
        variables = sorted(constraints.variables())
        grid = [0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5]
        brute_force_model = False
        if len(variables) <= 3:
            for values in itertools.product(grid, repeat=len(variables)):
                if _holds_under(constraints.atoms, dict(zip(variables, values))):
                    brute_force_model = True
                    break
            if brute_force_model:
                assert constraints.is_satisfiable()
            # Completeness of the brute force over the grid is not guaranteed
            # for every mix of operators, so the converse is only checked for
            # constraints without disequalities (where the grid is enough).
            elif not any(a.op == "!=" for a in constraints.atoms):
                if all(
                    isinstance(a.left, (Constant, Variable)) for a in constraints.atoms
                ):
                    pass  # the symbolic answer may legitimately be True (dense order)

    @given(constraints=constraint_sets(), extra=comparison_atoms())
    @settings(max_examples=100, **COMMON)
    def test_conjoining_never_repairs_unsatisfiability(self, constraints, extra):
        if not constraints.is_satisfiable():
            assert not constraints.conjoin([extra]).is_satisfiable()

    @given(constraints=constraint_sets())
    @settings(max_examples=100, **COMMON)
    def test_subsets_of_satisfiable_sets_are_satisfiable(self, constraints):
        if constraints.is_satisfiable():
            for index in range(len(constraints.atoms)):
                subset = ConstraintSet(
                    constraints.atoms[:index] + constraints.atoms[index + 1:])
                assert subset.is_satisfiable()

    @given(constraints=constraint_sets())
    @settings(max_examples=60, **COMMON)
    def test_implication_of_own_atoms(self, constraints):
        for atom in constraints.atoms:
            assert constraints.implies(atom)


class TestProjection:
    @given(constraints=constraint_sets(), keep=st.sets(st.sampled_from(
        [Variable("x"), Variable("y"), Variable("z")]), max_size=3))
    @settings(max_examples=80, **COMMON)
    def test_projection_is_implied_by_original(self, constraints, keep):
        projected = constraints.project(keep)
        for atom in projected:
            assert constraints.implies(atom)

    @given(constraints=constraint_sets(), keep=st.sets(st.sampled_from(
        [Variable("x"), Variable("y")]), max_size=2))
    @settings(max_examples=80, **COMMON)
    def test_projection_only_mentions_kept_variables(self, constraints, keep):
        projected = constraints.project(keep)
        assert projected.variables() <= set(keep)

    @given(constraints=constraint_sets())
    @settings(max_examples=60, **COMMON)
    def test_projection_preserves_satisfiability(self, constraints):
        if constraints.is_satisfiable():
            assert constraints.project(constraints.variables()).is_satisfiable()
            assert constraints.project([]).is_satisfiable()
