"""Property tests: the indexed join engine matches a naive reference evaluator.

The indexed engine (compiled join plans, hash-index probes, trail-based
bindings, semi-naive deltas) must return exactly the answer sets of the
textbook evaluation semantics.  The reference implementations here are
deliberately naive and independent of :mod:`repro.datalog.evaluation`'s
internals: nested-loop joins over explicit binding dictionaries, and a
naive (re-derive everything each round) fixpoint.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database.instance import Instance
from repro.datalog.atoms import Atom, ComparisonAtom, compare_values
from repro.datalog.evaluation import evaluate_program, evaluate_query
from repro.datalog.parser import parse_program
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable, is_variable

from .strategies import conjunctive_queries, instances


def reference_evaluate(query: ConjunctiveQuery, facts) -> set:
    """Naive nested-loop evaluation of a conjunctive query."""
    relational = [a for a in query.body if isinstance(a, Atom)]
    comparisons = [a for a in query.body if isinstance(a, ComparisonAtom)]

    bindings = [dict()]
    for atom in relational:
        extended = []
        for binding in bindings:
            for row in facts.get(atom.predicate, ()):
                candidate = dict(binding)
                ok = True
                for arg, value in zip(atom.args, row):
                    if is_variable(arg):
                        if arg in candidate and candidate[arg] != value:
                            ok = False
                            break
                        candidate[arg] = value
                    else:
                        assert isinstance(arg, Constant)
                        if arg.value != value:
                            ok = False
                            break
                if ok:
                    extended.append(candidate)
        bindings = extended

    def term_value(term, binding):
        return binding[term] if is_variable(term) else term.value

    answers = set()
    for binding in bindings:
        if all(
            compare_values(term_value(c.left, binding), c.op, term_value(c.right, binding))
            for c in comparisons
        ):
            answers.add(
                tuple(
                    binding[arg] if is_variable(arg) else arg.value
                    for arg in query.head.args
                )
            )
    return answers


def reference_fixpoint(program, facts) -> dict:
    """Naive datalog fixpoint: re-derive every rule until nothing changes."""
    idb = {p: set() for p in program.idb_predicates()}
    while True:
        merged = {name: set(rows) for name, rows in facts.items()}
        for name, rows in idb.items():
            merged.setdefault(name, set()).update(rows)
        changed = False
        for rule in program.rules:
            derived = reference_evaluate(
                ConjunctiveQuery(rule.head, rule.body), merged
            )
            fresh = derived - idb[rule.name]
            if fresh:
                idb[rule.name] |= fresh
                changed = True
        if not changed:
            return idb


@settings(max_examples=200, deadline=None)
@given(query=conjunctive_queries(with_comparisons=True), facts=instances())
def test_indexed_query_matches_reference(query, facts):
    assert evaluate_query(query, facts) == reference_evaluate(query, facts)


@settings(max_examples=100, deadline=None)
@given(query=conjunctive_queries(with_comparisons=True), facts=instances())
def test_instance_source_matches_mapping_source(query, facts):
    """Indexed Instance probes agree with the mapping adapter's answers."""
    assert evaluate_query(query, Instance.from_dict(facts)) == evaluate_query(
        query, facts
    )


@settings(max_examples=100, deadline=None)
@given(query=conjunctive_queries(with_comparisons=True), facts=instances())
def test_incremental_instance_indexes_stay_consistent(query, facts):
    """Probing, then inserting, then reprobing sees exactly the new state."""
    instance = Instance()
    rows = [(name, row) for name, rel in sorted(facts.items()) for row in sorted(rel)]
    half = len(rows) // 2
    for name, row in rows[:half]:
        instance.add(name, row)
    first = evaluate_query(query, instance)  # builds indexes on the half instance
    half_facts = {}
    for name, row in rows[:half]:
        half_facts.setdefault(name, set()).add(row)
    assert first == reference_evaluate(query, half_facts)
    for name, row in rows[half:]:
        instance.add(name, row)
    assert evaluate_query(query, instance) == reference_evaluate(query, facts)


#: Recursive program shapes exercised against random edge relations.  All
#: use r0/r1 as EDB so the instance strategy feeds them directly; P2 joins
#: through a constant, P3 is mutually recursive, P4 carries a comparison.
PROGRAMS = [
    parse_program(
        """
        T(x, y) :- r0(x, y)
        T(x, y) :- r0(x, z), T(z, y)
        """,
        query_predicate="T",
    ),
    parse_program(
        """
        T(x, y) :- r0(x, y)
        T(x, y) :- T(x, z), T(z, y)
        """,
        query_predicate="T",
    ),
    parse_program(
        """
        T(y) :- r0(0, y)
        T(y) :- T(x), r1(x, y)
        """,
        query_predicate="T",
    ),
    parse_program(
        """
        A(x, y) :- r0(x, y)
        B(x, y) :- A(x, z), r1(z, y)
        A(x, y) :- B(x, z), r0(z, y)
        """,
        query_predicate="A",
    ),
    parse_program(
        """
        T(x, y) :- r0(x, y), x < y
        T(x, y) :- r1(x, z), T(z, y)
        """,
        query_predicate="T",
    ),
]


@settings(max_examples=150, deadline=None)
@given(program=st.sampled_from(PROGRAMS), facts=instances())
def test_semi_naive_matches_naive_fixpoint(program, facts):
    assert evaluate_program(program, facts) == reference_fixpoint(program, facts)


@settings(max_examples=60, deadline=None)
@given(program=st.sampled_from(PROGRAMS), facts=instances())
def test_semi_naive_with_edb_facts_under_idb_name(program, facts):
    """EDB tuples stored under an IDB predicate name feed rule bodies."""
    augmented = dict(facts)
    for rule in program.rules:
        augmented[rule.name] = {
            tuple((start + offset) % 4 for offset in range(rule.arity))
            for start in (0, 2)
        }
    assert evaluate_program(program, augmented) == reference_fixpoint(
        program, augmented
    )
