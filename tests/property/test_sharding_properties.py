"""Property-based tests for sharded placement and the cache tier (ISSUE 8).

The central invariant, over random small PDMSs:

    sharded scatter-gather ≡ unsharded evaluation ≡ the chase oracle

at every point of an interleaved data-mutation stream and a catalogue
churn sequence (peer join/leave) — i.e. hash-partitioning stored
relations across worker shards, pruning scans to owning shards, and
re-splitting when data moves are all answer-invisible.  Plus the failure
semantics the tier promises: a cache peer dying mid-workload degrades to
compute-locally (answers stay correct, completeness stays honest), and a
dead *shard* yields a sound subset with ``complete=False``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pdms import (
    CacheTierClient,
    FragmentStore,
    LoopbackTransport,
    QueryService,
    RemotePeerFactSource,
    ServiceCluster,
    answer_query,
    auto_shard,
    certain_answers,
    combine_peer_instances,
)
from repro.pdms.distributed.cache_tier import CACHE_PEER

from .strategies import churn_specs, data_mutation_specs, pdms_specs
from .test_materialization_properties import _apply_mutation
from .test_service_properties import _join_satellite, build_pdms

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

SHARD_COUNTS = st.sampled_from([2, 3, 4])


def _sharded_answers(pdms, data, query, shards, cache_tier=None):
    """Answer ``query`` over ``data`` hash-partitioned across ``shards``.

    Builds the sharded world from the live per-peer instances (the split
    is memoized per data version, so unchanged peers keep their shard
    instances across calls) and serves one distributed answer through it.
    """
    shard_map, workers = auto_shard(data, shards)
    transport = LoopbackTransport(workers)
    source = RemotePeerFactSource(transport, shard_map=shard_map)
    try:
        service = QueryService(
            pdms, data=source, engine="distributed", cache_tier=cache_tier
        )
        return service.answer(query), source
    finally:
        source.close()


def _check_sharded_three_way(pdms, data, query, shards, cache_tier=None):
    combined = combine_peer_instances(data)
    fresh = answer_query(pdms, query, combined)
    oracle = certain_answers(pdms, query, combined)
    sharded, _ = _sharded_answers(pdms, data, query, shards, cache_tier)
    assert sharded == fresh, f"sharded != unsharded on {query}"
    assert sharded == oracle, f"sharded != oracle on {query}"


class TestShardedEquivalence:
    @given(spec=pdms_specs(), shards=SHARD_COUNTS)
    @settings(max_examples=25, **COMMON)
    def test_static_sharded_equals_unsharded_equals_oracle(self, spec, shards):
        pdms, data, queries = build_pdms(spec)
        for query in queries:
            _check_sharded_three_way(pdms, data, query, shards)

    @given(spec=pdms_specs(), ops=data_mutation_specs(), shards=SHARD_COUNTS)
    @settings(max_examples=20, **COMMON)
    def test_interleaved_mutation_preserves_equivalence(self, spec, ops, shards):
        """query → mutate → query; the re-split sees every write."""
        pdms, data, queries = build_pdms(spec)
        for query in queries:
            _check_sharded_three_way(pdms, data, query, shards)
        for op in ops:
            _apply_mutation(op, spec, data)
            for query in queries:
                _check_sharded_three_way(pdms, data, query, shards)

    @given(
        spec=pdms_specs(),
        churn=churn_specs(max_satellites=1),
        shards=SHARD_COUNTS,
    )
    @settings(max_examples=15, **COMMON)
    def test_peer_churn_preserves_equivalence(self, spec, churn, shards):
        """join peer → query → remove peer → query, sharded at every step."""
        pdms, data, queries = build_pdms(spec)
        bookkeeper = QueryService(pdms, data=data)
        for query in queries:
            _check_sharded_three_way(pdms, data, query, shards)
        for satellite in churn:
            extra_query = _join_satellite(
                bookkeeper, satellite, spec["top_relations"], data
            )
            checks = queries + ([extra_query] if extra_query else [])
            for query in checks:
                _check_sharded_three_way(pdms, data, query, shards)
            bookkeeper.remove_peer(satellite["peer"])
            data.pop(satellite["peer"], None)
            for query in queries:
                _check_sharded_three_way(pdms, data, query, shards)

    @given(spec=pdms_specs(), shards=SHARD_COUNTS)
    @settings(max_examples=15, **COMMON)
    def test_mutation_moves_the_composite_token(self, spec, shards):
        """Any write re-splits: repeated auto_shard is stable iff data is."""
        _, data, _ = build_pdms(spec)
        if not data:
            return
        _, first = auto_shard(data, shards)
        _, second = auto_shard(data, shards)
        assert all(first[name] is second[name] for name in first)
        peer, instance = next(iter(data.items()))
        relation = next(iter(instance.relations()), None)
        if relation is None:
            return
        instance.add(relation, (99, 99))
        _, third = auto_shard(data, shards)
        assert any(
            name.startswith(f"{peer}#") and first[name] is not third[name]
            for name in first
        )


class TestCacheTierChaos:
    def _tier(self):
        store = FragmentStore()
        transport = LoopbackTransport({CACHE_PEER: store})
        return store, transport, CacheTierClient(transport, max_failures=2)

    @given(spec=pdms_specs(), shards=SHARD_COUNTS)
    @settings(max_examples=15, **COMMON)
    def test_cache_peer_death_mid_workload_degrades_not_corrupts(
        self, spec, shards
    ):
        """Kill the cache peer between answers: answers stay correct and
        complete; only the tier counters show the fault."""
        pdms, data, queries = build_pdms(spec)
        if not queries:
            return
        _, tier_transport, client = self._tier()
        combined = combine_peer_instances(data)
        for index, query in enumerate(queries):
            oracle = certain_answers(pdms, query, combined)
            if index == 1:
                tier_transport.fail_peer(CACHE_PEER)
            answer, source = _sharded_answers(
                pdms, data, query, shards, cache_tier=client
            )
            assert answer == oracle
            assert source.complete  # a cache fault is not a data fault

    @given(spec=pdms_specs())
    @settings(max_examples=10, **COMMON)
    def test_flapping_cache_peer_is_harmless(self, spec):
        """Drop every tier scan RPC: every get degrades, answers hold.

        Puts ride the insert path and may still land; the point is that
        a tier whose reads always fail can never corrupt an answer.
        """
        pdms, data, queries = build_pdms(spec)
        store = FragmentStore()
        tier_transport = LoopbackTransport(
            {CACHE_PEER: store}, drop_every_n=1
        )
        client = CacheTierClient(tier_transport, max_failures=10_000)
        combined = combine_peer_instances(data)
        for query in queries:
            answer, _ = _sharded_answers(
                pdms, data, query, 2, cache_tier=client
            )
            assert answer == certain_answers(pdms, query, combined)

    @given(spec=pdms_specs(), shards=SHARD_COUNTS)
    @settings(max_examples=10, **COMMON)
    def test_degraded_counter_surfaces_through_service_stats(
        self, spec, shards
    ):
        pdms, data, queries = build_pdms(spec)
        if not queries:
            return
        _, tier_transport, client = self._tier()
        tier_transport.fail_peer(CACHE_PEER)
        shard_map, workers = auto_shard(data, shards)
        source = RemotePeerFactSource(
            LoopbackTransport(workers), shard_map=shard_map
        )
        try:
            service = QueryService(
                pdms, data=source, engine="distributed", cache_tier=client
            )
            for query in queries:
                service.answer(query)
            snapshot = service.stats_snapshot().as_dict()["fragments"]
            # Degradation is visible iff any fragment was tier-eligible;
            # either way no tier traffic may have landed.
            assert snapshot["tier_hits"] == 0
            assert snapshot["tier_puts"] == 0
        finally:
            source.close()


class TestShardFailureSoundness:
    @given(spec=pdms_specs(), shards=SHARD_COUNTS, victim=st.integers(0, 3))
    @settings(max_examples=15, **COMMON)
    def test_dead_shard_yields_sound_subset_with_honest_completeness(
        self, spec, shards, victim
    ):
        pdms, data, queries = build_pdms(spec)
        if not data or not queries:
            return
        shard_map, workers = auto_shard(data, shards)
        transport = LoopbackTransport(workers)
        dead = sorted(workers)[victim % len(workers)]
        transport.fail_peer(dead)
        cluster = ServiceCluster(
            pdms=pdms, transport=transport, shard_map=shard_map
        )
        combined = combine_peer_instances(data)
        with cluster:
            for query in queries:
                oracle = certain_answers(pdms, query, combined)
                answer = cluster.answer(query)
                assert answer.rows <= oracle, "lost shard must only lose rows"
                assert not answer.complete, (
                    "an unreachable shard must clear the completeness flag"
                )
