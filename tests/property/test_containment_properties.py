"""Property-based tests for query containment, minimization, and evaluation.

The central invariant tying them together: containment is sound with respect
to evaluation — whenever ``Q1 ⊆ Q2`` syntactically, then on every instance
``Q1``'s answers are a subset of ``Q2``'s.
"""

from hypothesis import HealthCheck, given, settings

from repro.datalog.containment import are_equivalent, is_contained_in
from repro.datalog.evaluation import evaluate_query
from repro.datalog.minimize import minimize

from .strategies import conjunctive_queries, instances

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestContainmentProperties:
    @given(query=conjunctive_queries())
    @settings(max_examples=60, **COMMON)
    def test_containment_is_reflexive(self, query):
        assert is_contained_in(query, query)

    @given(query=conjunctive_queries(), facts=instances())
    @settings(max_examples=60, **COMMON)
    def test_adding_an_atom_never_adds_answers(self, query, facts):
        extended = query.add_body_atoms([query.relational_body()[0]])
        assert is_contained_in(extended, query)
        assert evaluate_query(extended, facts) <= evaluate_query(query, facts)

    @given(first=conjunctive_queries(), second=conjunctive_queries(), facts=instances())
    @settings(max_examples=80, **COMMON)
    def test_containment_sound_wrt_evaluation(self, first, second, facts):
        if first.arity != second.arity:
            return
        if is_contained_in(first, second):
            assert evaluate_query(first, facts) <= evaluate_query(second, facts)

    @given(query=conjunctive_queries(with_comparisons=True), facts=instances())
    @settings(max_examples=60, **COMMON)
    def test_comparison_queries_still_sound(self, query, facts):
        relational_only = type(query)(query.head, query.relational_body())
        assert is_contained_in(query, relational_only)
        assert evaluate_query(query, facts) <= evaluate_query(relational_only, facts)


class TestMinimizationProperties:
    @given(query=conjunctive_queries())
    @settings(max_examples=60, **COMMON)
    def test_minimization_preserves_equivalence(self, query):
        minimized = minimize(query)
        assert are_equivalent(query, minimized)
        assert len(minimized.relational_body()) <= len(query.relational_body())

    @given(query=conjunctive_queries(), facts=instances())
    @settings(max_examples=40, **COMMON)
    def test_minimization_preserves_answers(self, query, facts):
        assert evaluate_query(query, facts) == evaluate_query(minimize(query), facts)

    @given(query=conjunctive_queries())
    @settings(max_examples=40, **COMMON)
    def test_minimization_is_idempotent(self, query):
        once = minimize(query)
        twice = minimize(once)
        assert len(once.relational_body()) == len(twice.relational_body())
