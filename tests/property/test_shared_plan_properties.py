"""Property tests for the shared union-plan engine (ISSUE 3).

The central invariant, over random small PDMSs from
:mod:`tests.property.strategies`:

    ``backtracking`` ≡ ``plan`` ≡ ``shared`` ≡ ``columnar``
    (sequential, thread-parallel, *and* process-parallel)

i.e. compiling the union of rewritings into a common-subplan DAG — and
evaluating its fragments on a thread pool — never changes the answer set,
and the federated :class:`~repro.pdms.execution.PeerFactSource` is
indistinguishable from the combine-then-evaluate path.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pdms import (
    PeerFactSource,
    combine_peer_instances,
    compile_reformulation,
    evaluate_plan,
    evaluate_reformulation,
    reformulate,
)

from .strategies import pdms_specs
from .test_service_properties import build_pdms

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestEngineEquivalence:
    @given(spec=pdms_specs())
    @settings(max_examples=40, **COMMON)
    def test_engines_agree(self, spec):
        pdms, data, queries = build_pdms(spec)
        combined = combine_peer_instances(data)
        for query in queries:
            result = reformulate(pdms, query)
            backtracking = evaluate_reformulation(
                result, combined, engine="backtracking")
            for engine in ("plan", "shared", "columnar"):
                assert evaluate_reformulation(
                    result, combined, engine=engine) == backtracking

    @given(spec=pdms_specs())
    @settings(max_examples=25, **COMMON)
    def test_columnar_and_row_fragments_agree(self, spec):
        """The batch-kernel fragment path is value-identical to the row
        path over the same compiled plan."""
        pdms, data, queries = build_pdms(spec)
        combined = combine_peer_instances(data)
        for query in queries:
            result = reformulate(pdms, query)
            plan = compile_reformulation(result, combined)
            assert evaluate_plan(plan, combined, columnar=True) == \
                evaluate_plan(plan, combined, columnar=False)

    @given(spec=pdms_specs())
    @settings(max_examples=25, **COMMON)
    def test_parallel_plan_execution_agrees_with_sequential(self, spec):
        pdms, data, queries = build_pdms(spec)
        combined = combine_peer_instances(data)
        for query in queries:
            result = reformulate(pdms, query)
            plan = compile_reformulation(result, combined)
            sequential = evaluate_plan(plan, combined)
            parallel = evaluate_plan(plan, combined, max_workers=2)
            assert parallel == sequential

    @given(spec=pdms_specs())
    @settings(max_examples=10, **COMMON)
    def test_process_pool_execution_agrees_with_sequential(self, spec):
        """The process-pool backend — scans parent-side, joins shipped to
        worker processes — returns the same answer set."""
        pdms, data, queries = build_pdms(spec)
        combined = combine_peer_instances(data)
        for query in queries:
            result = reformulate(pdms, query)
            plan = compile_reformulation(result, combined)
            sequential = evaluate_plan(plan, combined)
            processed = evaluate_plan(
                plan, combined, max_workers=2, executor="process")
            assert processed == sequential
            assert sequential == evaluate_reformulation(
                result, combined, engine="backtracking")

    @given(spec=pdms_specs())
    @settings(max_examples=25, **COMMON)
    def test_federated_source_matches_combined_copy(self, spec):
        pdms, data, queries = build_pdms(spec)
        combined = combine_peer_instances(data)
        federated = PeerFactSource(data)
        for query in queries:
            result = reformulate(pdms, query)
            for engine in ("backtracking", "plan", "shared", "columnar"):
                assert evaluate_reformulation(result, federated, engine=engine) == \
                    evaluate_reformulation(result, combined, engine=engine)

    @given(spec=pdms_specs(), limit=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, **COMMON)
    def test_shared_engine_limits_are_subsets(self, spec, limit):
        pdms, data, queries = build_pdms(spec)
        federated = PeerFactSource(data)
        for query in queries:
            result = reformulate(pdms, query)
            full = evaluate_reformulation(result, federated, engine="shared")
            limited = evaluate_reformulation(
                result, federated, engine="shared", limit=limit)
            assert limited <= full
            assert len(limited) == min(limit, len(full))
