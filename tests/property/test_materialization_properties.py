"""Property tests for cross-call fragment materialization (ISSUE 4).

The central invariant, over random small PDMSs with random interleavings
of queries, per-peer data inserts/deletes, and peer join/leave:

    answers through a warm :class:`~repro.pdms.materialization.FragmentCache`
    ≡ a cold ``answer_query`` ≡ the chase oracle (``certain_answers``)

at *every* point of the interleaving — i.e. version-keyed fragment tables
with admission/eviction are indistinguishable from evaluating from
scratch.  A second family pins the bushy compiler: bushy plans, left-deep
plans, and the backtracking evaluator agree, warm or cold.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pdms import (
    AdmissionPolicy,
    FragmentCache,
    PeerFactSource,
    QueryService,
    combine_peer_instances,
    compile_reformulation,
    evaluate_plan,
    evaluate_reformulation,
    reformulate,
)

from .strategies import churn_specs, data_mutation_specs, pdms_specs
from .test_service_properties import _check_three_way, _join_satellite, build_pdms

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

ENGINES = ("backtracking", "plan", "shared", "columnar")


def _apply_mutation(op, spec, data):
    """Apply one insert/delete op to the spec'd bottom peer's instance."""
    bottom = spec["bottom"]
    entry = bottom[op["bottom_index"] % len(bottom)]
    instance = data[entry["peer"]]
    relation = entry["stored"]
    if op["kind"] == "insert":
        instance.add(relation, op["row"])
    elif tuple(op["row"]) in set(instance.get_tuples(relation)):
        instance.remove(relation, op["row"])


class TestCachedEqualsFresh:
    @given(spec=pdms_specs(), ops=data_mutation_specs(),
           engine=st.sampled_from(ENGINES))
    @settings(max_examples=30, **COMMON)
    def test_interleaved_data_mutation(self, spec, ops, engine):
        """query → mutate → query, warm cache vs fresh vs oracle throughout."""
        pdms, data, queries = build_pdms(spec)
        service = QueryService(
            pdms, data=data, engine=engine,
            fragment_cache=FragmentCache(max_bytes=1 << 20),
        )
        for query in queries:
            _check_three_way(service, query, data)
        for op in ops:
            _apply_mutation(op, spec, data)
            for query in queries:
                _check_three_way(service, query, data)

    @given(spec=pdms_specs(), churn=churn_specs(max_satellites=1),
           ops=data_mutation_specs(max_ops=2))
    @settings(max_examples=20, **COMMON)
    def test_interleaved_catalogue_and_data_churn(self, spec, churn, ops):
        """Mutations interleaved with peer join/leave keep all three equal."""
        pdms, data, queries = build_pdms(spec)
        service = QueryService(
            pdms, data=data, engine="shared",
            fragment_cache=FragmentCache(max_bytes=1 << 20),
        )
        for query in queries:
            _check_three_way(service, query, data)
        for satellite in churn:
            extra_query = _join_satellite(
                service, satellite, spec["top_relations"], data)
            for op in ops:
                _apply_mutation(op, spec, data)
                for query in queries:
                    _check_three_way(service, query, data)
            if extra_query is not None:
                _check_three_way(service, extra_query, data)
            service.remove_peer(satellite["peer"])
            data.pop(satellite["peer"], None)
            for query in queries:
                _check_three_way(service, query, data)

    @given(spec=pdms_specs(), ops=data_mutation_specs())
    @settings(max_examples=15, **COMMON)
    def test_tight_budget_and_picky_admission_stay_correct(self, spec, ops):
        """Evicting and rejecting aggressively never changes answers."""
        pdms, data, queries = build_pdms(spec)
        cache = FragmentCache(
            max_bytes=512,
            policy=AdmissionPolicy(min_misses=2, max_entry_fraction=1.0),
        )
        service = QueryService(
            pdms, data=data, engine="shared", fragment_cache=cache)
        for _ in range(2):
            for query in queries:
                _check_three_way(service, query, data)
        for op in ops:
            _apply_mutation(op, spec, data)
            for query in queries:
                _check_three_way(service, query, data)


class TestBushyEquivalence:
    @given(spec=pdms_specs())
    @settings(max_examples=25, **COMMON)
    def test_bushy_equals_left_deep_equals_backtracking(self, spec):
        pdms, data, queries = build_pdms(spec)
        source = PeerFactSource(data)
        combined = combine_peer_instances(data)
        for query in queries:
            result = reformulate(pdms, query)
            expected = evaluate_reformulation(
                result, combined, engine="backtracking")
            bushy = compile_reformulation(result, source, bushy=True)
            left = compile_reformulation(result, source, bushy=False)
            assert evaluate_plan(bushy, source) == expected
            assert evaluate_plan(left, source) == expected

    @given(spec=pdms_specs(), ops=data_mutation_specs(max_ops=2))
    @settings(max_examples=15, **COMMON)
    def test_warm_plan_with_cache_tracks_mutating_data(self, spec, ops):
        """One compiled plan + one cache, reused across data mutations."""
        pdms, data, queries = build_pdms(spec)
        source = PeerFactSource(data)
        cache = FragmentCache(max_bytes=1 << 20)
        plans = [
            (query, compile_reformulation(reformulate(pdms, query), source))
            for query in queries
        ]
        for _ in range(2):
            for query, plan in plans:
                fresh = evaluate_plan(plan, source)
                assert evaluate_plan(plan, source, cache=cache) == fresh
        for op in ops:
            _apply_mutation(op, spec, data)
            for query, plan in plans:
                fresh = evaluate_plan(plan, source)
                assert evaluate_plan(plan, source, cache=cache) == fresh
