"""Hypothesis strategies shared by the property-based tests.

The strategies generate small conjunctive queries, database instances,
comparison-constraint conjunctions, and LAV view sets over a tiny fixed
vocabulary.  Keeping the vocabulary small makes joins (and therefore
interesting interactions) likely while keeping individual examples cheap.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable
from repro.errors import MalformedQueryError

#: Binary relation names used by generated queries and instances.
RELATIONS = ("r0", "r1", "r2")
#: Variable pool.
VARIABLES = tuple(Variable(name) for name in ("x", "y", "z", "w", "v"))
#: Constant pool (small integers keep joins likely).
CONSTANTS = tuple(Constant(value) for value in range(4))


terms = st.one_of(st.sampled_from(VARIABLES), st.sampled_from(CONSTANTS))
variables = st.sampled_from(VARIABLES)


@st.composite
def relational_atoms(draw) -> Atom:
    """A binary relational atom over the fixed vocabulary."""
    predicate = draw(st.sampled_from(RELATIONS))
    return Atom(predicate, [draw(terms), draw(terms)])


@st.composite
def comparison_atoms(draw) -> ComparisonAtom:
    """A comparison atom over the variable/constant pools."""
    operator = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    left = draw(st.one_of(variables, st.sampled_from(CONSTANTS)))
    right = draw(st.one_of(variables, st.sampled_from(CONSTANTS)))
    return ComparisonAtom(left, operator, right)


@st.composite
def conjunctive_queries(draw, max_body=4, with_comparisons=False) -> ConjunctiveQuery:
    """A safe conjunctive query with up to ``max_body`` relational atoms."""
    body = draw(st.lists(relational_atoms(), min_size=1, max_size=max_body))
    body_variables = sorted({v for atom in body for v in atom.variable_set()})
    if body_variables:
        head_size = draw(st.integers(min_value=1, max_value=min(2, len(body_variables))))
        head_vars = draw(
            st.lists(
                st.sampled_from(body_variables),
                min_size=head_size,
                max_size=head_size,
                unique=True,
            )
        )
    else:
        head_vars = []
    full_body = list(body)
    if with_comparisons and body_variables:
        candidate = draw(st.lists(comparison_atoms(), min_size=0, max_size=2))
        for comparison in candidate:
            if all(v in body_variables for v in comparison.variables()):
                full_body.append(comparison)
    try:
        return ConjunctiveQuery(Atom("Q", head_vars or [body[0].args[0]]), full_body)
    except MalformedQueryError:
        # Head constant fallback: always safe.
        return ConjunctiveQuery(Atom("Q", [Constant(0)]), body)


@st.composite
def instances(draw, max_rows=8):
    """A small database instance over the fixed binary vocabulary."""
    facts = {}
    for relation in RELATIONS:
        rows = draw(
            st.lists(
                st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=0,
                max_size=max_rows,
            )
        )
        facts[relation] = set(rows)
    return facts


@st.composite
def constraint_sets(draw, max_size=5):
    """A conjunction of up to ``max_size`` comparison atoms."""
    from repro.datalog.constraints import ConstraintSet

    return ConstraintSet(draw(st.lists(comparison_atoms(), min_size=0, max_size=max_size)))


# ---------------------------------------------------------------------------
# Random small PDMSs plus catalogue-churn sequences (service-layer tests)
# ---------------------------------------------------------------------------

#: Rows for generated stored relations (small domain keeps joins likely).
pdms_rows = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=0, max_size=5
)


@st.composite
def pdms_specs(draw):
    """A *spec* (pure data) for a small two-tier tractable PDMS.

    Bottom peers ``B{i}`` store their single binary relation verbatim;
    top-peer relations ``T:t{j}`` are wired to the bottom by definitional
    chains (GAV) and/or single-atom inclusions (LAV) — the acyclic
    fragment of Theorem 3.2, on which the reformulation algorithm is
    complete and the chase oracle exact.  Returned as a dict so each test
    example can build as many fresh :class:`~repro.pdms.system.PDMS`
    objects as it needs.
    """
    num_bottom = draw(st.integers(min_value=1, max_value=2))
    bottom = []
    for i in range(num_bottom):
        bottom.append({
            "peer": f"B{i}",
            "relation": f"B{i}:r{i}",
            "stored": f"s{i}",
            "rows": draw(pdms_rows),
        })
    bottom_relations = [entry["relation"] for entry in bottom]

    num_top = draw(st.integers(min_value=1, max_value=2))
    top_relations = [f"T:t{j}" for j in range(num_top)]
    mappings = []
    for j, top_relation in enumerate(top_relations):
        for k in range(draw(st.integers(min_value=1, max_value=2))):
            kind = draw(st.sampled_from(["definitional", "inclusion"]))
            if kind == "definitional":
                chain = draw(st.lists(
                    st.sampled_from(bottom_relations), min_size=1, max_size=2))
                mappings.append({
                    "kind": kind, "name": f"def_{j}_{k}",
                    "head": top_relation, "chain": chain,
                })
            else:
                mappings.append({
                    "kind": kind, "name": f"incl_{j}_{k}",
                    "left": draw(st.sampled_from(bottom_relations)),
                    "right": top_relation,
                })

    queries = draw(st.lists(
        st.lists(st.sampled_from(top_relations), min_size=1, max_size=2),
        min_size=1, max_size=3,
    ))
    return {
        "bottom": bottom,
        "top_relations": top_relations,
        "mappings": mappings,
        "queries": queries,
    }


@st.composite
def churn_specs(draw, max_satellites=2):
    """Satellite peers that join/leave a spec'd PDMS mid-query-stream."""
    satellites = []
    for i in range(draw(st.integers(min_value=1, max_value=max_satellites))):
        satellites.append({
            "peer": f"SAT{i}",
            "relation": f"SAT{i}:x{i}",
            "role": draw(st.sampled_from(["provider", "consumer"])),
            "target_index": draw(st.integers(min_value=0, max_value=7)),
            "rows": draw(pdms_rows),
        })
    return satellites


@st.composite
def data_mutation_specs(draw, max_ops=4):
    """Per-peer data writes interleaved with the query stream.

    Each op targets one of the spec'd bottom peers (by index, wrapped) and
    either inserts a row into its stored relation or deletes one (the
    delete names a candidate row; appliers skip it when absent, so delete
    ops stay meaningful on any generated instance).
    """
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        ops.append({
            "kind": draw(st.sampled_from(["insert", "delete"])),
            "bottom_index": draw(st.integers(min_value=0, max_value=3)),
            "row": draw(st.tuples(st.integers(0, 3), st.integers(0, 3))),
        })
    return ops


@st.composite
def lav_views(draw, max_views=3):
    """A set of LAV views over the fixed vocabulary, with distinct names."""
    from repro.integration.views import View, ViewSet

    count = draw(st.integers(min_value=1, max_value=max_views))
    views = []
    for index in range(count):
        body = draw(st.lists(relational_atoms(), min_size=1, max_size=2))
        body_variables = sorted({v for atom in body for v in atom.variable_set()})
        if body_variables:
            exported = draw(
                st.lists(
                    st.sampled_from(body_variables),
                    min_size=1,
                    max_size=len(body_variables),
                    unique=True,
                )
            )
        else:
            exported = [Constant(0)]
        views.append(View(ConjunctiveQuery(Atom(f"view{index}", exported), body)))
    return ViewSet(views)
