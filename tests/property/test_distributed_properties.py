"""Property tests for the distributed peer runtime (ISSUE 5).

Two families over random small PDMSs:

* **Fault-free equivalence** — the ``"distributed"`` engine (loopback
  transport) agrees with ``"backtracking"``, ``"plan"``, ``"shared"``,
  and the chase oracle on every query, including under interleaved peer
  join/leave and data mutation, and always reports ``complete=True``.
* **Chaos soundness** — with injected peer failures or dropped scan RPCs,
  every distributed answer is a *subset* of the chase oracle's, and
  whenever anything was actually lost the ``completeness`` flag is
  ``False``; restoring the peers restores exact answers (the fragment
  cache never launders a degraded partial into a complete one).
* **Tail-latency chaos** (ISSUE 9) — under the retry/hedge policy,
  transient dropped RPCs are *healed*: answers equal the chase oracle
  exactly and ``complete`` is truthfully re-earned; hedged scans against
  replicated placements stay exact; and an expired deadline budget
  degrades with an honest ``complete=False``, never a wrong answer.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pdms import (
    FragmentCache,
    LoopbackTransport,
    QueryService,
    RemotePeerFactSource,
    ScanPolicy,
    ServiceCluster,
    ShardMap,
    certain_answers,
    combine_peer_instances,
    evaluate_distributed,
    reformulate,
)

from .strategies import churn_specs, data_mutation_specs, pdms_specs
from .test_materialization_properties import _apply_mutation
from .test_service_properties import _check_three_way, _join_satellite, build_pdms

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

ALL_ENGINES = ("backtracking", "plan", "shared", "columnar", "distributed")


def _oracle(pdms, query, data):
    return certain_answers(pdms, query, combine_peer_instances(data))


class TestFaultFreeEquivalence:
    @given(spec=pdms_specs())
    @settings(max_examples=30, **COMMON)
    def test_distributed_equals_all_engines_and_oracle(self, spec):
        pdms, data, queries = build_pdms(spec)
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        services = {
            engine: QueryService(pdms, data=data, engine=engine)
            for engine in ALL_ENGINES
        }
        for query in queries:
            oracle = _oracle(pdms, query, data)
            for engine, service in services.items():
                assert service.answer(query) == oracle, engine
            answer = evaluate_distributed(reformulate(pdms, query), source)
            assert answer.rows == frozenset(oracle)
            assert answer.complete and not answer.failures

    @given(spec=pdms_specs(), churn=churn_specs(max_satellites=2),
           ops=data_mutation_specs(max_ops=2))
    @settings(max_examples=20, **COMMON)
    def test_equivalence_under_interleaved_churn(self, spec, churn, ops):
        """Distributed service ≡ oracle across join/leave + data mutation."""
        pdms, data, queries = build_pdms(spec)
        service = QueryService(
            pdms, data=data, engine="distributed",
            fragment_cache=FragmentCache(max_bytes=1 << 20),
        )
        for query in queries:
            _check_three_way(service, query, data)
        for satellite in churn:
            extra_query = _join_satellite(
                service, satellite, spec["top_relations"], data)
            for op in ops:
                _apply_mutation(op, spec, data)
                for query in queries:
                    _check_three_way(service, query, data)
            if extra_query is not None:
                _check_three_way(service, extra_query, data)
            service.remove_peer(satellite["peer"])
            data.pop(satellite["peer"], None)
            for query in queries:
                _check_three_way(service, query, data)

    @given(spec=pdms_specs())
    @settings(max_examples=15, **COMMON)
    def test_cluster_matches_oracle_and_reports_complete(self, spec):
        pdms, data, queries = build_pdms(spec)
        with ServiceCluster(
            pdms=pdms, transport=LoopbackTransport(data)
        ) as cluster:
            for answer, query in zip(cluster.answer_many(queries), queries):
                assert answer.rows == frozenset(_oracle(pdms, query, data))
                assert answer.complete


class TestChaosSoundness:
    @given(spec=pdms_specs(), fail_index=st.integers(min_value=0, max_value=7))
    @settings(max_examples=25, **COMMON)
    def test_failed_peer_yields_sound_incomplete_subset(self, spec, fail_index):
        pdms, data, queries = build_pdms(spec)
        peers = sorted(data)
        doomed = peers[fail_index % len(peers)]
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        transport.fail_peer(doomed)
        for query in queries:
            oracle = frozenset(_oracle(pdms, query, data))
            window = source.failure_count
            answer = evaluate_distributed(reformulate(pdms, query), source)
            assert answer.rows <= oracle
            if source.failure_count > window or not source.complete:
                assert not answer.complete
            else:
                # Nothing this query needed was lost: exact and complete.
                assert answer.complete and answer.rows == oracle
        transport.restore_peer(doomed)
        for query in queries:
            healed = evaluate_distributed(reformulate(pdms, query), source)
            assert healed.complete
            assert healed.rows == frozenset(_oracle(pdms, query, data))

    @given(spec=pdms_specs(), drop_every=st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, **COMMON)
    def test_dropped_scans_stay_sound_with_honest_flag(self, spec, drop_every):
        pdms, data, queries = build_pdms(spec)
        transport = LoopbackTransport(data, drop_every_n=drop_every)
        source = RemotePeerFactSource(transport)
        for query in queries:
            oracle = frozenset(_oracle(pdms, query, data))
            window = source.failure_count
            answer = evaluate_distributed(reformulate(pdms, query), source)
            assert answer.rows <= oracle
            if answer.failures or source.failure_count > window:
                assert not answer.complete
        # Chaos off: the next round must be exact again — degraded scans
        # were never admitted to any cache under a valid token.
        transport.drop_every_n = 0
        for query in queries:
            healed = evaluate_distributed(reformulate(pdms, query), source)
            assert healed.complete
            assert healed.rows == frozenset(_oracle(pdms, query, data))

    @given(spec=pdms_specs(), drop_every=st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, **COMMON)
    def test_chaos_with_shared_fragment_cache_never_pollutes(self, spec, drop_every):
        """A warm cache shared across faulty and healthy calls stays honest."""
        pdms, data, queries = build_pdms(spec)
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(transport)
        cache = FragmentCache(max_bytes=1 << 20)
        for query in queries:  # warm, fault-free
            answer = evaluate_distributed(
                reformulate(pdms, query), source, cache=cache)
            assert answer.rows == frozenset(_oracle(pdms, query, data))
        transport.drop_every_n = drop_every
        for query in queries:  # chaos window
            answer = evaluate_distributed(
                reformulate(pdms, query), source, cache=cache)
            assert answer.rows <= frozenset(_oracle(pdms, query, data))
        transport.drop_every_n = 0
        for query in queries:  # healed: exact again through the same cache
            healed = evaluate_distributed(
                reformulate(pdms, query), source, cache=cache)
            assert healed.complete
            assert healed.rows == frozenset(_oracle(pdms, query, data))


#: Deterministic tail-latency policies: no backoff sleeps, no jitter.
_FAST = dict(backoff=0.0, backoff_cap=0.0, jitter=0.0)


def _replicate(data):
    """Mirror each single-owner relation onto a twin peer sharing the same
    live instance (perfect replicas), registered as one replicated shard.

    Multi-owner relations stay unregistered — their rows are split across
    peers, so replica-group semantics would not be sound for them.
    """
    owners = {}
    for peer, instance in data.items():
        for relation in instance.relations():
            owners.setdefault(relation, []).append(peer)
    mirrored = dict(data)
    shard_map = ShardMap()
    for relation, rel_owners in owners.items():
        if len(rel_owners) != 1:
            continue
        peer = rel_owners[0]
        twin = f"{peer}~replica"
        mirrored.setdefault(twin, data[peer])
        shard_map.shard_by_hash(relation, 0, [(peer, twin)])
    return mirrored, shard_map


class TestTailLatencyChaos:
    @given(spec=pdms_specs(), drop_every=st.integers(min_value=2, max_value=5))
    @settings(max_examples=15, **COMMON)
    def test_retries_heal_transient_drops_exactly(self, spec, drop_every):
        """Bounded retries turn every transient drop into an exact,
        truthfully *complete* answer — degradation is re-earned, not
        permanent (consecutive scan RPCs can never both be dropped)."""
        pdms, data, queries = build_pdms(spec)
        transport = LoopbackTransport(data, drop_every_n=drop_every)
        source = RemotePeerFactSource(
            transport, policy=ScanPolicy(retries=3, hedging=False, **_FAST)
        )
        for query in queries:
            answer = evaluate_distributed(reformulate(pdms, query), source)
            assert answer.rows == frozenset(_oracle(pdms, query, data))
            assert answer.complete and not answer.failures
        assert source.failure_count == 0

    @given(spec=pdms_specs(), drop_every=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, **COMMON)
    def test_hedged_replicated_scans_stay_exact(self, spec, drop_every):
        """Aggressive hedging across replicas, racing under dropped RPCs,
        still agrees with the chase oracle exactly — first-success-wins
        never mixes partial results."""
        pdms, data, queries = build_pdms(spec)
        mirrored, shard_map = _replicate(data)
        transport = LoopbackTransport(mirrored, drop_every_n=drop_every)
        source = RemotePeerFactSource(
            transport,
            shard_map=shard_map,
            policy=ScanPolicy(retries=3, hedge=0.0, hedging=True, **_FAST),
        )
        for query in queries:
            answer = evaluate_distributed(reformulate(pdms, query), source)
            assert answer.rows == frozenset(_oracle(pdms, query, data))
            assert answer.complete

    @given(spec=pdms_specs())
    @settings(max_examples=8, **COMMON)
    def test_deadline_expiry_reports_incomplete_then_heals(self, spec):
        """An expired deadline budget degrades honestly — a sound subset
        with ``complete=False`` — and the next healthy round is exact."""
        pdms, data, queries = build_pdms(spec)
        transport = LoopbackTransport(data)
        source = RemotePeerFactSource(
            transport,
            policy=ScanPolicy(retries=1, hedging=False, deadline=0.02, **_FAST),
        )
        slow = sorted(data)[0]
        transport.set_peer_delay(slow, 0.1)
        for query in queries[:2]:
            oracle = frozenset(_oracle(pdms, query, data))
            window = source.failure_count
            answer = evaluate_distributed(reformulate(pdms, query), source)
            assert answer.rows <= oracle
            if source.failure_count > window:
                assert not answer.complete
                assert source.scatter_stats()["deadline_expiries"] >= 1
        transport.set_peer_delay(slow, 0.0)
        for query in queries[:2]:
            healed = evaluate_distributed(reformulate(pdms, query), source)
            assert healed.complete
            assert healed.rows == frozenset(_oracle(pdms, query, data))
