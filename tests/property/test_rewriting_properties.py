"""Property-based tests for MiniCon, the Bucket algorithm, and PDMS reformulation.

Key invariants, straight from the literature the paper builds on:

* every MiniCon / Bucket rewriting is *contained* in the query once view
  atoms are expanded by their definitions (soundness);
* evaluating the rewriting over view extensions returns exactly the certain
  answers (maximal containment) — checked against the inverse-rules oracle;
* the PDMS reformulation returns exactly the certain answers on randomly
  generated tractable workloads — checked against the chase oracle.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.containment import is_contained_in
from repro.datalog.evaluation import evaluate_union
from repro.integration import certain_answers as lav_certain_answers
from repro.integration import minicon_rewrite
from repro.integration.bucket import expand_view_atoms
from repro.integration.bucket import rewrite as bucket_rewrite
from repro.pdms import answer_query, certain_answers, reformulate
from repro.workload import GeneratorParameters, generate_workload, populate_workload

from .strategies import conjunctive_queries, instances, lav_views

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestMiniConProperties:
    @given(query=conjunctive_queries(max_body=3), views=lav_views())
    @settings(max_examples=50, **COMMON)
    def test_rewritings_are_contained_in_query(self, query, views):
        union = minicon_rewrite(query, views)
        for rewriting in union:
            expansion = expand_view_atoms(rewriting, views)
            assert expansion is not None
            assert is_contained_in(expansion, query)

    @given(query=conjunctive_queries(max_body=2), views=lav_views(), facts=instances())
    @settings(max_examples=40, **COMMON)
    def test_rewriting_answers_equal_certain_answers(self, query, views, facts):
        # Build view extensions by evaluating the view definitions over a
        # random "global" instance — the open-world setting of LAV.
        view_extensions = {
            view.name: evaluate_union(
                type(minicon_rewrite(query, []))(  # UnionQuery constructor
                    [view.definition], name=view.name, arity=view.arity),
                facts,
            )
            for view in views
        }
        union = minicon_rewrite(query, views)
        answers = evaluate_union(union, view_extensions)
        oracle = lav_certain_answers(query, views, view_extensions)
        assert answers == oracle

    @given(query=conjunctive_queries(max_body=2), views=lav_views(), facts=instances())
    @settings(max_examples=25, **COMMON)
    def test_bucket_is_sound_and_below_minicon(self, query, views, facts):
        """The Bucket baseline never returns a non-certain answer, and never
        beats MiniCon.  (It may miss answers in corner cases where view
        unification binds a distinguished query variable to a constant — a
        known gap of the original algorithm's candidate construction that
        MiniCon closes; see the module docstring of repro.integration.bucket.)
        """
        view_extensions = {
            view.name: evaluate_union(
                type(minicon_rewrite(query, []))(
                    [view.definition], name=view.name, arity=view.arity),
                facts,
            )
            for view in views
        }
        minicon_answers = evaluate_union(minicon_rewrite(query, views), view_extensions)
        bucket_answers = evaluate_union(bucket_rewrite(query, views), view_extensions)
        oracle = lav_certain_answers(query, views, view_extensions)
        assert bucket_answers <= oracle
        assert bucket_answers <= minicon_answers


class TestReformulationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        definitional_ratio=st.sampled_from([0.0, 0.25, 0.5]),
        diameter=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=30, **COMMON)
    def test_answers_equal_certain_answers_on_generated_workloads(
        self, seed, definitional_ratio, diameter
    ):
        workload = generate_workload(GeneratorParameters(
            num_peers=3 * diameter,
            diameter=diameter,
            definitional_ratio=definitional_ratio,
            seed=seed,
        ))
        data = populate_workload(workload, rows_per_relation=5, domain_size=3)
        answers = answer_query(workload.pdms, workload.query, data)
        oracle = certain_answers(workload.pdms, workload.query, data)
        assert answers == oracle

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, **COMMON)
    def test_rewritings_only_use_stored_relations(self, seed):
        workload = generate_workload(GeneratorParameters(
            num_peers=9, diameter=3, definitional_ratio=0.3, seed=seed))
        stored = workload.pdms.stored_relation_names()
        result = reformulate(workload.pdms, workload.query)
        for rewriting in result.all_rewritings():
            assert {atom.predicate for atom in rewriting.relational_body()} <= stored

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, **COMMON)
    def test_node_statistics_match_tree_recount(self, seed):
        workload = generate_workload(GeneratorParameters(
            num_peers=8, diameter=2, definitional_ratio=0.2, seed=seed))
        result = reformulate(workload.pdms, workload.query)
        before = result.statistics.total_nodes
        recounted = result.tree.count_nodes().total_nodes
        assert before == recounted
