"""Property-based tests for the query-answering service layer.

The central invariant, over random small PDMSs and random catalogue-churn
sequences (join peer → query → remove peer → query):

    ``QueryService.answer`` ≡ a fresh ``answer_query`` ≡ the chase oracle
    (``certain_answers``)

at *every* point of the churn — i.e. the reformulation cache with
provenance-based invalidation is indistinguishable from re-reformulating
from scratch, and both agree with the paper's Definition-2.2 semantics on
the tractable fragment.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.database import Instance
from repro.datalog.atoms import Atom
from repro.datalog.queries import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    Peer,
    QueryService,
    StorageDescription,
    answer_query,
    certain_answers,
    combine_peer_instances,
    lav_style,
)

from .strategies import churn_specs, pdms_specs

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _chain(name, relations, prefix):
    variables = [Variable(f"{prefix}{i}") for i in range(len(relations) + 1)]
    body = [
        Atom(relation, [variables[i], variables[i + 1]])
        for i, relation in enumerate(relations)
    ]
    return ConjunctiveQuery(Atom(name, [variables[0], variables[-1]]), body)


def build_pdms(spec):
    """Materialise a :func:`pdms_specs` spec into (PDMS, per-peer data)."""
    pdms = PDMS("prop")
    data = {}
    top = pdms.add_peer("T")
    for relation in spec["top_relations"]:
        top.add_relation(relation.partition(":")[2], ["a", "b"])
    for entry in spec["bottom"]:
        peer = pdms.add_peer(entry["peer"])
        peer.add_relation(entry["relation"].partition(":")[2], ["a", "b"])
        pdms.add_storage_description(StorageDescription(
            entry["peer"], entry["stored"],
            _chain(entry["stored"], [entry["relation"]], prefix="s"),
            exact=False, name=f"store_{entry['stored']}",
        ))
        instance = Instance()
        instance.add_all(entry["stored"], entry["rows"])
        data[entry["peer"]] = instance
    for mapping in spec["mappings"]:
        if mapping["kind"] == "definitional":
            pdms.add_peer_mapping(DefinitionalMapping(
                _chain(mapping["head"], mapping["chain"], prefix="d"),
                name=mapping["name"],
            ))
        else:
            pdms.add_peer_mapping(lav_style(
                _chain(mapping["left"], [mapping["left"]], prefix="l").head,
                _chain("R", [mapping["right"]], prefix="r"),
                name=mapping["name"],
            ))
    queries = [_chain("Q", relations, prefix="q") for relations in spec["queries"]]
    return pdms, data, queries


def _join_satellite(service, satellite, top_relations, data):
    """Apply one satellite join through the service; returns its query."""
    target = top_relations[satellite["target_index"] % len(top_relations)]
    peer = Peer(satellite["peer"])
    peer.add_relation(satellite["relation"].partition(":")[2], ["a", "b"])
    service.add_peer(peer)
    if satellite["role"] == "provider":
        service.add_peer_mapping(lav_style(
            _chain(satellite["relation"], [satellite["relation"]], prefix="j").head,
            _chain("R", [target], prefix="k"),
            name=f"sat_map_{satellite['peer']}",
        ))
        stored = f"sat_store_{satellite['peer']}"
        service.add_storage_description(StorageDescription(
            satellite["peer"], stored,
            _chain(stored, [satellite["relation"]], prefix="m"),
            exact=False, name=f"sat_desc_{satellite['peer']}",
        ))
        instance = Instance()
        instance.add_all(stored, satellite["rows"])
        service.set_peer_data(satellite["peer"], instance)
        data[satellite["peer"]] = instance
        return None
    service.add_peer_mapping(DefinitionalMapping(
        _chain(satellite["relation"], [target], prefix="c"),
        name=f"sat_map_{satellite['peer']}",
    ))
    return _chain("Q", [satellite["relation"]], prefix="q")


def _check_three_way(service, query, data):
    combined = combine_peer_instances(data)
    served = service.answer(query)
    fresh = answer_query(service.pdms, query, combined)
    oracle = certain_answers(service.pdms, query, combined)
    assert served == fresh, f"service != fresh on {query}"
    assert served == oracle, f"service != oracle on {query}"


class TestServiceEquivalence:
    @given(spec=pdms_specs())
    @settings(max_examples=40, **COMMON)
    def test_static_answers_match_fresh_and_oracle(self, spec):
        pdms, data, queries = build_pdms(spec)
        service = QueryService(pdms, data=data)
        for query in queries:
            _check_three_way(service, query, data)
        # Second pass is served from cache and must still agree.
        for query in queries:
            _check_three_way(service, query, data)
        assert service.stats.hits >= len(queries)

    @given(spec=pdms_specs(), churn=churn_specs())
    @settings(max_examples=30, **COMMON)
    def test_churn_sequence_preserves_equivalence(self, spec, churn):
        """join peer → query → remove peer → query, against both oracles."""
        pdms, data, queries = build_pdms(spec)
        service = QueryService(pdms, data=data)
        for query in queries:
            _check_three_way(service, query, data)
        for satellite in churn:
            extra_query = _join_satellite(
                service, satellite, spec["top_relations"], data)
            for query in queries:
                _check_three_way(service, query, data)
            if extra_query is not None:
                _check_three_way(service, extra_query, data)
            service.remove_peer(satellite["peer"])
            data.pop(satellite["peer"], None)
            for query in queries:
                _check_three_way(service, query, data)

    @given(spec=pdms_specs(), limit=st.integers(min_value=0, max_value=4))
    @settings(max_examples=30, **COMMON)
    def test_limited_answers_are_subsets(self, spec, limit):
        pdms, data, queries = build_pdms(spec)
        service = QueryService(pdms, data=data)
        for query in queries:
            full = service.answer(query)
            limited = service.answer(query, limit=limit)
            assert limited <= full
            assert len(limited) == min(limit, len(full))

    @given(spec=pdms_specs())
    @settings(max_examples=20, **COMMON)
    def test_both_engines_agree_through_the_service(self, spec):
        pdms, data, queries = build_pdms(spec)
        backtracking = QueryService(pdms, data=data, engine="backtracking")
        for query in queries:
            assert backtracking.answer(query) == backtracking.answer(
                query, engine="plan")
