"""Property-based tests: the plan executor agrees with the direct evaluator.

Two completely independent evaluation paths exist for conjunctive queries —
the backtracking evaluator in :mod:`repro.datalog.evaluation` and the
relational-algebra plan pipeline in :mod:`repro.database.planner`.  On every
randomly generated query and instance they must return exactly the same
answer set; the same must hold end to end for reformulated PDMS queries.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.database.planner import compile_query, evaluate_query_via_plan, execute_plan
from repro.datalog.evaluation import evaluate_query
from repro.pdms import evaluate_reformulation, reformulate
from repro.workload import GeneratorParameters, generate_workload, populate_workload

from .strategies import conjunctive_queries, instances

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestPlanExecutorAgreement:
    @given(query=conjunctive_queries(max_body=3), facts=instances())
    @settings(max_examples=100, **COMMON)
    def test_plan_matches_backtracking_evaluator(self, query, facts):
        assert evaluate_query_via_plan(query, facts) == evaluate_query(query, facts)

    @given(query=conjunctive_queries(max_body=3, with_comparisons=True), facts=instances())
    @settings(max_examples=60, **COMMON)
    def test_plan_matches_with_comparisons(self, query, facts):
        assert evaluate_query_via_plan(query, facts) == evaluate_query(query, facts)

    @given(query=conjunctive_queries(max_body=3), facts=instances())
    @settings(max_examples=40, **COMMON)
    def test_plan_arity_and_explain(self, query, facts):
        plan = compile_query(query, facts)
        table = execute_plan(plan, facts)
        assert len(table.columns) == query.arity
        assert "Project" in plan.explain()

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=15, **COMMON)
    def test_engines_agree_on_reformulated_queries(self, seed):
        workload = generate_workload(GeneratorParameters(
            num_peers=9, diameter=3, definitional_ratio=0.25, seed=seed))
        data = populate_workload(workload, rows_per_relation=5, domain_size=3)
        result = reformulate(workload.pdms, workload.query)
        backtracking = evaluate_reformulation(result, data, engine="backtracking")
        plan = evaluate_reformulation(result, data, engine="plan")
        assert backtracking == plan
