"""Property tests for the self-tuning loop (ISSUE 7).

Three invariants, over random small PDMSs with random data mutations and
catalogue churn:

* **Measurement is truthful** — every ``(estimated, actual)`` observation
  a :class:`~repro.database.feedback.QErrorLog` records during plan
  execution reports the *true* row count of that fragment, under every
  engine (re-evaluating the fragment from scratch reproduces ``actual``).

* **Adaptivity is invisible in answers** — a service with
  ``REPRO_ADAPTIVE=1`` (corrections, racing, re-planning all live) stays
  exactly equivalent to a fresh static evaluation and to the chase
  oracle at every point of a mutation/churn interleaving.

* **Losing challengers are inert** — a challenger whose answer set
  differs from the champion's is counted and discarded; its rows never
  reach a served answer.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.database import QErrorLog
from repro.pdms import (
    PeerFactSource,
    QueryService,
    compile_reformulation,
    evaluate_reformulation,
    reformulate,
)
from repro.pdms.planning import _OnceMap, _fragment_table

from .strategies import churn_specs, data_mutation_specs, pdms_specs
from .test_materialization_properties import _apply_mutation
from .test_service_properties import _check_three_way, _join_satellite, build_pdms

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

ALL_ENGINES = ("backtracking", "plan", "shared", "columnar", "distributed")


class TestMeasurementTruthfulness:
    @given(spec=pdms_specs(), engine=st.sampled_from(ALL_ENGINES))
    @settings(max_examples=25, **COMMON)
    def test_recorded_actuals_are_true_fragment_counts(self, spec, engine):
        """Re-evaluating any observed fragment reproduces its ``actual``."""
        pdms, data, queries = build_pdms(spec)
        source = PeerFactSource(data)
        for query in queries:
            result = reformulate(pdms, query)
            log = QErrorLog()
            rows = evaluate_reformulation(
                result, source, engine=engine, feedback=log)
            plan = compile_reformulation(result, source)
            for _ in plan.fragments():
                pass  # force full compilation so every key resolves
            for obs in log.observations():
                if obs.key in plan.nodes:
                    table = _fragment_table(
                        plan, obs.key, source, _OnceMap())
                    assert len(table.rows) == obs.actual, (engine, obs.key)
                else:
                    # Whole-rewriting observations (per-rewriting engines
                    # measure at rewriting granularity): bounded by the
                    # final answer only when the rewriting is the union.
                    assert obs.actual <= len(rows) or len(log.observations()) > 1

    @given(spec=pdms_specs(), ops=data_mutation_specs(max_ops=2))
    @settings(max_examples=15, **COMMON)
    def test_observations_track_mutating_data(self, spec, ops):
        """After a mutation, fresh observations reflect the new counts."""
        pdms, data, queries = build_pdms(spec)
        source = PeerFactSource(data)
        for op in ops:
            _apply_mutation(op, spec, data)
        for query in queries:
            result = reformulate(pdms, query)
            log = QErrorLog()
            evaluate_reformulation(result, source, engine="shared", feedback=log)
            plan = compile_reformulation(result, source)
            for _ in plan.fragments():
                pass
            for obs in log.observations():
                if obs.key in plan.nodes:
                    table = _fragment_table(plan, obs.key, source, _OnceMap())
                    assert len(table.rows) == obs.actual


class TestAdaptiveEquivalence:
    @given(spec=pdms_specs(), ops=data_mutation_specs(),
           engine=st.sampled_from(("shared", "columnar")))
    @settings(max_examples=25, **COMMON)
    def test_adaptive_equals_fresh_and_oracle_under_mutation(
            self, spec, ops, engine):
        """query → mutate → query with the full loop on, vs both oracles."""
        pdms, data, queries = build_pdms(spec)
        service = QueryService(
            pdms, data=data, engine=engine, adaptive=True,
            fragment_cache_bytes=0,
        )
        for _ in range(2):  # repeat pass: corrections + possible races live
            for query in queries:
                _check_three_way(service, query, data)
        for op in ops:
            _apply_mutation(op, spec, data)
            for query in queries:
                _check_three_way(service, query, data)

    @given(spec=pdms_specs(), churn=churn_specs(max_satellites=1))
    @settings(max_examples=15, **COMMON)
    def test_adaptive_equals_oracle_under_peer_churn(self, spec, churn):
        """Peer join/leave invalidates corrections, answers stay exact."""
        pdms, data, queries = build_pdms(spec)
        service = QueryService(
            pdms, data=data, engine="shared", adaptive=True,
            fragment_cache_bytes=0,
        )
        for query in queries:
            _check_three_way(service, query, data)
        for satellite in churn:
            extra_query = _join_satellite(
                service, satellite, spec["top_relations"], data)
            for query in queries:
                _check_three_way(service, query, data)
            if extra_query is not None:
                _check_three_way(service, extra_query, data)
            service.remove_peer(satellite["peer"])
            data.pop(satellite["peer"], None)
            for query in queries:
                _check_three_way(service, query, data)

    @given(spec=pdms_specs())
    @settings(max_examples=15, **COMMON)
    def test_env_enabled_adaptive_matches_static_service(self, spec):
        import os
        from unittest import mock

        pdms, data, queries = build_pdms(spec)
        with mock.patch.dict(os.environ, {"REPRO_ADAPTIVE": "1"}):
            adaptive = QueryService(pdms, data=data, engine="shared")
            assert adaptive.adaptive
            static = QueryService(pdms, data=data, engine="shared",
                                  adaptive=False)
            for _ in range(2):
                for query in queries:
                    assert adaptive.answer(query) == static.answer(query)


class TestChallengerIsolation:
    @given(spec=pdms_specs(), poison_row=st.tuples(st.integers(), st.integers()))
    @settings(max_examples=15, **COMMON)
    def test_losing_challenger_rows_never_served(self, spec, poison_row):
        """Force every challenger to return poisoned rows 'instantly';
        served answers must still equal the static truth and the poison
        must never appear."""
        pdms, data, queries = build_pdms(spec)
        service = QueryService(
            pdms, data=data, engine="shared", adaptive=True,
            race_margin=1e9, fragment_cache_bytes=0,
            feedback=QErrorLog(correction_threshold=1.0 + 1e-9),
        )
        static = QueryService(pdms, data=data, engine="shared")
        champions = service._champions
        real = QueryService._evaluate_candidate.__get__(service)

        def poisoned(result, source, engine, plan, feedback):
            states = [s for s in champions.values() if s.plan is plan]
            if not states:  # a challenger, not a champion: poison it
                rows, _ = real(result, source, engine, plan, feedback)
                return set(rows) | {poison_row}, 0.0
            return real(result, source, engine, plan, feedback)

        service._evaluate_candidate = poisoned
        try:
            for _ in range(3):
                for query in queries:
                    served = service.answer(query)
                    truth = static.answer(query)
                    assert served == truth
                    if poison_row not in truth:
                        assert poison_row not in served
        finally:
            del service._evaluate_candidate
        stats = service.stats_snapshot().adaptive
        assert stats.races_won == 0
        if stats.races_run:
            assert stats.races_mismatched == stats.races_run
