"""Materialization benchmarks: warm vs cold, write-mix hit rate, bushy sharing.

Backs the ISSUE-4 acceptance criteria:

* repeated queries over **stable** data answer ≥ 5× faster through a warm
  :class:`~repro.pdms.materialization.FragmentCache` than with the cache
  cleared before every call (reformulation and plan caches stay warm in
  both arms — the measured gap is pure fragment materialization);
* under a **10% write mix** into one predicate, the fragment hit rate
  stays above 50%: a single-predicate update invalidates only the
  fragments that read it, the rest of the working set stays warm;
* **bushy** fragment extraction measurably increases the shared-subgoal
  ratio over the PR 3 left-deep-prefix shape on a workload whose shared
  pair is never a cost-order prefix.

Like the other benchmark modules, ``BENCH_materialization.json`` is
written next to this file when ``EVAL_BENCH_RECORD=1``, and
``EVAL_BENCH_QUICK=1`` shrinks the workloads for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.pdms import (
    PDMS,
    FragmentCache,
    QueryService,
    StorageDescription,
    compile_reformulation,
    evaluate_plan,
    reformulate,
)

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Storage alternatives for the variant chain subgoal (one rewriting each).
ALTERNATIVES = 6 if QUICK else 16
#: Rows in each of the two shared chain relations.
ROWS = 3000 if QUICK else 15000
#: Rows in each variant relation.
VARIANT_ROWS = 100 if QUICK else 400
#: Join-key domain (sparse: intermediate results stay small).
DOMAIN = 12000 if QUICK else 60000
#: Operations in the write-mix stream.
MIX_OPS = 60 if QUICK else 200


def _best_seconds(callable_: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_materialization.json when asked."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_materialization.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def _chain_workload(alternatives=ALTERNATIVES, rows=ROWS):
    """``Q :- A1, A2, A3`` with one storage alternative per A3 rewriting.

    A1/A2 are big and shared by every rewriting; the A3 variants are small
    and distinct — the canonical repeated-traffic shape: one expensive
    shared join plus per-rewriting cheap tails.
    """
    pdms = PDMS()
    peer = pdms.add_peer("P")
    for relation in ("A1", "A2", "A3"):
        peer.add_relation(relation, ["x", "y"])
    pdms.add_storage_description(
        StorageDescription("P", "s_a1", parse_query("V(x, y) :- P:A1(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "s_a2", parse_query("V(x, y) :- P:A2(x, y)")))
    for i in range(alternatives):
        pdms.add_storage_description(
            StorageDescription("P", f"s_a3_{i}", parse_query("V(x, y) :- P:A3(x, y)")))
    rng = random.Random(7)
    instance = Instance()
    instance.add_all(
        "s_a1", {(rng.randrange(DOMAIN), rng.randrange(DOMAIN)) for _ in range(rows)})
    instance.add_all(
        "s_a2", {(rng.randrange(DOMAIN), rng.randrange(DOMAIN)) for _ in range(rows)})
    for i in range(alternatives):
        instance.add_all(f"s_a3_{i}", {
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
            for _ in range(VARIANT_ROWS)
        })
    for j in range(20):
        instance.add("s_a1", (j, DOMAIN + j))
        instance.add("s_a2", (DOMAIN + j, 2 * DOMAIN + j))
        for i in range(alternatives):
            instance.add(f"s_a3_{i}", (2 * DOMAIN + j, 1000 + i))
    query = parse_query("Q(x0, x3) :- P:A1(x0, x1), P:A2(x1, x2), P:A3(x2, x3)")
    return pdms, query, instance


def test_warm_cache_beats_cold_on_stable_data(baseline_recorder):
    """Acceptance gate: ≥ 5× warm vs cold on repeated queries, stable data."""
    pdms, query, instance = _chain_workload()
    cache = FragmentCache(max_bytes=256 << 20)
    service = QueryService(
        pdms, data={"P": instance}, engine="shared", fragment_cache=cache)
    expected = service.answer(query)  # pays reformulation + plan + fragments
    assert expected
    assert service.answer(query) == expected  # warm agrees

    rounds = 3 if QUICK else 5

    def cold():
        cache.clear()
        return service.answer(query)

    cold_seconds = _best_seconds(cold, rounds)
    cache.clear()
    service.answer(query)  # re-warm
    warm_seconds = _best_seconds(lambda: service.answer(query), rounds)
    speedup = cold_seconds / warm_seconds

    baseline_recorder["warm_vs_cold"] = {
        "answers": float(len(expected)),
        "rewritings": float(ALTERNATIVES),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": speedup,
        "cache_entries": float(len(cache)),
        "cache_bytes": float(cache.current_bytes),
    }
    assert speedup >= 5.0, (
        f"warm fragment cache only {speedup:.1f}x faster than cold "
        f"({warm_seconds * 1e3:.2f} ms vs {cold_seconds * 1e3:.2f} ms)"
    )


def test_write_mix_keeps_unrelated_fragments_warm(baseline_recorder):
    """10% writes into one predicate: fragment hit rate stays above 50%."""
    pdms, query, instance = _chain_workload()
    cache = FragmentCache(max_bytes=256 << 20)
    service = QueryService(
        pdms, data={"P": instance}, engine="shared", fragment_cache=cache)
    expected = service.answer(query)  # warm up
    assert expected

    rng = random.Random(23)
    hits_before = cache.stats.hits
    lookups_before = cache.stats.lookups
    invalidations_before = cache.stats.invalidations
    writes = 0
    started = time.perf_counter()
    for op in range(MIX_OPS):
        if op % 10 == 0:
            # The 10% write mix: every write touches the same single
            # predicate, so only its dependent fragments go stale.
            instance.add("s_a3_0", (rng.randrange(DOMAIN), rng.randrange(DOMAIN)))
            writes += 1
        else:
            service.answer(query)
    elapsed = time.perf_counter() - started
    hits = cache.stats.hits - hits_before
    lookups = cache.stats.lookups - lookups_before
    hit_rate = hits / lookups if lookups else 0.0

    baseline_recorder["write_mix"] = {
        "operations": float(MIX_OPS),
        "writes": float(writes),
        "write_fraction": writes / MIX_OPS,
        "fragment_hit_rate": hit_rate,
        "fragment_lookups": float(lookups),
        "stale_invalidations": float(
            cache.stats.invalidations - invalidations_before),
        "stream_seconds": elapsed,
        "ops_per_second": MIX_OPS / elapsed if elapsed else 0.0,
    }
    # Answers stay correct under the trickle of writes.
    assert service.answer(query) >= expected
    assert hit_rate > 0.5, (
        f"fragment hit rate fell to {hit_rate:.0%} under a 10% write mix"
    )


def test_bushy_sharing_beats_left_deep(baseline_recorder):
    """Bushy fragment extraction reuses the non-prefix {M,R} pair."""
    pdms = PDMS()
    peer = pdms.add_peer("P")
    for relation in ("L", "M", "R"):
        peer.add_relation(relation, ["x", "y"])
    alternatives = ALTERNATIVES
    for i in range(alternatives):
        pdms.add_storage_description(StorageDescription(
            "P", f"s_l_{i}", parse_query("V(x, y) :- P:L(x, y)")))
    pdms.add_storage_description(StorageDescription(
        "P", "s_m", parse_query("V(x, y) :- P:M(x, y)")))
    pdms.add_storage_description(StorageDescription(
        "P", "s_r", parse_query("V(x, y) :- P:R(x, y)")))
    rng = random.Random(11)
    rows = ROWS
    data = {}
    # L_i tiny (the cost order's *first atom* is always some L_i), M big
    # with few distinct y (so L_i ⋈ M fans out) and near-unique z (so
    # M ⋈ R is tiny): the cheapest *join* pair {M,R} — shared by every
    # rewriting — is never a left-deep prefix.
    for i in range(alternatives):
        data[f"s_l_{i}"] = {
            (rng.randrange(200), rng.randrange(50)) for _ in range(20)}
    data["s_m"] = {
        (rng.randrange(50), rng.randrange(DOMAIN)) for _ in range(rows)}
    data["s_r"] = {(rng.randrange(DOMAIN), rng.randrange(200)) for _ in range(40)}
    for j in range(10):
        data["s_m"].add((j % 50, 2 * DOMAIN + j))
        data["s_r"].add((2 * DOMAIN + j, j))
    query = parse_query("Q(x, w) :- P:L(x, y), P:M(y, z), P:R(z, w)")
    result = reformulate(pdms, query)
    result.all_rewritings()

    bushy = compile_reformulation(result, data, bushy=True)
    left = compile_reformulation(result, data, bushy=False)
    bushy_answers = evaluate_plan(bushy, data)
    assert bushy_answers
    assert evaluate_plan(left, data) == bushy_answers

    rounds = 3 if QUICK else 5
    bushy_seconds = _best_seconds(lambda: evaluate_plan(bushy, data), rounds)
    left_seconds = _best_seconds(lambda: evaluate_plan(left, data), rounds)

    baseline_recorder["bushy_sharing"] = {
        "rewritings": float(bushy.stats.rewritings),
        "bushy_shared_subgoal_ratio": bushy.stats.sharing_ratio,
        "left_deep_shared_subgoal_ratio": left.stats.sharing_ratio,
        "bushy_unique_fragments": float(bushy.stats.unique_fragments),
        "left_deep_unique_fragments": float(left.stats.unique_fragments),
        "bushy_seconds": bushy_seconds,
        "left_deep_seconds": left_seconds,
        "bushy_speedup": left_seconds / bushy_seconds,
    }
    assert bushy.stats.sharing_ratio > left.stats.sharing_ratio, (
        f"bushy sharing {bushy.stats.sharing_ratio:.0%} did not beat "
        f"left-deep {left.stats.sharing_ratio:.0%}"
    )
