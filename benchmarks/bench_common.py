"""Shared helpers for the benchmark suite.

Each benchmark regenerates one figure (or one in-text claim) of the paper's
Section 5 on top of the Section-5 workload generator re-implemented in
:mod:`repro.workload.generator`.  The pytest-benchmark tests use reduced
parameter ranges so the suite stays fast; ``harness.py`` runs the full
sweeps used for EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.pdms import ReformulationConfig, reformulate
from repro.workload import GeneratorParameters, generate_workload

#: Number of peers used throughout (the paper's experiments use 96 peers).
PAPER_NUM_PEERS = 96


@dataclass
class ReformulationSample:
    """Measurements from reformulating one generated workload."""

    diameter: int
    definitional_ratio: float
    tree_nodes: int
    build_seconds: float
    first_rewriting_seconds: Optional[float] = None
    tenth_rewriting_seconds: Optional[float] = None
    all_rewritings_seconds: Optional[float] = None
    rewriting_count: Optional[int] = None


def run_reformulation(
    diameter: int,
    definitional_ratio: float,
    seed: int,
    num_peers: int = PAPER_NUM_PEERS,
    measure_rewritings: bool = False,
    config: Optional[ReformulationConfig] = None,
) -> ReformulationSample:
    """Generate one workload and reformulate its query, timing the phases."""
    workload = generate_workload(GeneratorParameters(
        num_peers=num_peers,
        diameter=diameter,
        definitional_ratio=definitional_ratio,
        seed=seed,
    ))
    start = time.perf_counter()
    result = reformulate(workload.pdms, workload.query, config=config)
    build_seconds = time.perf_counter() - start
    sample = ReformulationSample(
        diameter=diameter,
        definitional_ratio=definitional_ratio,
        tree_nodes=result.statistics.total_nodes,
        build_seconds=build_seconds,
    )
    if measure_rewritings:
        start = time.perf_counter()
        first = result.first_rewritings(1)
        sample.first_rewriting_seconds = build_seconds + (time.perf_counter() - start)
        start = time.perf_counter()
        result.first_rewritings(10)
        sample.tenth_rewriting_seconds = sample.first_rewriting_seconds + (
            time.perf_counter() - start
        )
        start = time.perf_counter()
        everything = result.all_rewritings()
        sample.all_rewritings_seconds = sample.tenth_rewriting_seconds + (
            time.perf_counter() - start
        )
        sample.rewriting_count = len(everything)
        if not first:
            sample.first_rewriting_seconds = None
            sample.tenth_rewriting_seconds = None
    return sample


def average_samples(samples: Sequence[ReformulationSample]) -> Dict[str, float]:
    """Average the numeric fields of a list of samples (ignoring ``None``)."""
    def mean_of(attribute: str) -> Optional[float]:
        values = [getattr(s, attribute) for s in samples if getattr(s, attribute) is not None]
        return statistics.mean(values) if values else None

    return {
        "tree_nodes": mean_of("tree_nodes"),
        "build_seconds": mean_of("build_seconds"),
        "first_rewriting_seconds": mean_of("first_rewriting_seconds"),
        "tenth_rewriting_seconds": mean_of("tenth_rewriting_seconds"),
        "all_rewritings_seconds": mean_of("all_rewritings_seconds"),
        "rewriting_count": mean_of("rewriting_count"),
    }
