"""Union-plan benchmarks: shared-subplan reuse, parallelism, federation.

Backs the ISSUE-3 acceptance criteria:

* on a workload whose rewritings share ≥ 50% of their subgoals, the
  ``shared`` engine answers at least 2× faster than per-rewriting
  evaluation (each rewriting re-joining the common prefix from scratch);
* the federated :class:`~repro.pdms.execution.PeerFactSource` beats the
  combine-then-evaluate path on per-peer data (no eager full copy);
* parallel plan execution returns identical answers (wall-clock effect is
  recorded, not asserted — fragment evaluation is pure Python, so the GIL
  caps thread-pool speedup; the numbers document that honestly).

Like the other benchmark modules, ``BENCH_union_plan.json`` is written
next to this file when ``EVAL_BENCH_RECORD=1``, and ``EVAL_BENCH_QUICK=1``
shrinks the workloads for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.pdms import (
    PDMS,
    PeerFactSource,
    StorageDescription,
    combine_peer_instances,
    compile_reformulation,
    evaluate_plan,
    evaluate_reformulation,
    reformulate,
)

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Storage alternatives for the last chain subgoal (one rewriting each).
ALTERNATIVES = 8 if QUICK else 24
#: Rows in each of the two *shared* chain relations.
ROWS = 4000 if QUICK else 20000
#: Rows in each variant relation (small and selective).
VARIANT_ROWS = 120 if QUICK else 500
#: Join-key domain: sparse enough that intermediate results stay small,
#: so the dominant per-rewriting cost is processing the two big shared
#: relations — exactly the work the shared plan does once.
DOMAIN = 16000 if QUICK else 80000


def _best_seconds(callable_: Callable[[], object], rounds: int) -> float:
    """Best-of-N timing — robust to scheduler noise, used for assertions."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_union_plan.json when asked to."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_union_plan.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def _sharing_workload():
    """A chain query whose rewritings share 2 of their 3 subgoals (67%).

    ``Q :- A1, A2, A3`` where A1/A2 have one storage description each and
    A3 has ``ALTERNATIVES`` — so Step 3 emits one rewriting per
    alternative, every one re-joining the identical ``s_a1 ⋈ s_a2``
    prefix under per-rewriting evaluation while the shared plan computes
    it once.
    """
    pdms = PDMS()
    peer = pdms.add_peer("P")
    for relation in ("A1", "A2", "A3"):
        peer.add_relation(relation, ["x", "y"])
    pdms.add_storage_description(
        StorageDescription("P", "s_a1", parse_query("V(x, y) :- P:A1(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "s_a2", parse_query("V(x, y) :- P:A2(x, y)")))
    for i in range(ALTERNATIVES):
        pdms.add_storage_description(
            StorageDescription("P", f"s_a3_{i}", parse_query("V(x, y) :- P:A3(x, y)")))

    rng = random.Random(7)
    data = {
        "s_a1": {(rng.randrange(DOMAIN), rng.randrange(DOMAIN)) for _ in range(ROWS)},
        "s_a2": {(rng.randrange(DOMAIN), rng.randrange(DOMAIN)) for _ in range(ROWS)},
    }
    for i in range(ALTERNATIVES):
        data[f"s_a3_{i}"] = {
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
            for _ in range(VARIANT_ROWS)
        }
    # A deterministic matching chain per alternative, so the answer set is
    # guaranteed non-empty however sparse the random part is.
    for j in range(20):
        data["s_a1"].add((j, DOMAIN + j))
        data["s_a2"].add((DOMAIN + j, 2 * DOMAIN + j))
        for i in range(ALTERNATIVES):
            data[f"s_a3_{i}"].add((2 * DOMAIN + j, 1000 + i))
    query = parse_query("Q(x0, x3) :- P:A1(x0, x1), P:A2(x1, x2), P:A3(x2, x3)")
    return pdms, query, data


def test_shared_engine_beats_per_rewriting_evaluation(baseline_recorder):
    """Acceptance gate: ≥ 2× over per-rewriting evaluation at ≥ 50% sharing."""
    pdms, query, data = _sharing_workload()
    result = reformulate(pdms, query)
    result.all_rewritings()  # enumeration cost paid up front for every engine

    expected = evaluate_reformulation(result, data, engine="plan")
    assert expected  # the engineered matching chains guarantee answers
    assert evaluate_reformulation(result, data, engine="shared") == expected
    assert evaluate_reformulation(result, data, engine="backtracking") == expected

    rounds = 3 if QUICK else 5
    per_rewriting_plan = _best_seconds(
        lambda: evaluate_reformulation(result, data, engine="plan"), rounds)
    per_rewriting_bt = _best_seconds(
        lambda: evaluate_reformulation(result, data, engine="backtracking"), rounds)
    shared = _best_seconds(
        lambda: evaluate_reformulation(result, data, engine="shared"), rounds)

    plan = compile_reformulation(result, data)
    list(plan.fragments())
    stats = plan.stats
    shared_fraction = stats.sharing_ratio
    speedup = per_rewriting_plan / shared

    baseline_recorder["shared_vs_per_rewriting"] = {
        "rewritings": float(stats.rewritings),
        "unique_fragments": float(stats.unique_fragments),
        "fragment_references": float(stats.fragment_references),
        "shared_reference_fraction": shared_fraction,
        "per_rewriting_plan_seconds": per_rewriting_plan,
        "per_rewriting_backtracking_seconds": per_rewriting_bt,
        "shared_seconds": shared,
        "speedup_vs_plan": speedup,
        "speedup_vs_backtracking": per_rewriting_bt / shared,
    }
    assert shared_fraction >= 0.5, (
        f"workload shares only {shared_fraction:.0%} of subgoal references"
    )
    assert speedup >= 2.0, (
        f"shared engine only {speedup:.1f}x faster than per-rewriting plan "
        f"evaluation ({shared * 1e3:.1f} ms vs {per_rewriting_plan * 1e3:.1f} ms)"
    )


def test_parallel_execution_agrees_and_is_recorded(baseline_recorder):
    """Thread-pooled fragment evaluation: identical answers; timing recorded."""
    pdms, query, data = _sharing_workload()
    result = reformulate(pdms, query)
    plan = compile_reformulation(result, data)
    sequential_answers = evaluate_plan(plan, data)
    parallel_answers = evaluate_plan(plan, data, max_workers=4)
    assert parallel_answers == sequential_answers

    rounds = 3 if QUICK else 5
    sequential = _best_seconds(lambda: evaluate_plan(plan, data), rounds)
    parallel = _best_seconds(
        lambda: evaluate_plan(plan, data, max_workers=4), rounds)
    baseline_recorder["parallel_execution"] = {
        "sequential_seconds": sequential,
        "parallel_seconds_4_workers": parallel,
        "parallel_speedup": sequential / parallel,
        "answers": float(len(sequential_answers)),
    }


def test_federated_source_beats_combine_then_evaluate(baseline_recorder):
    """No-copy federation vs ``combine_peer_instances`` on per-peer data."""
    num_peers = 12 if QUICK else 40
    rows_per_peer = 800 if QUICK else 3000
    pdms = PDMS()
    data = {}
    rng = random.Random(11)
    for p in range(num_peers):
        name = f"B{p}"
        peer = pdms.add_peer(name)
        peer.add_relation("r", ["x", "y"])
        pdms.add_storage_description(StorageDescription(
            name, f"s{p}", parse_query(f"V(x, y) :- {name}:r(x, y)")))
        instance = Instance()
        instance.add_all(
            f"s{p}",
            {(rng.randrange(500), rng.randrange(500)) for _ in range(rows_per_peer)},
        )
        data[name] = instance

    # The query touches one peer's relation; the combine path still pays
    # for copying every peer's rows on every call.
    query = parse_query("Q(x, y) :- B0:r(x, y)")
    result = reformulate(pdms, query)
    result.all_rewritings()

    federated_answers = evaluate_reformulation(result, PeerFactSource(data))
    combined_answers = evaluate_reformulation(result, combine_peer_instances(data))
    assert federated_answers == combined_answers

    rounds = 3 if QUICK else 5
    combine_path = _best_seconds(
        lambda: evaluate_reformulation(result, combine_peer_instances(data)), rounds)
    federated_path = _best_seconds(
        lambda: evaluate_reformulation(result, PeerFactSource(data)), rounds)
    speedup = combine_path / federated_path
    baseline_recorder["federated_vs_combine"] = {
        "peers": float(num_peers),
        "rows_per_peer": float(rows_per_peer),
        "combine_then_evaluate_seconds": combine_path,
        "federated_seconds": federated_path,
        "federation_speedup": speedup,
    }
    assert speedup >= 1.5, (
        f"federated source only {speedup:.1f}x faster than combine-then-evaluate"
    )
