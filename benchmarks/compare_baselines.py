"""Benchmark-regression guard: compare BENCH_*.json headline ratios.

Usage::

    python benchmarks/compare_baselines.py BASELINE_DIR CANDIDATE_DIR \
        [--tolerance 0.30] [--allow-mode-mismatch]

Compares the *headline ratios* of every known ``BENCH_*.json`` present in
both directories and exits non-zero when any candidate ratio regresses by
more than ``--tolerance`` (default 30%) relative to the committed
baseline.  Only dimensionless, higher-is-better ratios (speedups, hit
rates, sharing fractions) are guarded — absolute seconds depend on the
machine and would false-alarm on every hardware change, while ratios are
approximately transferable.

Files whose ``quick_mode`` flag differs between baseline and candidate
are skipped by default (quick workloads legitimately produce different
ratios); pass ``--allow-mode-mismatch`` to compare them anyway.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Headline metrics per benchmark file: dotted paths into the JSON plus a
#: noise class, every one dimensionless and higher-is-better.
#:
#: ``exact`` metrics are deterministic for a given workload (hit rates,
#: sharing fractions) and are guarded at the CLI tolerance (default 30%).
#: ``timing`` metrics are wall-clock speedups whose run-to-run drift on a
#: shared runner routinely exceeds 30% (small warm denominators), so they
#: are guarded at the wider :data:`TIMING_TOLERANCE` — loose enough not
#: to flake, tight enough to catch an order-of-magnitude regression.
HEADLINES: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "BENCH_service.json": (
        ("cases.cache_hit_vs_cold.reformulation_speedup", "timing"),
        ("cases.cache_hit_vs_cold.answer_speedup", "timing"),
        ("cases.churn_throughput.speedup_vs_starved", "timing"),
        ("cases.churn_throughput.hit_rate", "exact"),
    ),
    "BENCH_union_plan.json": (
        ("cases.shared_vs_per_rewriting.speedup_vs_plan", "timing"),
        ("cases.shared_vs_per_rewriting.speedup_vs_backtracking", "timing"),
        ("cases.shared_vs_per_rewriting.shared_reference_fraction", "exact"),
        ("cases.federated_vs_combine.federation_speedup", "timing"),
    ),
    "BENCH_materialization.json": (
        ("cases.warm_vs_cold.warm_speedup", "timing"),
        ("cases.write_mix.fragment_hit_rate", "exact"),
        ("cases.bushy_sharing.bushy_shared_subgoal_ratio", "exact"),
        ("cases.bushy_sharing.bushy_speedup", "timing"),
    ),
    "BENCH_columnar.json": (
        ("cases.kernel_vs_row.join_speedup", "timing"),
        ("cases.kernel_vs_row.fused_select_speedup", "timing"),
        ("cases.columnar_engine.end_to_end_speedup", "timing"),
        ("cases.parallel.thread_speedup_4_workers", "timing"),
    ),
    "BENCH_distributed.json": (
        ("cases.scatter_gather.speedup_vs_serial", "timing"),
        ("cases.transport_overhead.loopback_relative_throughput", "timing"),
        ("cases.concurrent_clients.concurrency_speedup", "timing"),
    ),
    "BENCH_sharding.json": (
        ("cases.churn_scaling.qps_scaling_1_to_4", "timing"),
        ("cases.cache_tier_warm.warm_speedup", "timing"),
        ("cases.partition_pruning.scan_prune_factor", "exact"),
    ),
    "BENCH_adaptive.json": (
        ("cases.convergence.adaptive_speedup", "timing"),
        ("cases.convergence.q_error_drop", "exact"),
    ),
    "BENCH_tail_latency.json": (
        ("cases.hedged_vs_unhedged.p99_improvement", "timing"),
        ("cases.retry_completeness.healed_complete", "exact"),
        ("cases.delta_vs_full.rows_ratio", "exact"),
    ),
    "BENCH_observability.json": (
        ("cases.tracing_off.overhead_margin", "timing"),
        ("cases.tracing_on.off_vs_on_ratio", "timing"),
    ),
    # BENCH_eval.json records absolute per-case timings only (no
    # machine-portable ratios), so it has nothing to guard here.
}

#: Allowed fractional regression for ``timing`` metrics.
TIMING_TOLERANCE = 0.60


def _lookup(document: dict, dotted: str) -> Optional[float]:
    node = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def compare_file(
    name: str,
    baseline: dict,
    candidate: dict,
    tolerance: float,
    allow_mode_mismatch: bool,
) -> Tuple[List[str], List[str]]:
    """Returns (failures, notes) for one benchmark file."""
    failures: List[str] = []
    notes: List[str] = []
    if (
        baseline.get("quick_mode") != candidate.get("quick_mode")
        and not allow_mode_mismatch
    ):
        notes.append(
            f"{name}: skipped (quick_mode {baseline.get('quick_mode')} vs "
            f"{candidate.get('quick_mode')}; ratios are not comparable "
            f"across workload sizes)"
        )
        return failures, notes
    for path, kind in HEADLINES[name]:
        base_value = _lookup(baseline, path)
        cand_value = _lookup(candidate, path)
        if base_value is None:
            notes.append(f"{name}: {path} absent from baseline (new metric)")
            continue
        if cand_value is None:
            failures.append(
                f"{name}: {path} missing from candidate (was {base_value:.3g})"
            )
            continue
        allowed = max(tolerance, TIMING_TOLERANCE) if kind == "timing" else tolerance
        floor = base_value * (1.0 - allowed)
        status = "OK" if cand_value >= floor else "REGRESSED"
        line = (
            f"{name}: {path} [{kind}]: baseline {base_value:.3g}, "
            f"candidate {cand_value:.3g}, floor {floor:.3g} -> {status}"
        )
        notes.append(line)
        if cand_value < floor:
            failures.append(line)
    return failures, notes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", type=Path,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("candidate_dir", type=Path,
                        help="directory holding the freshly recorded BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--allow-mode-mismatch", action="store_true",
                        help="compare files even when quick_mode differs")
    args = parser.parse_args(argv)

    all_failures: List[str] = []
    compared = 0
    for name in sorted(HEADLINES):
        base_path = args.baseline_dir / name
        cand_path = args.candidate_dir / name
        if not base_path.exists():
            print(f"{name}: no committed baseline; skipping")
            continue
        if not cand_path.exists():
            all_failures.append(
                f"{name}: baseline exists but candidate run produced no file"
            )
            continue
        baseline = json.loads(base_path.read_text())
        candidate = json.loads(cand_path.read_text())
        failures, notes = compare_file(
            name, baseline, candidate, args.tolerance, args.allow_mode_mismatch
        )
        for note in notes:
            print(note)
        compared += 1
        all_failures.extend(failures)

    if all_failures:
        print(f"\n{len(all_failures)} headline regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall guarded headlines within {args.tolerance:.0%} "
          f"({compared} file(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
