"""Distributed runtime benchmarks: overhead, scatter-gather, concurrency.

Backs the ISSUE-5 acceptance criteria:

* **transport_overhead** — the same workload answered through the
  in-process federated source (``"shared"`` engine) vs through the full
  loopback peer boundary (``"distributed"`` engine): the wire contract's
  overhead, measured as relative throughput;
* **scatter_gather** — with injected per-RPC latency, prefetching a
  multi-peer scan set concurrently must beat issuing the same scans
  serially by **more than 2×** (the acceptance gate);
* **concurrent_clients** — N clients hammering one
  :class:`~repro.pdms.distributed.cluster.ServiceCluster` over a
  latency-injected transport vs the same mix issued sequentially.

Like the other benchmark modules, ``BENCH_distributed.json`` is written
next to this file when ``EVAL_BENCH_RECORD=1``, and ``EVAL_BENCH_QUICK=1``
shrinks the workloads for CI smoke runs.  The guarded headline ratios are
registered in ``compare_baselines.py``.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.datalog.indexing import WILDCARD
from repro.pdms import (
    PDMS,
    LoopbackTransport,
    QueryService,
    RemotePeerFactSource,
    ServiceCluster,
    StorageDescription,
)

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Data-bearing peers in the fan-out workload.
PEERS = 6 if QUICK else 8
#: Rows per peer relation.
ROWS = 400 if QUICK else 2000
#: Injected per-RPC latency for the scatter/concurrency cases (seconds).
DELAY = 0.002
#: Concurrent clients in the throughput case.
CLIENTS = 6 if QUICK else 8
#: Queries per client in the throughput case.
CLIENT_QUERIES = 4 if QUICK else 8


def _best_seconds(callable_: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_distributed.json when asked."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_distributed.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def _fanout_workload(peers=PEERS, rows=ROWS):
    """``Q(x, y) :- T:R_i(x, y)`` per peer — one independent scan each.

    Every peer owns one stored relation feeding one peer relation; the
    union query over all of them scatter-gathers one scan per peer, the
    purest shape for measuring the peer boundary itself.
    """
    pdms = PDMS("fanout")
    top = pdms.add_peer("T")
    data: Dict[str, Instance] = {}
    rng = random.Random(17)
    queries = []
    for index in range(peers):
        relation = f"R{index}"
        top.add_relation(relation, ["x", "y"])
        peer_name = f"P{index}"
        stored = f"s_r{index}"
        pdms.add_peer(peer_name)
        pdms.add_storage_description(StorageDescription(
            peer_name, stored,
            parse_query(f"V(x, y) :- T:{relation}(x, y)"),
            exact=False, name=f"store_{stored}",
        ))
        data[peer_name] = Instance.from_dict({
            stored: {(rng.randrange(10_000), rng.randrange(10_000))
                     for _ in range(rows)},
        })
        queries.append(parse_query(f"Q(x, y) :- T:{relation}(x, y)"))
    # One query that touches every peer (distinct variables per atom pair
    # keep it cheap: it is a scan fan-out, not a giant join).
    return pdms, data, queries


def test_transport_overhead_vs_in_process(baseline_recorder):
    """The loopback peer boundary stays within sane overhead of in-process."""
    pdms, data, queries = _fanout_workload()
    in_process = QueryService(
        pdms, data=data, engine="shared", fragment_cache_bytes=0)
    cluster = ServiceCluster(
        pdms=pdms, transport=LoopbackTransport(data), fragment_cache_bytes=0)
    expected = [in_process.answer(query) for query in queries]
    observed = [cluster.answer(query).rows for query in queries]
    assert [frozenset(rows) for rows in expected] == list(observed)

    rounds = 3 if QUICK else 5

    def run_in_process():
        for query in queries:
            in_process.answer(query)

    def run_distributed():
        for query in queries:
            cluster.answer(query)

    in_process_seconds = _best_seconds(run_in_process, rounds)
    distributed_seconds = _best_seconds(run_distributed, rounds)
    ratio = in_process_seconds / distributed_seconds

    baseline_recorder["transport_overhead"] = {
        "peers": float(PEERS),
        "rows_per_peer": float(ROWS),
        "in_process_seconds": in_process_seconds,
        "distributed_seconds": distributed_seconds,
        "loopback_relative_throughput": ratio,
    }
    # The boundary may cost something, but not an order of magnitude.
    assert ratio > 0.1, (
        f"loopback boundary is {1 / ratio:.1f}x slower than in-process"
    )
    cluster.close()


def test_scatter_gather_beats_serial_remote_scans(baseline_recorder):
    """Acceptance gate: concurrent scatter > 2× serial on latent transports."""
    pdms, data, queries = _fanout_workload()
    transport = LoopbackTransport(data, delay=DELAY)
    source = RemotePeerFactSource(transport)
    requests = [
        (f"s_r{index}", (WILDCARD, WILDCARD)) for index in range(PEERS)
    ]

    rounds = 3 if QUICK else 5

    def serial():
        source.drop_memo()
        source.prefetch(requests, parallel=False)

    def scattered():
        source.drop_memo()
        source.prefetch(requests, parallel=True)

    serial_seconds = _best_seconds(serial, rounds)
    scatter_seconds = _best_seconds(scattered, rounds)
    speedup = serial_seconds / scatter_seconds

    # Both paths fetched identical rows.
    source.drop_memo()
    source.prefetch(requests)
    total = sum(len(source.get_matching(*request)) for request in requests)
    assert total == sum(
        instance.total_rows() for instance in data.values()
    )

    baseline_recorder["scatter_gather"] = {
        "peers": float(PEERS),
        "scans": float(len(requests)),
        "injected_delay_seconds": DELAY,
        "serial_seconds": serial_seconds,
        "scatter_seconds": scatter_seconds,
        "speedup_vs_serial": speedup,
    }
    assert speedup > 2.0, (
        f"scatter-gather only {speedup:.2f}x over serial remote scans"
    )
    source.close()


def test_throughput_under_concurrent_clients(baseline_recorder):
    """N clients over one cluster beat the same mix issued sequentially."""
    pdms, data, queries = _fanout_workload()
    transport = LoopbackTransport(data, delay=DELAY / 2)
    cluster = ServiceCluster(pdms=pdms, transport=transport)
    mix = [
        queries[(client + step) % len(queries)]
        for client in range(CLIENTS)
        for step in range(CLIENT_QUERIES)
    ]
    # Warm the reformulation/plan caches so both arms measure execution.
    for query in queries:
        cluster.answer(query)

    rounds = 3 if QUICK else 4

    def sequential():
        for query in mix:
            cluster.answer(query)

    def concurrent():
        cluster.answer_many(mix, workers=CLIENTS)

    sequential_seconds = _best_seconds(sequential, rounds)
    concurrent_seconds = _best_seconds(concurrent, rounds)
    speedup = sequential_seconds / concurrent_seconds

    baseline_recorder["concurrent_clients"] = {
        "clients": float(CLIENTS),
        "queries": float(len(mix)),
        "sequential_seconds": sequential_seconds,
        "concurrent_seconds": concurrent_seconds,
        "concurrency_speedup": speedup,
        "throughput_qps": len(mix) / concurrent_seconds,
        "peak_inflight": float(cluster.peak_inflight),
    }
    assert speedup > 1.2, (
        f"concurrent clients only {speedup:.2f}x over sequential"
    )
    cluster.close()
