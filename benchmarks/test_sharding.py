"""Sharding benchmarks: scale-out, partition pruning, the cache tier.

Backs the ISSUE-8 acceptance criteria:

* **churn_scaling** — a churn workload (every answer is followed by a
  routed insert, so every answer must re-scan) served by one worker vs
  the same relation hash-partitioned across four workers, on a transport
  whose per-row cost is a GIL-released sleep.  The scatter-gather engine
  scans the four shards concurrently, so QPS must scale **≥ 2.5×** from
  1 → 4 workers (the acceptance gate);
* **partition_pruning** — a constant-bound point lookup must touch only
  the shard that owns the constant (per-shard scan counters), while the
  full scan still fans out to every shard;
* **cache_tier_warm** — a second process-shaped consumer (separate
  transport, fresh local cache) answering a query whose fragment already
  sits in the shared cache tier must beat recomputing it from the data
  shards cold.

``BENCH_sharding.json`` is written next to this file when
``EVAL_BENCH_RECORD=1``; ``EVAL_BENCH_QUICK=1`` shrinks the workloads
for CI smoke runs.  Headline ratios are guarded in
``compare_baselines.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.pdms import (
    PDMS,
    CacheTierClient,
    FragmentStore,
    LoopbackTransport,
    ServiceCluster,
    StorageDescription,
    auto_shard,
)
from repro.pdms.distributed.cache_tier import CACHE_PEER

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Rows in the sharded relation.
ROWS = 600 if QUICK else 2000
#: Worker count for the scaled arm (the acceptance gate is 1 → 4).
SHARDS = 4
#: Per-row transport cost (seconds) — a GIL-released sleep, standing in
#: for wire serialisation + remote scan work.  This is what makes shard
#: scans overlap: four concurrent quarter-size scans finish in a quarter
#: of the time of one serial full-size scan.
ROW_COST = 100e-6 if QUICK else 50e-6
#: answer+insert iterations per churn measurement.
CHURN_STEPS = 4 if QUICK else 8


def _best_seconds(callable_: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_sharding.json when asked."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_sharding.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def _single_relation_pdms() -> PDMS:
    pdms = PDMS("sharding-bench")
    top = pdms.add_peer("T")
    top.add_relation("R", ["x", "y"])
    pdms.add_peer("P")
    pdms.add_storage_description(StorageDescription(
        "P", "sr", parse_query("V(x, y) :- T:R(x, y)"),
        exact=False, name="store_sr",
    ))
    return pdms


def _dataset(rows: int = ROWS) -> Instance:
    return Instance.from_dict({"sr": {(i, i % 97) for i in range(rows)}})


def _sharded_cluster(shards: int, row_cost: float = ROW_COST,
                     cache_tier=None) -> tuple:
    """A ServiceCluster over ``shards`` workers holding ``sr``."""
    shard_map, workers = auto_shard({"P": _dataset()}, shards)
    transport = LoopbackTransport(workers, row_cost=row_cost)
    # delta=False: this benchmark measures how *full-relation* re-scans
    # scale with scatter width; delta-shipping would reduce every churn
    # re-scan to a single shipped row and both arms would measure fixed
    # overhead (the delta path has its own benchmark in
    # test_tail_latency.py).
    cluster = ServiceCluster(
        pdms=_single_relation_pdms(), transport=transport,
        shard_map=shard_map if shards > 1 else None,
        cache_tier=cache_tier, delta=False,
    )
    return cluster, transport, workers


def test_churn_qps_scales_with_workers(baseline_recorder):
    """Acceptance gate: churn QPS scales ≥ 2.5× from 1 to 4 workers."""
    full_scan = parse_query("Q(x, y) :- T:R(x, y)")

    def churn_arm(shards: int) -> float:
        cluster, _, _ = _sharded_cluster(shards)
        next_key = ROWS
        with cluster:
            # Warm reformulation/plan caches so both arms measure execution.
            cluster.answer(full_scan)

            def steps():
                nonlocal next_key
                for _ in range(CHURN_STEPS):
                    # Insert first: the answer below must re-scan.
                    cluster.insert("sr", [(next_key, next_key % 97)])
                    next_key += 1
                    answer = cluster.answer(full_scan)
                    assert answer.complete
            return _best_seconds(steps, 2 if QUICK else 3)

    single_seconds = churn_arm(1)
    sharded_seconds = churn_arm(SHARDS)
    single_qps = CHURN_STEPS / single_seconds
    sharded_qps = CHURN_STEPS / sharded_seconds
    scaling = sharded_qps / single_qps

    baseline_recorder["churn_scaling"] = {
        "rows": float(ROWS),
        "workers": float(SHARDS),
        "row_cost_seconds": ROW_COST,
        "churn_steps": float(CHURN_STEPS),
        "single_worker_qps": single_qps,
        "sharded_qps": sharded_qps,
        "qps_scaling_1_to_4": scaling,
    }
    assert scaling > 2.5, (
        f"churn QPS only scaled {scaling:.2f}x from 1 to {SHARDS} workers"
    )


def test_point_lookup_touches_only_owning_shard(baseline_recorder):
    """A constant-bound lookup is pruned to one shard; full scans fan out."""
    cluster, transport, workers = _sharded_cluster(SHARDS, row_cost=0.0)
    with cluster:
        # Full scan: every shard is scanned exactly once.
        answer = cluster.answer(parse_query("Q(x, y) :- T:R(x, y)"))
        assert answer.complete and len(answer.rows) == ROWS
        fanout_counts = {p: transport.scan_count(p) for p in workers}
        assert all(count >= 1 for count in fanout_counts.values())

        # Point lookups: only the owning shard's counter may move.
        lookups = 32
        before = {p: transport.scan_count(p) for p in workers}
        for key in range(lookups):
            rows = cluster.answer(parse_query(f"Q(y) :- T:R({key}, y)")).rows
            assert rows == frozenset({(key % 97,)})
        touched = {
            p: transport.scan_count(p) - before[p]
            for p in workers
            if transport.scan_count(p) > before[p]
        }
        total_scans = sum(touched.values())
        scatter = cluster.describe()["scatter"]

    # Each pruned lookup issues exactly one shard scan — N lookups cost N
    # scans instead of N × SHARDS.
    assert total_scans == lookups, touched
    assert scatter["pruned_scans"] >= lookups
    prune_factor = (lookups * SHARDS) / total_scans

    baseline_recorder["partition_pruning"] = {
        "workers": float(SHARDS),
        "point_lookups": float(lookups),
        "shard_scans_issued": float(total_scans),
        "pruned_scans": float(scatter["pruned_scans"]),
        "fanout_scans": float(scatter["fanout_scans"]),
        "scan_prune_factor": prune_factor,
    }
    assert prune_factor == float(SHARDS)


def test_cache_tier_warm_beats_cold_compute(baseline_recorder, monkeypatch):
    """A tier-warm consumer skips the shard scans a cold compute pays for."""
    # Stay hermetic under a REPRO_CACHE_TIER=1 CI leg: the cold arm must
    # not inherit the process-global default tier.
    monkeypatch.delenv("REPRO_CACHE_TIER", raising=False)
    # A join fragment: always cache-worthy (unrestricted scans are not).
    query = parse_query("Q(x, z) :- T:R(x, y), T:R(y, z)")
    shard_map, workers = auto_shard({"P": _dataset()}, SHARDS)
    store = FragmentStore()
    tier_transport = LoopbackTransport({CACHE_PEER: store})
    rounds = 3 if QUICK else 5

    # Producer: separate transport over the SAME live shard instances
    # (version tokens are instance-scoped, so tier entries transfer).
    with ServiceCluster(
        pdms=_single_relation_pdms(),
        transport=LoopbackTransport(workers, row_cost=ROW_COST),
        shard_map=shard_map,
        cache_tier=CacheTierClient(tier_transport),
    ) as producer:
        assert len(producer.answer(query).rows) == ROWS
        assert producer.stats.fragments.tier_puts >= 1

    def consumer(cache_tier):
        return ServiceCluster(
            pdms=_single_relation_pdms(),
            transport=LoopbackTransport(workers, row_cost=ROW_COST),
            shard_map=shard_map,
            cache_tier=cache_tier,
        )

    with consumer(cache_tier=None) as cold:
        cold.answer(query)  # warm plans; scans stay cold via drop_memo

        def cold_round():
            cold.service.fragment_cache.clear()
            cold.source.drop_memo()
            assert len(cold.answer(query).rows) == ROWS
        cold_seconds = _best_seconds(cold_round, rounds)
        cold_hits = cold.stats.fragments.tier_hits

    with consumer(cache_tier=CacheTierClient(tier_transport)) as warm:
        warm.answer(query)  # warm plans + first tier fetch

        def warm_round():
            warm.service.fragment_cache.clear()
            warm.source.drop_memo()
            assert len(warm.answer(query).rows) == ROWS
        warm_seconds = _best_seconds(warm_round, rounds)
        warm_hits = warm.stats.fragments.tier_hits

    assert cold_hits == 0
    assert warm_hits >= rounds
    speedup = cold_seconds / warm_seconds

    baseline_recorder["cache_tier_warm"] = {
        "rows": float(ROWS),
        "workers": float(SHARDS),
        "row_cost_seconds": ROW_COST,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "tier_hits": float(warm_hits),
        "warm_speedup": speedup,
    }
    assert speedup > 1.5, (
        f"tier-warm answer only {speedup:.2f}x faster than cold compute"
    )
