"""Full experiment harness: regenerates the paper's Figure 3 and Figure 4.

Usage::

    python benchmarks/harness.py --figure 3            # tree size sweep
    python benchmarks/harness.py --figure 4            # rewriting-time sweep
    python benchmarks/harness.py --figure all          # both
    python benchmarks/harness.py --figure 3 --max-diameter 10 --runs 10

The harness prints one table per figure with the same rows/series the paper
plots (diameter on the x axis, one column per %dd series for Figure 3; the
first/tenth/all rewriting times for Figure 4), plus the node-generation
rate the paper quotes in the text.  Absolute numbers differ from the 2003
testbed; EXPERIMENTS.md records a captured run next to the paper's values
and discusses the shapes.

The pytest-benchmark files in this directory cover reduced ranges of the
same sweeps so that ``pytest benchmarks/ --benchmark-only`` stays quick;
this script is the "full fidelity" path.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List, Optional, Sequence

from bench_common import PAPER_NUM_PEERS, ReformulationSample, average_samples, run_reformulation

#: Series of definitional-mapping percentages plotted in Figure 3.
FIG3_RATIOS = (0.0, 0.10, 0.25, 0.50)
#: Definitional-mapping percentage used in Figure 4.
FIG4_RATIO = 0.10


def _format_float(value: Optional[float], scale: float = 1.0, digits: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value * scale:.{digits}f}"


def run_figure3(
    diameters: Sequence[int], runs: int, num_peers: int = PAPER_NUM_PEERS
) -> List[dict]:
    """Figure 3: average rule-goal-tree size per (diameter, %dd)."""
    rows = []
    for diameter in diameters:
        row = {"diameter": diameter}
        for ratio in FIG3_RATIOS:
            samples = [
                run_reformulation(diameter, ratio, seed, num_peers=num_peers)
                for seed in range(runs)
            ]
            averages = average_samples(samples)
            row[f"dd={int(ratio * 100)}%"] = averages["tree_nodes"]
            row[f"dd={int(ratio * 100)}%_seconds"] = averages["build_seconds"]
        rows.append(row)
    return rows


def print_figure3(rows: List[dict]) -> None:
    print("\nFigure 3 — #nodes in the rule-goal tree (96-peer PDMS)")
    header = ["diameter"] + [f"dd={int(r * 100)}%" for r in FIG3_RATIOS]
    print("  " + " | ".join(f"{h:>10s}" for h in header))
    print("  " + "-+-".join("-" * 10 for _ in header))
    for row in rows:
        cells = [f"{row['diameter']:>10d}"] + [
            f"{row[f'dd={int(r * 100)}%']:>10.0f}" for r in FIG3_RATIOS
        ]
        print("  " + " | ".join(cells))
    print("\n  node-generation rate (nodes/second of tree-construction time):")
    for row in rows:
        rates = []
        for ratio in FIG3_RATIOS:
            nodes = row[f"dd={int(ratio * 100)}%"]
            seconds = row[f"dd={int(ratio * 100)}%_seconds"]
            rates.append(f"{nodes / seconds:>9.0f}" if seconds else "        -")
        print(f"  {row['diameter']:>10d} " + " | ".join(rates))


def run_figure4(
    diameters: Sequence[int], runs: int, num_peers: int = PAPER_NUM_PEERS
) -> List[dict]:
    """Figure 4: time to the 1st / 10th / all rewritings at dd=10%."""
    rows = []
    for diameter in diameters:
        samples = [
            run_reformulation(
                diameter, FIG4_RATIO, seed, num_peers=num_peers, measure_rewritings=True
            )
            for seed in range(runs)
        ]
        averages = average_samples(samples)
        averages["diameter"] = diameter
        rows.append(averages)
    return rows


def print_figure4(rows: List[dict]) -> None:
    print("\nFigure 4 — running time in milliseconds (96 peers, 10% dd)")
    header = ["diameter", "1st rewriting", "10th rewriting", "all rewritings", "#rewritings"]
    print("  " + " | ".join(f"{h:>14s}" for h in header))
    print("  " + "-+-".join("-" * 14 for _ in header))
    for row in rows:
        print(
            "  "
            + " | ".join(
                [
                    f"{row['diameter']:>14d}",
                    f"{_format_float(row['first_rewriting_seconds'], 1000.0):>14s}",
                    f"{_format_float(row['tenth_rewriting_seconds'], 1000.0):>14s}",
                    f"{_format_float(row['all_rewritings_seconds'], 1000.0):>14s}",
                    f"{_format_float(row['rewriting_count'], 1.0, 0):>14s}",
                ]
            )
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=["3", "4", "all"], default="all")
    parser.add_argument("--max-diameter", type=int, default=8,
                        help="largest PDMS diameter to sweep (paper: 10)")
    parser.add_argument("--max-diameter-fig4", type=int, default=6,
                        help="largest diameter for the all-rewritings sweep "
                             "(step 3 is exponential; see EXPERIMENTS.md)")
    parser.add_argument("--runs", type=int, default=5,
                        help="runs averaged per data point (paper: 100)")
    parser.add_argument("--num-peers", type=int, default=PAPER_NUM_PEERS)
    args = parser.parse_args(argv)

    started = time.perf_counter()
    if args.figure in ("3", "all"):
        diameters = list(range(1, args.max_diameter + 1))
        print_figure3(run_figure3(diameters, args.runs, args.num_peers))
    if args.figure in ("4", "all"):
        diameters = list(range(1, args.max_diameter_fig4 + 1))
        print_figure4(run_figure4(diameters, args.runs, args.num_peers))
    print(f"\ntotal harness time: {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
