"""Columnar batch-execution benchmarks (ISSUE 6).

Backs the acceptance criteria:

* the vectorized equi-join / fused-select kernels are at least 5× faster
  than the row algebra on a large join whose inputs are already columnar
  (asserted only when NumPy is installed — the pure-Python fallback is a
  compatibility path, not a fast path);
* with 4 workers, thread-pooled fragment evaluation over columnar
  batches reaches ≥ 2× over sequential — the NumPy kernels release the
  GIL, which is exactly the ceiling the old row engine could not break.
  The assertion is gated on ``os.cpu_count() >= 4``; on smaller machines
  the honest numbers are still recorded;
* the end-to-end columnar engine is no slower than the row-at-a-time
  shared engine on the same compiled plan (recorded; answers asserted
  identical).

``BENCH_columnar.json`` is written next to this file when
``EVAL_BENCH_RECORD=1``; ``EVAL_BENCH_QUICK=1`` shrinks the workloads.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.database import HAVE_NUMPY, ColumnTable, Table
from repro.datalog import parse_query
from repro.pdms import (
    PDMS,
    StorageDescription,
    compile_reformulation,
    evaluate_plan,
    reformulate,
)

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Rows per side of the kernel microbenchmark join.
KERNEL_ROWS = 30000 if QUICK else 200000
#: Join-key domain for the microbenchmark (dense enough for ~1 match/row).
KERNEL_DOMAIN = 30000 if QUICK else 200000
#: Storage alternatives per subgoal in the parallel workload (branches =
#: ALTERNATIVES², each an independent join fragment).
ALTERNATIVES = 3 if QUICK else 4
#: Rows per stored relation in the parallel workload.
BRANCH_ROWS = 6000 if QUICK else 30000


def _best_seconds(callable_: Callable[[], object], rounds: int) -> float:
    """Best-of-N timing — robust to scheduler noise, used for assertions."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_columnar.json when asked to."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_columnar.json"
    path.write_text(
        json.dumps(
            {"quick_mode": QUICK, "numpy": HAVE_NUMPY, "cases": results},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def test_kernels_beat_row_algebra(baseline_recorder):
    """Acceptance gate: ≥ 5× on a large equi-join, inputs already columnar."""
    rng = random.Random(3)
    left_rows = {
        (rng.randrange(KERNEL_DOMAIN), rng.randrange(64))
        for _ in range(KERNEL_ROWS)
    }
    right_rows = {
        (rng.randrange(KERNEL_DOMAIN), rng.randrange(64))
        for _ in range(KERNEL_ROWS)
    }
    left = Table(("k", "a"), left_rows)
    right = Table(("k", "b"), right_rows)
    left_ct = ColumnTable.from_table(left)
    right_ct = ColumnTable.from_table(right)

    expected = left.natural_join(right)
    joined = left_ct.natural_join(right_ct)
    assert joined.row_set() == set(expected.rows)

    rounds = 3 if QUICK else 5
    row_join = _best_seconds(lambda: left.natural_join(right), rounds)
    kernel_join = _best_seconds(
        lambda: left_ct.natural_join(right_ct), rounds)
    join_speedup = row_join / kernel_join

    # Fused select: constant filter + column equality, one pass.
    wide = Table(
        ("x", "y", "z"),
        {(rng.randrange(64), rng.randrange(64), rng.randrange(64))
         for _ in range(KERNEL_ROWS)},
    )
    wide_ct = ColumnTable.from_table(wide)
    assert wide_ct.fused_select(
        const_filters=[(0, 7)], equal_pairs=[(1, 2)]
    ).row_set() == set(wide.select_eq("x", 7).select_columns_equal("y", "z").rows)
    row_select = _best_seconds(
        lambda: wide.select_eq("x", 7).select_columns_equal("y", "z"), rounds)
    kernel_select = _best_seconds(
        lambda: wide_ct.fused_select(const_filters=[(0, 7)],
                                     equal_pairs=[(1, 2)]),
        rounds,
    )
    select_speedup = row_select / kernel_select

    baseline_recorder["kernel_vs_row"] = {
        "rows_per_side": float(KERNEL_ROWS),
        "join_result_rows": float(len(joined)),
        "row_join_seconds": row_join,
        "kernel_join_seconds": kernel_join,
        "join_speedup": join_speedup,
        "row_select_seconds": row_select,
        "kernel_select_seconds": kernel_select,
        "fused_select_speedup": select_speedup,
    }
    if HAVE_NUMPY:
        assert join_speedup >= 5.0, (
            f"join kernel only {join_speedup:.1f}x faster than the row "
            f"algebra ({kernel_join * 1e3:.1f} ms vs {row_join * 1e3:.1f} ms)"
        )


def _branchy_workload():
    """``Q :- A, B`` with ``ALTERNATIVES`` storage descriptions per
    subgoal: ALTERNATIVES² rewritings, every one an *independent* join of
    two big stored relations — no sharing, so the thread pool has that
    many coarse fragments to spread across cores."""
    pdms = PDMS()
    peer = pdms.add_peer("P")
    peer.add_relation("A", ["x", "y"])
    peer.add_relation("B", ["x", "y"])
    rng = random.Random(17)
    data = {}
    for i in range(ALTERNATIVES):
        pdms.add_storage_description(StorageDescription(
            "P", f"s_a{i}", parse_query("V(x, y) :- P:A(x, y)")))
        pdms.add_storage_description(StorageDescription(
            "P", f"s_b{i}", parse_query("V(x, y) :- P:B(x, y)")))
        data[f"s_a{i}"] = {
            (rng.randrange(BRANCH_ROWS), rng.randrange(BRANCH_ROWS))
            for _ in range(BRANCH_ROWS)
        }
        data[f"s_b{i}"] = {
            (rng.randrange(BRANCH_ROWS), rng.randrange(BRANCH_ROWS))
            for _ in range(BRANCH_ROWS)
        }
    query = parse_query("Q(x0, x2) :- P:A(x0, x1), P:B(x1, x2)")
    return pdms, query, data


def test_parallel_speedup_over_columnar_fragments(baseline_recorder):
    """Acceptance gate: ≥ 2× with 4 workers (asserted on ≥ 4-core hosts)."""
    pdms, query, data = _branchy_workload()
    result = reformulate(pdms, query)
    plan = compile_reformulation(result, data)

    sequential_answers = evaluate_plan(plan, data)
    assert evaluate_plan(plan, data, max_workers=4) == sequential_answers
    assert evaluate_plan(
        plan, data, max_workers=4, executor="process") == sequential_answers

    rounds = 3 if QUICK else 5
    sequential = _best_seconds(lambda: evaluate_plan(plan, data), rounds)
    threaded = _best_seconds(
        lambda: evaluate_plan(plan, data, max_workers=4), rounds)
    processed = _best_seconds(
        lambda: evaluate_plan(plan, data, max_workers=4, executor="process"),
        rounds,
    )
    thread_speedup = sequential / threaded
    cpus = float(os.cpu_count() or 1)

    baseline_recorder["parallel"] = {
        "cpu_count": cpus,
        "branches": float(ALTERNATIVES * ALTERNATIVES),
        "rows_per_relation": float(BRANCH_ROWS),
        "sequential_seconds": sequential,
        "thread_seconds_4_workers": threaded,
        "process_seconds_4_workers": processed,
        "thread_speedup_4_workers": thread_speedup,
        "process_speedup_4_workers": sequential / processed,
        "answers": float(len(sequential_answers)),
    }
    if HAVE_NUMPY and (os.cpu_count() or 1) >= 4:
        assert thread_speedup >= 2.0, (
            f"4 workers only {thread_speedup:.2f}x over sequential on a "
            f"{cpus:.0f}-core host"
        )


def test_columnar_engine_end_to_end(baseline_recorder):
    """Whole-pipeline columnar vs row fragment evaluation, same plan."""
    pdms, query, data = _branchy_workload()
    result = reformulate(pdms, query)
    plan = compile_reformulation(result, data)

    columnar_answers = evaluate_plan(plan, data, columnar=True)
    assert evaluate_plan(plan, data, columnar=False) == columnar_answers

    rounds = 3 if QUICK else 5
    row_path = _best_seconds(
        lambda: evaluate_plan(plan, data, columnar=False), rounds)
    columnar_path = _best_seconds(
        lambda: evaluate_plan(plan, data, columnar=True), rounds)
    speedup = row_path / columnar_path
    baseline_recorder["columnar_engine"] = {
        "row_engine_seconds": row_path,
        "columnar_engine_seconds": columnar_path,
        "end_to_end_speedup": speedup,
        "answers": float(len(columnar_answers)),
    }
    if HAVE_NUMPY:
        assert speedup >= 1.0, (
            f"columnar end-to-end path is slower than the row path "
            f"({columnar_path * 1e3:.1f} ms vs {row_path * 1e3:.1f} ms)"
        )
