"""Ablation — MiniCon versus the Bucket algorithm for LAV rewriting.

The paper's inclusion expansion is built on MiniCon precisely because the
Bucket algorithm considers far more candidate combinations.  This ablation
quantifies that gap on a family of chain queries over replicated chain
views: both algorithms produce equivalent answers, Bucket takes visibly
longer as the query grows.
"""

from __future__ import annotations

import pytest

from repro.datalog import parse_query
from repro.datalog.queries import make_chain_query
from repro.integration import View, ViewSet, bucket_rewrite, minicon_rewrite


def _chain_scenario(length: int, copies: int = 2):
    """A chain query of ``length`` atoms plus ``copies`` views per pair."""
    relations = [f"e{i}" for i in range(length)]
    query = make_chain_query("Q", relations, fresh_prefix="q")
    views = []
    index = 0
    for start in range(length - 1):
        for copy in range(copies):
            pair = relations[start : start + 2]
            definition = make_chain_query(f"v{index}", pair, fresh_prefix=f"u{index}_")
            views.append(View(definition))
            index += 1
    for copy in range(copies):
        for position, relation in enumerate(relations):
            definition = make_chain_query(
                f"w{index}", [relation], fresh_prefix=f"s{index}_")
            views.append(View(definition))
            index += 1
    return query, ViewSet(views)


@pytest.mark.parametrize("length", [2, 3, 4])
def test_minicon_rewriting_time(benchmark, length):
    query, views = _chain_scenario(length)
    union = benchmark(lambda: minicon_rewrite(query, views))
    benchmark.extra_info["rewritings"] = len(union)
    benchmark.extra_info["query_length"] = length
    assert not union.is_empty()


@pytest.mark.parametrize("length", [2, 3, 4])
def test_bucket_rewriting_time(benchmark, length):
    query, views = _chain_scenario(length)
    union = benchmark(lambda: bucket_rewrite(query, views))
    benchmark.extra_info["rewritings"] = len(union)
    benchmark.extra_info["query_length"] = length
    assert not union.is_empty()


def test_minicon_and_bucket_agree(benchmark):
    """Both algorithms cover the same certain answers on this family."""
    from repro.datalog.evaluation import evaluate_union

    query, views = _chain_scenario(3)
    data = {}
    for view in views:
        # Populate each view with a tiny chain so joins succeed.
        data[view.name] = {(0, 1), (1, 2), (2, 3)} if view.arity == 2 else {(0,)}

    def both():
        return (
            evaluate_union(minicon_rewrite(query, views), data),
            evaluate_union(bucket_rewrite(query, views), data),
        )

    minicon_answers, bucket_answers = benchmark.pedantic(both, rounds=1, iterations=1)
    assert bucket_answers <= minicon_answers
