"""Adaptive-optimizer benchmarks: convergence speed and q-error drop.

Backs the ISSUE-7 acceptance criteria on a skewed, correlated workload
the static cost model misjudges — a hot join key hidden behind
near-uniform distinct counts, so the independence assumption prices the
trap join as tiny and the actually-tiny join as large:

* within ten executions of the same query, the adaptive service
  (``REPRO_ADAPTIVE``-style loop: measurement → corrections → racing)
  answers at least **1.3× faster** than the static service executing its
  locked-in plan;
* the **median q-error of join fragments drops at least 2×** between the
  first execution (model estimates) and the converged executions
  (correction-backed estimates).

Both arms run with the cross-call fragment cache off: what is measured
is plan quality, not table reuse.  ``BENCH_adaptive.json`` is written
next to this file when ``EVAL_BENCH_RECORD=1``; ``EVAL_BENCH_QUICK=1``
shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.pdms import PDMS, QueryService, StorageDescription

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Rows of A sharing the hot join key.
HOT_A = 50 if QUICK else 100
#: Rows of B under the hot key (the trap join yields HOT_A * HOT_B rows).
HOT_B = 1000 if QUICK else 2000
#: Near-distinct filler rows of B that hide the hot key from the
#: distinct-count statistics.
FILLER_B = 4000 if QUICK else 8000
#: Executions given to each arm (the acceptance window).
EXECUTIONS = 10


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_adaptive.json when asked."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_adaptive.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def _skewed_workload():
    """``Q :- A(x,y), B(y,z), C(z,w)`` with a correlated hot key.

    B's ``y`` column is almost all distinct (one hot value drowned in
    filler), so the model prices ``A ⋈ B`` at roughly
    ``|A|·|B| / distinct(B.y)`` — a few hundred rows — when the hot key
    actually produces ``HOT_A × HOT_B`` of them.  B's ``z`` column reuses
    a small domain, so ``B ⋈ C`` is priced in the thousands when only
    five rare rows of B reach C's range.  A static plan therefore joins
    A-B first and pays the blowup every execution; measured corrections
    flip the order to B-C first.
    """
    pdms = PDMS()
    peer = pdms.add_peer("P")
    peer.add_relation("A", ["x", "y"])
    peer.add_relation("B", ["y", "z"])
    peer.add_relation("C", ["z", "w"])
    pdms.add_storage_description(
        StorageDescription("P", "sa", parse_query("V(x, y) :- P:A(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "sb", parse_query("V(y, z) :- P:B(y, z)")))
    pdms.add_storage_description(
        StorageDescription("P", "sc", parse_query("V(z, w) :- P:C(z, w)")))
    instance = Instance()
    a_rows = [(i, 0) for i in range(HOT_A)]
    a_rows += [(HOT_A + 100 + i, 20000 + i) for i in range(5)]
    a_rows += [(HOT_A + i, 30000 + i) for i in range(95)]
    instance.add_all("sa", a_rows)
    b_rows = [(0, z) for z in range(HOT_B)]
    b_rows += [(20000 + i, 2000 + i) for i in range(5)]
    b_rows += [(40000 + i, i % HOT_B) for i in range(FILLER_B)]
    instance.add_all("sb", b_rows)
    # C is wide enough that |B|·|C| / distinct(B.z) safely out-prices the
    # A-B estimate, yet only B's five rare rows actually reach its range.
    instance.add_all("sc", [(2000 + i, i) for i in range(200)])
    query = parse_query("Q(x, w) :- P:A(x, y), P:B(y, z), P:C(z, w)")
    truth = frozenset((HOT_A + 100 + i, i) for i in range(5))
    return pdms, query, instance, truth


def _median_join_q(observations) -> float:
    """Median q-error over join-fragment observations (scans are exact
    by construction and would drown the signal at a constant 1.0)."""
    qs = [obs.q for obs in observations
          if obs.q is not None and len(obs.relations) >= 2]
    return statistics.median(qs) if qs else 0.0


def test_adaptive_converges_within_ten_executions(baseline_recorder):
    """Acceptance gates: ≥1.3× converged speedup, ≥2× median q-error drop."""
    pdms, query, instance, truth = _skewed_workload()
    adaptive = QueryService(pdms, data={"P": instance}, engine="shared",
                            adaptive=True, fragment_cache_bytes=0)
    # adaptive=False explicitly: under a REPRO_ADAPTIVE=1 CI leg the
    # static arm must stay the static baseline being measured against.
    static = QueryService(pdms, data={"P": instance}, engine="shared",
                          adaptive=False, fragment_cache_bytes=0)

    static_times = []
    for _ in range(EXECUTIONS):
        started = time.perf_counter()
        assert static.answer(query) == truth
        static_times.append(time.perf_counter() - started)

    adaptive_times = []
    windows = []  # observation-count boundaries per execution
    log = adaptive.feedback
    for _ in range(EXECUTIONS):
        before = len(log.observations())
        started = time.perf_counter()
        assert adaptive.answer(query) == truth
        adaptive_times.append(time.perf_counter() - started)
        windows.append((before, len(log.observations())))

    observations = log.observations()
    first_lo, first_hi = windows[0]
    last_lo, last_hi = windows[-1]
    q_first = _median_join_q(observations[first_lo:first_hi])
    q_converged = _median_join_q(observations[last_lo:last_hi])
    # A converged window with no fresh join observations (fully corrected
    # and memoized) counts as perfect.
    q_converged = max(q_converged, 1.0)
    q_drop = q_first / q_converged if q_converged else 0.0

    static_seconds = min(static_times)
    converged_seconds = min(adaptive_times[-3:])
    speedup = static_seconds / converged_seconds

    stats = adaptive.stats_snapshot().adaptive
    baseline_recorder["convergence"] = {
        "executions": float(EXECUTIONS),
        "answers": float(len(truth)),
        "static_seconds": static_seconds,
        "adaptive_first_seconds": adaptive_times[0],
        "adaptive_converged_seconds": converged_seconds,
        "adaptive_speedup": speedup,
        "q_error_median_first": q_first,
        "q_error_median_converged": q_converged,
        "q_error_drop": q_drop,
        "observations": float(stats.observations),
        "corrections": float(stats.corrections),
        "corrections_applied": float(stats.corrections_applied),
        "races_run": float(stats.races_run),
        "races_won": float(stats.races_won),
        "replans": float(stats.replans),
    }
    # The loop actually engaged: corrections were learned and a
    # differently-shaped plan was validated by racing.
    assert stats.corrections > 0 and stats.corrections_applied > 0
    assert stats.races_run > 0
    assert stats.races_mismatched == 0
    assert q_drop >= 2.0, (
        f"median join q-error only dropped {q_drop:.1f}x "
        f"({q_first:.1f} -> {q_converged:.1f})"
    )
    assert speedup >= 1.3, (
        f"adaptive converged at only {speedup:.2f}x vs static "
        f"({converged_seconds * 1e3:.2f} ms vs {static_seconds * 1e3:.2f} ms)"
    )


def test_adaptive_overhead_on_well_estimated_data(baseline_recorder):
    """The loop must be ~free when the model is already right: uniform
    data, no corrections above threshold, no races — and latency within
    noise of the static arm."""
    pdms = PDMS()
    peer = pdms.add_peer("P")
    peer.add_relation("A", ["x", "y"])
    peer.add_relation("B", ["y", "z"])
    pdms.add_storage_description(
        StorageDescription("P", "ua", parse_query("V(x, y) :- P:A(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "ub", parse_query("V(y, z) :- P:B(y, z)")))
    rows = 1000 if QUICK else 4000
    instance = Instance()
    instance.add_all("ua", [(i, i) for i in range(rows)])
    instance.add_all("ub", [(i, i + 1) for i in range(rows)])
    query = parse_query("Q(x, z) :- P:A(x, y), P:B(y, z)")

    adaptive = QueryService(pdms, data={"P": instance}, engine="shared",
                            adaptive=True, fragment_cache_bytes=0)
    static = QueryService(pdms, data={"P": instance}, engine="shared",
                          adaptive=False, fragment_cache_bytes=0)
    expected = static.answer(query)
    assert len(expected) == rows

    rounds = 5
    static_seconds = min(
        _timed(static, query) for _ in range(rounds))
    adaptive_seconds = min(
        _timed(adaptive, query) for _ in range(rounds))
    stats = adaptive.stats_snapshot().adaptive

    baseline_recorder["overhead"] = {
        "rows": float(rows),
        "static_seconds": static_seconds,
        "adaptive_seconds": adaptive_seconds,
        "relative_overhead": adaptive_seconds / static_seconds,
        "races_run": float(stats.races_run),
        "corrections": float(stats.corrections),
    }
    assert stats.races_run == 0  # nothing mis-estimated, nothing to race
    # Measurement overhead stays small (generous bound for CI noise).
    assert adaptive_seconds <= static_seconds * 3.0


def _timed(service, query) -> float:
    started = time.perf_counter()
    service.answer(query)
    return time.perf_counter() - started
