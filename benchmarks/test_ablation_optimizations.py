"""Ablation — effect of the Section-4.3 optimizations on reformulation.

The paper describes its optimizations qualitatively (memoization, dead-end
detection, unsatisfiable-label pruning, priority-ordered expansion) without
reporting separate numbers for them.  DESIGN.md therefore schedules this
ablation: each optimization is switched off individually and the tree size
and construction time are compared against the fully optimized
configuration on the same generated workloads.

Correctness is asserted alongside (every configuration must produce the
same answers), so the ablation doubles as a regression test for the
optimization code paths.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.pdms import ReformulationConfig, evaluate_reformulation, reformulate
from repro.workload import GeneratorParameters, generate_workload, populate_workload

from bench_common import PAPER_NUM_PEERS

DIAMETER = 5
DEFINITIONAL_RATIO = 0.25
SEED = 31


def _workload():
    return generate_workload(GeneratorParameters(
        num_peers=PAPER_NUM_PEERS,
        diameter=DIAMETER,
        definitional_ratio=DEFINITIONAL_RATIO,
        seed=SEED,
    ))


CONFIGURATIONS = {
    "all-optimizations": ReformulationConfig(),
    "no-memoization": ReformulationConfig(memoize_mcds=False),
    "no-dead-end-pruning": ReformulationConfig(prune_dead_ends=False),
    "no-unsat-pruning": ReformulationConfig(prune_unsatisfiable=False),
    "none": ReformulationConfig().without_optimizations(),
}


@pytest.mark.parametrize("name", list(CONFIGURATIONS))
def test_ablation_tree_construction(benchmark, name):
    """Time tree construction under one optimization configuration."""
    config = CONFIGURATIONS[name]
    workload = _workload()

    def build():
        return reformulate(workload.pdms, workload.query, config=config)

    result = benchmark(build)
    benchmark.extra_info["configuration"] = name
    benchmark.extra_info["tree_nodes"] = result.statistics.total_nodes
    benchmark.extra_info["memoization_hits"] = result.statistics.memoization_hits
    benchmark.extra_info["pruned_dead_end"] = result.statistics.pruned_dead_end


def test_ablation_configurations_agree_on_answers(benchmark):
    """All configurations must yield identical answers over the same data."""
    workload = _workload()
    data = populate_workload(workload, rows_per_relation=4, domain_size=3)

    def answers_per_configuration():
        answers = {}
        for name, config in CONFIGURATIONS.items():
            result = reformulate(workload.pdms, workload.query, config=config)
            answers[name] = frozenset(evaluate_reformulation(result, data))
        return answers

    answers = benchmark.pedantic(answers_per_configuration, rounds=1, iterations=1)
    assert len(set(answers.values())) == 1


def test_ablation_memoization_reduces_work(benchmark):
    """MCD memoization must register hits on the generated workloads (many
    peers share mapping shapes, which is exactly what the cache exploits)."""
    workload = _workload()

    def build():
        return reformulate(workload.pdms, workload.query, config=ReformulationConfig())

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    assert result.statistics.memoization_hits > 0
