"""Figure 4 — time to the first / tenth / all rewritings vs. PDMS diameter.

The paper measures, for a 96-peer PDMS with 10% definitional mappings, how
long it takes to obtain the first rewriting, the tenth rewriting, and all
rewritings as the diameter grows.  Its findings:

* the first rewritings arrive quickly even when the tree is large (a few
  seconds at diameter 8 on 2003 hardware), and
* producing *all* rewritings (Step 3) is the bottleneck, growing much
  faster than tree construction (Step 2).

The benchmarks below reproduce the three series on a reduced diameter
range; the full sweep lives in ``harness.py --figure 4``.  Shape
assertions encode the two findings.
"""

from __future__ import annotations

import pytest

from bench_common import average_samples, run_reformulation

DIAMETERS = (2, 4, 6)
DEFINITIONAL_RATIO = 0.10
RUNS_PER_POINT = 3


@pytest.mark.parametrize("diameter", DIAMETERS)
def test_fig4_first_rewriting(benchmark, diameter):
    """Time to the first rewriting (tree construction included)."""

    def first():
        sample = run_reformulation(
            diameter, DEFINITIONAL_RATIO, seed=23, measure_rewritings=False)
        return sample

    sample = benchmark(first)
    benchmark.extra_info["diameter"] = diameter
    benchmark.extra_info["tree_nodes"] = sample.tree_nodes


@pytest.mark.parametrize("diameter", DIAMETERS)
def test_fig4_all_rewritings(benchmark, diameter):
    """Time to enumerate every rewriting (the paper's bottleneck, Step 3)."""

    def everything():
        return run_reformulation(
            diameter, DEFINITIONAL_RATIO, seed=23, measure_rewritings=True)

    sample = benchmark.pedantic(everything, rounds=1, iterations=1)
    benchmark.extra_info["diameter"] = diameter
    benchmark.extra_info["rewriting_count"] = sample.rewriting_count


def test_fig4_first_rewritings_are_fast(benchmark):
    """Shape check: time-to-first stays far below time-to-all at the largest
    diameter measured (the paper's headline observation)."""

    def sweep():
        samples = [
            run_reformulation(max(DIAMETERS), DEFINITIONAL_RATIO, seed,
                              measure_rewritings=True)
            for seed in range(RUNS_PER_POINT)
        ]
        return average_samples(samples)

    averages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {key: value for key, value in averages.items() if value is not None})
    assert averages["first_rewriting_seconds"] is not None
    assert averages["all_rewritings_seconds"] is not None
    # First rewriting must be at least 5x cheaper than the full enumeration.
    assert averages["first_rewriting_seconds"] * 5 < averages["all_rewritings_seconds"]


def test_fig4_step3_dominates_step2(benchmark):
    """Shape check: at the largest diameter, enumerating all rewritings costs
    more than building the tree (the paper: "the key bottleneck of the
    algorithm is the time to find the rewritings from the rule-goal tree")."""

    def sweep():
        samples = [
            run_reformulation(max(DIAMETERS), DEFINITIONAL_RATIO, seed,
                              measure_rewritings=True)
            for seed in range(RUNS_PER_POINT)
        ]
        return average_samples(samples)

    averages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    step2 = averages["build_seconds"]
    step3 = averages["all_rewritings_seconds"] - averages["build_seconds"]
    benchmark.extra_info["step2_seconds"] = step2
    benchmark.extra_info["step3_seconds"] = step3
    assert step3 > step2
