"""Tail-latency benchmarks: hedging, retry completeness, delta re-scans.

Backs the ISSUE-9 acceptance criteria:

* **hedged_vs_unhedged** — the acceptance gate: with one replica of a
  two-member placement group slowed 10×, hedged scans must improve p99
  scan latency **≥ 3×** over unhedged scans of the same workload (the
  hedge duplicates the request to the fast replica after a small fixed
  delay instead of waiting out the slow primary);
* **retry_completeness** — a churn workload over a transport that drops
  every n-th scan RPC, run under the bounded-retry policy, must end with
  **every** answer ``complete=True``: transient faults are healed, not
  surfaced (``healed_complete`` is the fraction of complete answers and
  is gated at exactly 1.0);
* **delta_vs_full** — repeated re-scans of a growing relation through
  the delta-shipping cursor path vs a ``delta=False`` twin; both agree
  row-for-row while the delta arm ships orders of magnitude fewer rows
  (``rows_ratio`` = full-rescan rows / delta rows, deterministic for a
  given workload size).

``BENCH_tail_latency.json`` is written next to this file when
``EVAL_BENCH_RECORD=1``; ``EVAL_BENCH_QUICK=1`` shrinks the workloads
for CI smoke runs.  Headline ratios are guarded in
``compare_baselines.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.datalog.indexing import WILDCARD
from repro.pdms import (
    PDMS,
    AsyncSocketTransport,
    LoopbackTransport,
    RemotePeerFactSource,
    ScanPolicy,
    ServiceCluster,
    ShardMap,
    StorageDescription,
)

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Per-scan latency samples for the p99 arms.
SAMPLES = 24 if QUICK else 60
#: The fast replica's wire latency and the slow primary's (10× slower).
#: Milliseconds-scale so scheduler jitter cannot swamp the p99 gap.
FAST_DELAY = 5e-3
SLOW_DELAY = 50e-3
#: Fixed hedge delay: fire the duplicate once the primary exceeds the
#: fast replica's expected latency.
HEDGE_DELAY = 5e-3
#: answer+insert iterations for the retry-completeness churn run.
CHURN_STEPS = 12 if QUICK else 30
#: Base relation size and growth rounds for the delta arm.
DELTA_ROWS = 400 if QUICK else 1500
DELTA_ROUNDS = 10 if QUICK else 25

ALL = (WILDCARD, WILDCARD)

#: Deterministic policies: no backoff sleeps, no jitter.
FAST_POLICY = dict(backoff=0.0, backoff_cap=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_tail_latency.json when asked."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_tail_latency.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def _p99(samples) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _replicated_source(policy: ScanPolicy):
    """One relation on a two-replica placement group; ``A`` is the primary.

    Served over :class:`AsyncSocketTransport`: the hedging race needs
    genuinely cancellable in-flight RPCs — an abandoned slow primary must
    cost nothing, not occupy a worker thread for its full latency.
    """
    instance = Instance.from_dict(
        {"sr": {(i, i % 97) for i in range(SAMPLES * 2)}}
    )
    shard_map = ShardMap().shard_by_hash("sr", 0, [("A", "B")])
    transport = AsyncSocketTransport({"A": instance, "B": instance})
    source = RemotePeerFactSource(transport, shard_map=shard_map, policy=policy)
    # Chaos after construction so the describe round stays fast.
    transport.set_peer_delay("A", SLOW_DELAY)
    transport.set_peer_delay("B", FAST_DELAY)
    return source, transport


def test_hedged_p99_beats_unhedged_with_one_slow_peer(baseline_recorder):
    """Acceptance gate: one peer slowed 10× — hedged p99 improves ≥ 3×."""

    def measure(policy: ScanPolicy):
        source, transport = _replicated_source(policy)
        try:
            # Unmeasured warmup: establish pooled connections and spin up
            # the executors so start-up cost never lands in a sample.
            for key in range(SAMPLES, SAMPLES + 3):
                source.get_matching("sr", (key, WILDCARD))
            latencies = []
            for key in range(SAMPLES):
                start = time.perf_counter()
                rows = source.get_matching("sr", (key, WILDCARD))
                latencies.append(time.perf_counter() - start)
                assert rows == ((key, key % 97),)
            assert source.complete
            return _p99(latencies), source.scatter_stats()
        finally:
            source.close()
            transport.close()

    unhedged_p99, unhedged_stats = measure(
        ScanPolicy(retries=0, hedging=False, **FAST_POLICY)
    )
    hedged_p99, hedged_stats = measure(
        ScanPolicy(retries=0, hedge=HEDGE_DELAY, hedging=True, **FAST_POLICY)
    )
    assert unhedged_stats["hedges_fired"] == 0
    assert hedged_stats["hedges_fired"] >= SAMPLES * 0.9
    improvement = unhedged_p99 / hedged_p99

    baseline_recorder["hedged_vs_unhedged"] = {
        "samples": float(SAMPLES),
        "slow_peer_delay_seconds": SLOW_DELAY,
        "fast_peer_delay_seconds": FAST_DELAY,
        "hedge_delay_seconds": HEDGE_DELAY,
        "unhedged_p99_ms": unhedged_p99 * 1000.0,
        "hedged_p99_ms": hedged_p99 * 1000.0,
        "hedges_won": float(hedged_stats["hedges_won"]),
        "p99_improvement": improvement,
    }
    assert improvement >= 3.0, (
        f"hedging only improved p99 {improvement:.2f}x "
        f"({unhedged_p99 * 1e3:.1f}ms -> {hedged_p99 * 1e3:.1f}ms)"
    )


def test_transient_faults_end_complete_under_retries(baseline_recorder):
    """Acceptance gate: a churn run over a drop-every-3rd-scan transport
    ends with every answer ``complete=True`` — retries heal the faults."""
    pdms = PDMS("tail-latency-bench")
    top = pdms.add_peer("T")
    top.add_relation("R", ["x", "y"])
    pdms.add_peer("P")
    pdms.add_storage_description(StorageDescription(
        "P", "sr", parse_query("V(x, y) :- T:R(x, y)"),
        exact=False, name="store_sr",
    ))
    instance = Instance.from_dict({"sr": {(i, i % 97) for i in range(200)}})
    transport = LoopbackTransport({"P": instance}, drop_every_n=3)
    query = parse_query("Q(x, y) :- T:R(x, y)")

    complete_answers = 0
    with ServiceCluster(
        pdms=pdms,
        transport=transport,
        scan_policy=ScanPolicy(retries=2, hedging=False, **FAST_POLICY),
    ) as cluster:
        next_key = 200
        for _ in range(CHURN_STEPS):
            cluster.insert("sr", [(next_key, next_key % 97)])
            next_key += 1
            answer = cluster.answer(query)
            assert len(answer.rows) == next_key
            complete_answers += bool(answer.complete)
        stats = cluster.source.scatter_stats()
        assert cluster.source.failure_count == 0

    assert stats["retries"] >= 1, "the chaos hook never actually dropped a scan"
    healed_complete = complete_answers / CHURN_STEPS

    baseline_recorder["retry_completeness"] = {
        "churn_steps": float(CHURN_STEPS),
        "drop_every_n": 3.0,
        "retries_fired": float(stats["retries"]),
        "complete_answers": float(complete_answers),
        "healed_complete": healed_complete,
    }
    assert healed_complete == 1.0


def test_delta_rescans_ship_a_fraction_of_full_rescans(baseline_recorder):
    """Delta re-scans agree with full re-scans row-for-row while shipping
    only the newly inserted rows across the wire."""
    instance = Instance.from_dict({"sr": {(i, i % 97) for i in range(DELTA_ROWS)}})
    delta_source = RemotePeerFactSource(LoopbackTransport({"P": instance}))
    full_source = RemotePeerFactSource(
        LoopbackTransport({"P": instance}), delta=False
    )
    # Prime both arms with the unavoidable initial full scan.
    assert (
        set(delta_source.get_matching("sr", ALL))
        == set(full_source.get_matching("sr", ALL))
    )
    primed_full_rows = full_source.scatter_stats()["full_rows_shipped"]

    for round_no in range(DELTA_ROUNDS):
        instance.add("sr", (DELTA_ROWS + round_no, round_no % 97))
        delta_source.refresh()
        full_source.refresh()
        merged = set(delta_source.get_matching("sr", ALL))
        rescanned = set(full_source.get_matching("sr", ALL))
        assert merged == rescanned  # the delta-merge == full-rescan property
        assert len(merged) == DELTA_ROWS + round_no + 1

    delta_stats = delta_source.scatter_stats()
    full_stats = full_source.scatter_stats()
    assert delta_stats["delta_scans"] == DELTA_ROUNDS
    assert full_stats["delta_scans"] == 0
    delta_rows = delta_stats["delta_rows_shipped"]
    full_rescan_rows = full_stats["full_rows_shipped"] - primed_full_rows
    rows_ratio = full_rescan_rows / delta_rows

    baseline_recorder["delta_vs_full"] = {
        "base_rows": float(DELTA_ROWS),
        "rescan_rounds": float(DELTA_ROUNDS),
        "delta_rows_shipped": float(delta_rows),
        "full_rescan_rows_shipped": float(full_rescan_rows),
        "rows_ratio": rows_ratio,
    }
    # Every round ships exactly the one inserted row on the delta arm.
    assert delta_rows == DELTA_ROUNDS
    assert rows_ratio > 50.0
