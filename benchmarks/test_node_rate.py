"""In-text claim — node generation rate of the rule-goal tree.

Section 5 of the paper: "On average, the algorithm generates nodes at a
rate of 1,000 per second (with relatively unoptimized code)."  That figure
is bound to 2003 hardware and their implementation; the reproduction
measures the same quantity (tree nodes produced per second of Step-2 time)
on the same generated workloads and records it in EXPERIMENTS.md.  The
assertion is deliberately loose: the reproduction must sustain at least
the paper's 1,000 nodes/second (any modern machine does, by a wide
margin).
"""

from __future__ import annotations

import pytest

from bench_common import average_samples, run_reformulation

CASES = [
    # (diameter, definitional ratio)
    (6, 0.10),
    (6, 0.50),
    (8, 0.10),
]


@pytest.mark.parametrize("diameter,definitional_ratio", CASES)
def test_node_generation_rate(benchmark, diameter, definitional_ratio):
    def build():
        return run_reformulation(diameter, definitional_ratio, seed=41)

    sample = benchmark(build)
    rate = sample.tree_nodes / sample.build_seconds if sample.build_seconds else 0.0
    benchmark.extra_info["tree_nodes"] = sample.tree_nodes
    benchmark.extra_info["nodes_per_second"] = round(rate)
    assert rate >= 1_000, (
        f"node generation rate {rate:.0f}/s fell below the paper's reported "
        f"1,000 nodes/s"
    )
