"""Observability overhead benchmarks: tracing off must be (nearly) free.

Backs the ISSUE-10 acceptance criteria:

* **tracing_off** — the acceptance gate: with the tracer installed but
  disabled (the ``REPRO_TRACE=0`` default), the per-query cost of the
  instrumentation sites must stay **≤ 2%** of the untraced answer time.
  Measured two ways: the projected fraction (spans-per-query × the
  measured cost of one disabled instrumentation site, over the measured
  per-query time) is asserted ≤ 0.02 in-test, and ``overhead_margin``
  (= 0.02 / projected fraction, higher is better) is the guarded
  headline;
* **tracing_on** — the informational twin: the same warm workload with
  full tracing on (every answer builds its complete span tree, no sink).
  ``off_vs_on_ratio`` = off-qps / on-qps documents what ``REPRO_TRACE=1``
  costs; it is guarded loosely so a pathological slowdown in the
  recording path is caught.

``BENCH_observability.json`` is written next to this file when
``EVAL_BENCH_RECORD=1``; ``EVAL_BENCH_QUICK=1`` shrinks the workloads
for CI smoke runs.  Headline ratios are guarded in
``compare_baselines.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.database import Instance
from repro.datalog import parse_query
from repro.obs import MetricsRegistry, Tracer, current_span, set_tracer
from repro.pdms import (
    PDMS,
    LoopbackTransport,
    ScanPolicy,
    ServiceCluster,
    StorageDescription,
)

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Warm answer() repetitions per measured arm (plus unmeasured warmup).
QUERIES = 60 if QUICK else 300
WARMUP = 10
#: Iterations for the disabled-instrumentation-site microbenchmark.
SITE_CALLS = 20_000 if QUICK else 200_000
#: The acceptance budget: tracing-off overhead ≤ 2% of answer time.
OFF_BUDGET = 0.02


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_observability.json when asked."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_observability.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def _two_peer_cluster():
    """``Q :- T:A ⨝ T:B`` with A on P1 and B on P2 over loopback."""
    pdms = PDMS("obs-bench")
    top = pdms.add_peer("T")
    top.add_relation("A", ["x", "y"])
    top.add_relation("B", ["x", "y"])
    for peer_name, relation, stored in (("P1", "A", "sa"), ("P2", "B", "sb")):
        pdms.add_peer(peer_name)
        pdms.add_storage_description(StorageDescription(
            peer_name, stored,
            parse_query(f"V(x, y) :- T:{relation}(x, y)"),
            exact=False, name=f"store_{stored}",
        ))
    data = {
        "P1": Instance.from_dict({"sa": [(i, i + 1) for i in range(50)]}),
        "P2": Instance.from_dict({"sb": [(i, i + 100) for i in range(50)]}),
    }
    query = parse_query("Q(x, z) :- T:A(x, y), T:B(y, z)")
    expected = frozenset((i, i + 101) for i in range(49))
    cluster = ServiceCluster(
        pdms=pdms,
        transport=LoopbackTransport(data),
        scan_policy=ScanPolicy(
            retries=0, hedging=False, backoff=0.0, backoff_cap=0.0, jitter=0.0,
        ),
    )
    return cluster, query, expected


def _measure_qps(cluster, query, expected) -> float:
    """Warm answers-per-second for the repeated two-peer join."""
    for _ in range(WARMUP):
        assert cluster.answer(query).rows == expected
    start = time.perf_counter()
    for _ in range(QUERIES):
        cluster.answer(query)
    return QUERIES / (time.perf_counter() - start)


def test_tracing_overhead(baseline_recorder):
    cluster, query, expected = _two_peer_cluster()
    try:
        with cluster:
            # Arm 1: tracer installed but disabled — the REPRO_TRACE=0
            # production default.  Every instrumentation site still runs
            # (start_trace, current_span().child(...)) but returns the
            # shared NULL_SPAN.
            off_tracer = Tracer(enabled=False, registry=MetricsRegistry())
            set_tracer(off_tracer)
            off_qps = _measure_qps(cluster, query, expected)
            assert off_tracer.health()["started"] == 0

            # Arm 2: full tracing on (no sink) — the informational cost
            # of REPRO_TRACE=1, and the span-per-query count used to
            # project the disabled-site overhead below.
            on_tracer = Tracer(
                enabled=True, sample_rate=1.0, sink_path=None,
                registry=MetricsRegistry(),
            )
            set_tracer(on_tracer)
            on_qps = _measure_qps(cluster, query, expected)
            health = on_tracer.health()
            assert health["open"] == 0 and health["double_closes"] == 0
            spans_per_query = (
                (health["started"] + health["adopted"]) / (WARMUP + QUERIES)
            )
            assert spans_per_query >= 3.0

            # Microbenchmark one disabled site: with tracing off the
            # ambient span is NULL_SPAN and child() is a constant no-op.
            set_tracer(off_tracer)
            start = time.perf_counter()
            for _ in range(SITE_CALLS):
                current_span().child("fragment.eval")
            per_site_s = (time.perf_counter() - start) / SITE_CALLS
    finally:
        set_tracer(None)

    # The gate: all instrumentation sites a query hits, at their
    # measured disabled cost, must fit in 2% of the query's time.
    projected_off_fraction = spans_per_query * per_site_s * off_qps
    assert projected_off_fraction <= OFF_BUDGET, (
        f"tracing-off overhead {projected_off_fraction:.4%} exceeds "
        f"{OFF_BUDGET:.0%} budget ({spans_per_query:.1f} sites/query at "
        f"{per_site_s * 1e9:.0f}ns each)"
    )

    baseline_recorder["tracing_off"] = {
        "off_qps": off_qps,
        "per_site_ns": per_site_s * 1e9,
        "spans_per_query": spans_per_query,
        "projected_off_fraction": projected_off_fraction,
        # Guarded headline, clamped at 10× so runner-to-runner noise in a
        # huge margin cannot trip the regression gate: 10.0 means "at
        # least 10× inside the 2% budget"; a drop below the floor means
        # the disabled path is genuinely drifting toward the budget.
        "overhead_margin": min(
            10.0, OFF_BUDGET / max(projected_off_fraction, 1e-9)
        ),
    }
    baseline_recorder["tracing_on"] = {
        "on_qps": on_qps,
        "off_vs_on_ratio": off_qps / on_qps,
    }
