"""Service-layer benchmarks: reformulation-cache hit rate and churn throughput.

Backs the ISSUE-2 acceptance criteria:

* a repeated query on an *unchanged* catalogue is served from the
  reformulation cache at least 10× faster than cold reformulation
  (measured ~200× on the reference machine);
* an ECC-style peer join invalidates only provenance-affected cache
  entries, and the post-join answer set matches a from-scratch
  ``answer_query`` on every scenario query.

Like ``test_eval_throughput.py``, a ``BENCH_service.json`` baseline is
written next to this file when ``EVAL_BENCH_RECORD=1``, and
``EVAL_BENCH_QUICK=1`` shrinks the workloads for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.pdms import QueryService, answer_query, reformulate
from repro.workload import (
    ChurnParameters,
    GeneratorParameters,
    add_earthquake_command_center,
    build_emergency_services,
    example_queries,
    generate_churn_scenario,
    generate_workload,
    populate_workload,
    sample_instance,
)

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: Base PDMS for the cache benchmark (diameter 3 makes reformulation real work).
CACHE_WORKLOAD = GeneratorParameters(
    num_peers=24 if not QUICK else 12,
    diameter=3,
    definitional_ratio=0.25,
    seed=3,
)

#: Churn stream parameters.
CHURN = ChurnParameters(
    base=GeneratorParameters(
        num_peers=12 if not QUICK else 8,
        diameter=3 if not QUICK else 2,
        definitional_ratio=0.2,
        seed=2,
    ),
    num_events=60 if not QUICK else 25,
    seed=2,
)


def _mean_seconds(callable_: Callable[[], object], rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        callable_()
    return (time.perf_counter() - start) / rounds


def _best_seconds(callable_: Callable[[], object], rounds: int) -> float:
    """Best-of-N timing — robust to scheduler noise, used for assertions."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case numbers; write BENCH_service.json when asked to."""
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_service.json"
    path.write_text(
        json.dumps({"quick_mode": QUICK, "cases": results}, indent=2, sort_keys=True)
        + "\n"
    )


def test_cache_hit_vs_cold_reformulation(baseline_recorder):
    """Acceptance gate: cached ≥ 10× faster than cold reformulation."""
    workload = generate_workload(CACHE_WORKLOAD)
    data = populate_workload(workload, rows_per_relation=6, domain_size=4)
    service = QueryService(workload.pdms, data=data)
    service.reformulate(workload.query)  # prime the cache

    cold = _best_seconds(
        lambda: reformulate(workload.pdms, workload.query).all_rewritings(),
        rounds=10 if QUICK else 20,
    )
    cached = _best_seconds(
        lambda: service.reformulate(workload.query),
        rounds=200,
    )
    speedup = cold / cached
    end_to_end_cold = _mean_seconds(
        lambda: answer_query(workload.pdms, workload.query, data),
        rounds=5 if QUICK else 10,
    )
    end_to_end_cached = _mean_seconds(lambda: service.answer(workload.query), rounds=20)

    baseline_recorder["cache_hit_vs_cold"] = {
        "cold_reformulate_seconds": cold,
        "cached_reformulate_seconds": cached,
        "reformulation_speedup": speedup,
        "cold_answer_seconds": end_to_end_cold,
        "cached_answer_seconds": end_to_end_cached,
        "answer_speedup": end_to_end_cold / end_to_end_cached,
    }
    assert speedup >= 10.0, (
        f"cache served a repeated query only {speedup:.1f}x faster than cold "
        f"reformulation (cold {cold * 1e3:.2f} ms vs cached {cached * 1e6:.1f} µs)"
    )
    assert service.stats.hit_rate > 0.9


def test_churn_throughput(baseline_recorder):
    """Events/second through a churning service, vs a cache-starved baseline."""
    scenario = generate_churn_scenario(CHURN)

    # replay() restores the base catalogue afterwards, so best-of-N on one
    # service is sound (and robust to scheduler noise).
    cached_service = scenario.fresh_service()
    report = scenario.replay(service=cached_service)
    cached_seconds = _best_seconds(
        lambda: scenario.replay(service=cached_service), rounds=3
    )

    starved_service = scenario.fresh_service(max_entries=1)
    starved_seconds = _best_seconds(
        lambda: scenario.replay(service=starved_service), rounds=3
    )

    events = len(scenario.events)
    baseline_recorder["churn_throughput"] = {
        "events": events,
        "cached_seconds": cached_seconds,
        "cached_events_per_second": events / cached_seconds,
        "cache_starved_seconds": starved_seconds,
        "hit_rate": report.hit_rate,
        "invalidations": report.invalidations,
        "speedup_vs_starved": starved_seconds / cached_seconds,
    }
    # The cache must pay for itself under churn (measured ~3x; keep slack
    # for noisy CI machines).
    assert starved_seconds / cached_seconds >= 1.2
    assert report.hit_rate > 0.3


def test_ecc_join_invalidates_only_affected_entries(baseline_recorder):
    """The Figure-1 story, timed: ECC joins an actively queried system."""
    pdms = build_emergency_services(include_ecc=False)
    data = sample_instance()
    service = QueryService(pdms, data=data)
    queries = example_queries()
    ecc_free = {
        name: query for name, query in queries.items() if not name.startswith("ecc")
    }
    for query in ecc_free.values():
        service.answer(query)
    cached_before = service.cache_size

    start = time.perf_counter()
    add_earthquake_command_center(pdms)
    service._sync()
    join_seconds = time.perf_counter() - start

    evicted = service.stats.invalidations
    # 'skilled_*', 'critical_beds' and 'doctor_hours' never touch ECC
    # predicates or 9DC:Vehicle, so the ECC join must keep them all.
    assert evicted == 0
    assert service.cache_size == cached_before

    # Post-join, every scenario query (ECC ones included) must match a
    # from-scratch reformulation.
    for name, query in queries.items():
        assert service.answer(query) == answer_query(pdms, query, data), name

    # And leaving again evicts only the ECC-dependent entries.
    service.remove_peer("ECC")
    assert 0 < service.stats.invalidations - evicted <= 2

    baseline_recorder["ecc_join"] = {
        "join_and_sync_seconds": join_seconds,
        "entries_kept_on_join": float(cached_before),
        "entries_evicted_on_leave": float(service.stats.invalidations - evicted),
    }
