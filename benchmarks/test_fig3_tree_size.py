"""Figure 3 — size of the rule-goal tree vs. PDMS diameter, by %definitional mappings.

The paper plots the number of nodes in the rule-goal tree for a 96-peer
PDMS as the diameter grows from 1 to 10, with one curve per definitional-
mapping percentage (0%, 10%, 25%, 50%).  Its two findings are

* the tree grows (roughly exponentially) with the diameter, reaching tens
  of thousands of nodes by diameter 8, and
* a higher share of definitional mappings yields a larger tree, because
  relations defined by several rules act as unions and raise the
  branching factor.

The pytest-benchmark tests below reproduce the same series on a reduced
diameter range so the suite stays fast; run ``python benchmarks/harness.py
--figure 3`` for the full sweep recorded in EXPERIMENTS.md.  Each test also
asserts the *shape* facts above, so a regression in the generator or the
reformulation algorithm fails loudly rather than silently changing curves.
"""

from __future__ import annotations

import pytest

from bench_common import PAPER_NUM_PEERS, average_samples, run_reformulation

#: Reduced sweep used by pytest-benchmark (full range handled by harness.py).
DIAMETERS = (2, 4, 6)
DEFINITIONAL_RATIOS = (0.0, 0.10, 0.25, 0.50)
RUNS_PER_POINT = 3


@pytest.mark.parametrize("definitional_ratio", DEFINITIONAL_RATIOS)
@pytest.mark.parametrize("diameter", DIAMETERS)
def test_fig3_tree_size(benchmark, diameter, definitional_ratio):
    """Benchmark tree construction for one (diameter, %dd) data point."""

    def build_tree():
        return run_reformulation(
            diameter=diameter,
            definitional_ratio=definitional_ratio,
            seed=17,
            num_peers=PAPER_NUM_PEERS,
        )

    sample = benchmark(build_tree)
    benchmark.extra_info["tree_nodes"] = sample.tree_nodes
    benchmark.extra_info["diameter"] = diameter
    benchmark.extra_info["definitional_ratio"] = definitional_ratio
    assert sample.tree_nodes > 0


@pytest.mark.parametrize("definitional_ratio", DEFINITIONAL_RATIOS)
def test_fig3_tree_grows_with_diameter(benchmark, definitional_ratio):
    """Shape check: node count increases (strongly) with the diameter."""

    def sweep():
        sizes = []
        for diameter in DIAMETERS:
            samples = [
                run_reformulation(diameter, definitional_ratio, seed)
                for seed in range(RUNS_PER_POINT)
            ]
            sizes.append(average_samples(samples)["tree_nodes"])
        return sizes

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["sizes_by_diameter"] = dict(zip(DIAMETERS, sizes))
    assert sizes[0] < sizes[1] < sizes[2]
    # Exponential-ish growth: the last step grows by more than the first.
    assert sizes[2] - sizes[1] > sizes[1] - sizes[0]


def test_fig3_tree_grows_with_definitional_ratio(benchmark):
    """Shape check: more definitional mappings means a larger tree (paper's
    explanation: unions of conjunctive queries raise the branching factor)."""

    def sweep():
        sizes = {}
        for ratio in DEFINITIONAL_RATIOS:
            samples = [
                run_reformulation(5, ratio, seed) for seed in range(RUNS_PER_POINT)
            ]
            sizes[ratio] = average_samples(samples)["tree_nodes"]
        return sizes

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["sizes_by_ratio"] = {str(k): v for k, v in sizes.items()}
    assert sizes[0.0] < sizes[0.25] < sizes[0.50]
