"""Evaluation-throughput benchmarks for the indexed join engine.

Two families of cases back the ROADMAP's "fast as the hardware allows"
goal on the evaluation side of the system:

* single conjunctive-query join evaluation (the certain-answer oracle's
  and the execution engine's hot path) on chain joins over synthetic
  binary relations, and
* datalog fixpoint evaluation (transitive closure, the shape the
  inverse-rules baseline materialises) on random graphs.

Besides the pytest-benchmark stats, the module writes a
``BENCH_eval.json`` baseline next to this file so future PRs can track
the throughput trajectory.  Set ``EVAL_BENCH_QUICK=1`` for a smoke run
with reduced sizes (used by CI).
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path
from typing import Dict, Set, Tuple

import pytest

from repro.datalog.evaluation import evaluate_program_query, evaluate_query
from repro.datalog.parser import parse_program, parse_query

QUICK = os.environ.get("EVAL_BENCH_QUICK") == "1"

#: (rows per relation, distinct values) for the chain-join cases.
JOIN_CASES = {
    "small": (200, 80),
    "large": (2000, 600) if not QUICK else (400, 150),
}

#: (nodes, edges) for the transitive-closure cases.
TC_CASES = {
    "small": (60, 120),
    "large": (220, 440) if not QUICK else (80, 160),
}

CHAIN_QUERY = parse_query(
    "Q(a, e) :- R0(a, b), R1(b, c), R2(c, d), R3(d, e)"
)

TC_PROGRAM = parse_program(
    """
    T(x, y) :- E(x, y)
    T(x, y) :- E(x, z), T(z, y)
    """,
    query_predicate="T",
)


def make_chain_relations(rows: int, values: int, seed: int) -> Dict[str, Set[Tuple[int, int]]]:
    rng = random.Random(seed)
    return {
        f"R{i}": {
            (rng.randrange(values), rng.randrange(values)) for _ in range(rows)
        }
        for i in range(4)
    }


def make_graph(nodes: int, edges: int, seed: int) -> Dict[str, Set[Tuple[int, int]]]:
    rng = random.Random(seed)
    return {
        "E": {
            (rng.randrange(nodes), rng.randrange(nodes)) for _ in range(edges)
        }
    }


@pytest.fixture(scope="module")
def baseline_recorder():
    """Collect per-case mean runtimes; write BENCH_eval.json when asked to.

    The committed baseline is only refreshed when ``EVAL_BENCH_RECORD=1``,
    so ordinary test runs (whose numbers are machine- and mode-specific)
    don't dirty the working tree.
    """
    results: Dict[str, Dict[str, float]] = {}
    yield results
    if os.environ.get("EVAL_BENCH_RECORD") != "1":
        return
    path = Path(__file__).resolve().parent / "BENCH_eval.json"
    payload = {
        "quick_mode": QUICK,
        "cases": results,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record(recorder, benchmark, name: str, extra: Dict[str, float]) -> None:
    stats = benchmark.stats.stats
    recorder[name] = {
        "mean_seconds": stats.mean,
        "min_seconds": stats.min,
        "rounds": stats.rounds,
        **extra,
    }


@pytest.mark.parametrize("size", sorted(JOIN_CASES))
def test_cq_chain_join(benchmark, baseline_recorder, size):
    rows, values = JOIN_CASES[size]
    facts = make_chain_relations(rows, values, seed=7)

    answers = benchmark(lambda: evaluate_query(CHAIN_QUERY, facts))
    benchmark.extra_info["rows_per_relation"] = rows
    benchmark.extra_info["answers"] = len(answers)
    _record(
        baseline_recorder,
        benchmark,
        f"cq_chain_join_{size}",
        {"rows_per_relation": rows, "answers": len(answers)},
    )
    assert answers  # the generated instance always joins somewhere


@pytest.mark.parametrize("size", sorted(TC_CASES))
def test_datalog_transitive_closure(benchmark, baseline_recorder, size):
    nodes, edges = TC_CASES[size]
    facts = make_graph(nodes, edges, seed=11)

    closure = benchmark(lambda: evaluate_program_query(TC_PROGRAM, facts))
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["closure_size"] = len(closure)
    _record(
        baseline_recorder,
        benchmark,
        f"datalog_tc_{size}",
        {"nodes": nodes, "edges": edges, "closure_size": len(closure)},
    )
    assert closure
