"""In-memory database instances.

An :class:`Instance` stores, for each relation name, a set of rows
(tuples of plain Python values).  It implements the
:class:`repro.datalog.evaluation.FactSource` protocol so queries and
datalog programs can be evaluated over it directly, and it is the storage
substrate behind every peer's stored relations in the PDMS.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

from ..errors import InstanceError, SchemaError
from .schema import DatabaseSchema, RelationSchema

Row = Tuple[object, ...]


class Instance:
    """A mutable set-semantics database instance.

    Parameters
    ----------
    schema:
        Optional :class:`DatabaseSchema`.  When provided, inserts are
        validated against it and unknown relation names are rejected;
        without it, relations are created lazily with inferred arity.
    """

    def __init__(self, schema: Optional[DatabaseSchema] = None):
        self._schema = schema
        self._relations: Dict[str, Set[Row]] = {}
        self._arities: Dict[str, int] = {}
        if schema is not None:
            for relation in schema:
                self._relations[relation.name] = set()
                self._arities[relation.name] = relation.arity

    # -- FactSource protocol ---------------------------------------------------

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        """Return the rows stored for ``predicate`` (empty if unknown)."""
        return self._relations.get(predicate, set())

    # -- mutation ----------------------------------------------------------------

    def add(self, relation: str, row: Sequence[object]) -> None:
        """Insert one row into ``relation``.

        With a schema, the relation must exist and the row must validate.
        Without one, the relation is created on first insert and later
        inserts must match its arity.
        """
        values = tuple(row)
        if self._schema is not None:
            try:
                rel_schema = self._schema.relation(relation)
            except SchemaError as exc:
                raise InstanceError(str(exc)) from exc
            values = rel_schema.validate_row(values)
        else:
            known_arity = self._arities.get(relation)
            if known_arity is None:
                self._arities[relation] = len(values)
            elif known_arity != len(values):
                raise InstanceError(
                    f"relation {relation} has arity {known_arity} but got a row "
                    f"of width {len(values)}"
                )
        self._relations.setdefault(relation, set()).add(values)

    def add_all(self, relation: str, rows: Iterable[Sequence[object]]) -> None:
        """Insert many rows into ``relation``."""
        for row in rows:
            self.add(relation, row)

    def remove(self, relation: str, row: Sequence[object]) -> None:
        """Remove a row; raises :class:`InstanceError` if it is not present."""
        values = tuple(row)
        stored = self._relations.get(relation)
        if stored is None or values not in stored:
            raise InstanceError(f"row {values} is not in relation {relation}")
        stored.remove(values)

    def clear(self, relation: Optional[str] = None) -> None:
        """Remove all rows of ``relation``, or of every relation if ``None``."""
        if relation is None:
            for rows in self._relations.values():
                rows.clear()
        elif relation in self._relations:
            self._relations[relation].clear()

    # -- inspection ---------------------------------------------------------------

    @property
    def schema(self) -> Optional[DatabaseSchema]:
        """The schema this instance validates against, if any."""
        return self._schema

    def relations(self) -> Tuple[str, ...]:
        """Names of relations that currently hold at least one row or are declared."""
        return tuple(self._relations)

    def cardinality(self, relation: str) -> int:
        """Number of rows in ``relation``."""
        return len(self._relations.get(relation, ()))

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(rows) for rows in self._relations.values())

    def active_domain(self) -> Set[object]:
        """All values occurring anywhere in the instance."""
        domain: Set[object] = set()
        for rows in self._relations.values():
            for row in rows:
                domain.update(row)
        return domain

    def __contains__(self, relation: str) -> bool:
        return relation in self._relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        mine = {name: rows for name, rows in self._relations.items() if rows}
        theirs = {name: rows for name, rows in other._relations.items() if rows}
        return mine == theirs

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance objects are mutable and unhashable")

    # -- conversion ---------------------------------------------------------------

    def as_dict(self) -> Dict[str, Set[Row]]:
        """Return a copy of the underlying relation->rows mapping."""
        return {name: set(rows) for name, rows in self._relations.items()}

    def copy(self) -> "Instance":
        """Return a deep copy of the instance (schema object is shared)."""
        clone = Instance(self._schema)
        for name, rows in self._relations.items():
            clone._relations[name] = set(rows)
            clone._arities[name] = self._arities.get(name, 0)
        return clone

    def merge(self, other: "Instance") -> "Instance":
        """Return a new instance holding the union of both instances' rows."""
        merged = self.copy()
        for name, rows in other._relations.items():
            for row in rows:
                merged.add(name, row)
        return merged

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[object]]],
        schema: Optional[DatabaseSchema] = None,
    ) -> "Instance":
        """Build an instance from a mapping of relation name to rows."""
        instance = cls(schema)
        for name, rows in data.items():
            instance.add_all(name, rows)
        return instance

    def __str__(self) -> str:
        lines = []
        for name in sorted(self._relations):
            rows = self._relations[name]
            lines.append(f"{name}: {len(rows)} rows")
        return "\n".join(lines) if lines else "(empty instance)"

    def __repr__(self) -> str:
        return f"Instance({self.total_rows()} rows in {len(self._relations)} relations)"
