"""In-memory database instances.

An :class:`Instance` stores, for each relation name, a set of rows
(tuples of plain Python values) wrapped in a
:class:`repro.datalog.indexing.PredicateIndex`.  It implements both the
:class:`repro.datalog.evaluation.FactSource` protocol and the indexed
extension (``get_matching``), so query and datalog evaluation probe hash
indexes on bound argument positions instead of scanning whole relations.
Indexes are built lazily per (relation, position-set) on the first probe
and maintained incrementally across inserts — important for the chase
oracle, which interleaves inserts with many query evaluations over the
same growing instance.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.indexing import Pattern, PredicateIndex
from ..errors import InstanceError, SchemaError
from .schema import DatabaseSchema

Row = Tuple[object, ...]


class _RelationCreationClock:
    """A process-wide monotone clock ticked whenever any instance creates
    a relation.

    Federated views over live instances
    (:class:`repro.pdms.execution.PeerFactSource`) compare one cached
    reading against :meth:`read` — a single attribute access — on every
    probe, and only re-derive their relation-routing tables when the clock
    moved.  Ticks happen *after* the new relation is visible, so a reader
    that observes the new clock value also observes the relation; the lock
    keeps the value strictly monotone under concurrent creators.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def tick(self) -> None:
        with self._lock:
            self._value += 1

    def read(self) -> int:
        return self._value


#: The clock shared by every :class:`Instance` in the process.
relation_creation_clock = _RelationCreationClock()

#: Process-unique instance ids (thread-safe under the GIL); a fresh id per
#: Instance makes data-version tokens globally unambiguous — two instances
#: that happen to share relation names can never alias in a version-keyed
#: cache.
_instance_ids = itertools.count(1)

#: Data-version token of a relation the instance has never created.
_ABSENT_VERSION = -1


class Instance:
    """A mutable set-semantics database instance.

    Parameters
    ----------
    schema:
        Optional :class:`DatabaseSchema`.  When provided, inserts are
        validated against it and unknown relation names are rejected;
        without it, relations are created lazily with inferred arity.
    """

    def __init__(self, schema: Optional[DatabaseSchema] = None):
        self._schema = schema
        self._relations: Dict[str, PredicateIndex] = {}
        self._arities: Dict[str, int] = {}
        self._relations_version = 0
        self._instance_id = next(_instance_ids)
        if schema is not None:
            for relation in schema:
                self._relations[relation.name] = PredicateIndex()
                self._arities[relation.name] = relation.arity
            self._relations_version = len(self._relations)
            relation_creation_clock.tick()

    # -- FactSource protocol ---------------------------------------------------

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        """Return the rows stored for ``predicate`` (empty if unknown)."""
        index = self._relations.get(predicate)
        return index.rows() if index is not None else set()

    def get_matching(self, predicate: str, pattern: Pattern) -> Iterable[Row]:
        """Rows of ``predicate`` matching ``pattern`` (see :mod:`repro.datalog.indexing`)."""
        index = self._relations.get(predicate)
        return index.matching(pattern) if index is not None else ()

    # -- mutation ----------------------------------------------------------------

    def add(self, relation: str, row: Sequence[object]) -> None:
        """Insert one row into ``relation``.

        With a schema, the relation must exist and the row must validate.
        Without one, the relation is created on first insert and later
        inserts must match its arity.
        """
        values = tuple(row)
        if self._schema is not None:
            try:
                rel_schema = self._schema.relation(relation)
            except SchemaError as exc:
                raise InstanceError(str(exc)) from exc
            values = rel_schema.validate_row(values)
        else:
            known_arity = self._arities.get(relation)
            if known_arity is None:
                self._arities[relation] = len(values)
            elif known_arity != len(values):
                raise InstanceError(
                    f"relation {relation} has arity {known_arity} but got a row "
                    f"of width {len(values)}"
                )
        index = self._relations.get(relation)
        if index is None:
            index = self._relations[relation] = PredicateIndex()
            self._relations_version += 1
            relation_creation_clock.tick()
        index.add(values)

    def add_all(self, relation: str, rows: Iterable[Sequence[object]]) -> None:
        """Insert many rows into ``relation``."""
        for row in rows:
            self.add(relation, row)

    def remove(self, relation: str, row: Sequence[object]) -> None:
        """Remove a row; raises :class:`InstanceError` if it is not present."""
        values = tuple(row)
        stored = self._relations.get(relation)
        if stored is None or not stored.discard(values):
            raise InstanceError(f"row {values} is not in relation {relation}")

    def clear(self, relation: Optional[str] = None) -> None:
        """Remove all rows of ``relation``, or of every relation if ``None``."""
        if relation is None:
            for index in self._relations.values():
                index.clear()
        elif relation in self._relations:
            self._relations[relation].clear()

    # -- inspection ---------------------------------------------------------------

    @property
    def schema(self) -> Optional[DatabaseSchema]:
        """The schema this instance validates against, if any."""
        return self._schema

    def relations(self) -> Tuple[str, ...]:
        """Names of relations that currently hold at least one row or are declared."""
        return tuple(self._relations)

    @property
    def relations_version(self) -> int:
        """Monotone counter bumped whenever a *new* relation is created.

        Federated views (:class:`repro.pdms.execution.PeerFactSource`) sum
        it over their owned instances — after the process-wide
        :data:`relation_creation_clock` signals that *some* instance
        created a relation — to decide whether their own routing tables
        actually need re-deriving.
        """
        return self._relations_version

    def arity(self, relation: str) -> Optional[int]:
        """Arity of ``relation`` (declared or inferred), or ``None`` if unknown."""
        if self._schema is not None:
            try:
                return self._schema.relation(relation).arity
            except SchemaError:
                return None
        return self._arities.get(relation)

    def cardinality(self, relation: str) -> int:
        """Number of rows in ``relation``."""
        index = self._relations.get(relation)
        return len(index) if index is not None else 0

    @property
    def instance_id(self) -> int:
        """A process-unique id for this instance (part of version tokens)."""
        return self._instance_id

    def data_version(self, relation: str) -> Tuple[int, int]:
        """The data-version token of ``relation``: ``(instance id, version)``.

        The second component is the relation's monotone
        :attr:`~repro.datalog.indexing.PredicateIndex.version` counter —
        bumped on every insert, delete, and clear — or a sentinel when the
        relation does not exist here.  Tokens from different instances
        never compare equal (the instance id differs), so caches keyed on
        them survive swapping one data set for another.
        """
        index = self._relations.get(relation)
        version = index.version if index is not None else _ABSENT_VERSION
        return (self._instance_id, version)

    def rows_since(self, relation: str, version: int) -> Optional[Tuple[Row, ...]]:
        """Rows added to ``relation`` after index-version ``version``.

        ``None`` when the additive history is unavailable (removals,
        clears, log overflow, unknown relation) and the caller must take
        a full rescan.  Together with :meth:`data_version` this backs the
        delta-shipping scan protocol: a caller holding the token
        ``(instance_id, v)`` asks for ``rows_since(relation, v)`` and
        unions the result into its memoized full scan at ``v``.
        """
        index = self._relations.get(relation)
        if index is None:
            return None
        return index.rows_since(version)

    def version_vector(
        self, relations: Optional[Iterable[str]] = None
    ) -> Dict[str, Tuple[int, int]]:
        """Per-relation data-version tokens (all relations by default)."""
        names = tuple(relations) if relations is not None else tuple(self._relations)
        return {name: self.data_version(name) for name in names}

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(index) for index in self._relations.values())

    def active_domain(self) -> Set[object]:
        """All values occurring anywhere in the instance."""
        domain: Set[object] = set()
        for index in self._relations.values():
            for row in index.rows():
                domain.update(row)
        return domain

    def __contains__(self, relation: str) -> bool:
        return relation in self._relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        mine = {name: set(index.rows()) for name, index in self._relations.items() if index}
        theirs = {name: set(index.rows()) for name, index in other._relations.items() if index}
        return mine == theirs

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance objects are mutable and unhashable")

    # -- conversion ---------------------------------------------------------------

    def __reduce__(self):
        """Pickle as (rows, schema) and rebuild through :meth:`from_dict`.

        Instances cross process boundaries in the distributed runtime
        (each peer's data is shipped to its worker process).  Hash
        indexes, version counters, and the process-unique instance id are
        deliberately *not* shipped: the receiving process rebuilds fresh
        indexes lazily and mints its own id, so version tokens from two
        processes can never alias.  Empty declared relations survive via
        the arity map.
        """
        data: Dict[str, list] = {
            name: sorted(index.rows(), key=repr)
            for name, index in self._relations.items()
        }
        return (_rebuild_instance, (data, dict(self._arities), self._schema))

    def as_dict(self) -> Dict[str, Set[Row]]:
        """Return a copy of the underlying relation->rows mapping."""
        return {name: set(index.rows()) for name, index in self._relations.items()}

    def copy(self) -> "Instance":
        """Return a deep copy of the instance (schema object is shared)."""
        clone = Instance(self._schema)
        for name, index in self._relations.items():
            clone._relations[name] = PredicateIndex(index.rows())
            clone._arities[name] = self._arities.get(name, 0)
        clone._relations_version = len(clone._relations)
        relation_creation_clock.tick()
        return clone

    def merge(self, other: "Instance") -> "Instance":
        """Return a new instance holding the union of both instances' rows."""
        merged = self.copy()
        for name, index in other._relations.items():
            for row in index.rows():
                merged.add(name, row)
        return merged

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[object]]],
        schema: Optional[DatabaseSchema] = None,
    ) -> "Instance":
        """Build an instance from a mapping of relation name to rows."""
        instance = cls(schema)
        for name, rows in data.items():
            instance.add_all(name, rows)
        return instance

    def __str__(self) -> str:
        lines = []
        for name in sorted(self._relations):
            lines.append(f"{name}: {len(self._relations[name])} rows")
        return "\n".join(lines) if lines else "(empty instance)"

    def __repr__(self) -> str:
        return f"Instance({self.total_rows()} rows in {len(self._relations)} relations)"


def _rebuild_instance(
    data: Mapping[str, Iterable[Sequence[object]]],
    arities: Mapping[str, int],
    schema: Optional[DatabaseSchema],
) -> Instance:
    """Unpickle hook for :meth:`Instance.__reduce__` (module-level so the
    ``spawn`` start method can import it)."""
    instance = Instance(schema)
    if schema is None:
        for name, arity in arities.items():
            instance._arities.setdefault(name, arity)
    for name, rows in data.items():
        if name not in instance._relations:
            # Materialise even empty relations: their declared existence
            # (and arity) is part of the instance's observable state.
            instance._relations[name] = PredicateIndex()
            instance._relations_version += 1
            relation_creation_clock.tick()
        instance.add_all(name, rows)
    return instance
