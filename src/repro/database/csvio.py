"""CSV import/export for instances.

Examples ship small datasets as CSV files; these helpers read and write
them.  Values are round-tripped through a tiny type sniffing step so that
integers and floats survive the trip (everything else stays a string).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..errors import InstanceError
from .instance import Instance
from .schema import DatabaseSchema


def _sniff(value: str) -> object:
    """Convert a CSV string to int or float when it looks like one."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def load_relation_csv(
    instance: Instance,
    relation: str,
    path: Union[str, Path],
    has_header: bool = True,
) -> int:
    """Load rows of one relation from a CSV file into ``instance``.

    Returns the number of rows loaded.
    """
    path = Path(path)
    if not path.exists():
        raise InstanceError(f"CSV file {path} does not exist")
    count = 0
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = iter(reader)
        if has_header:
            next(rows, None)
        for row in rows:
            if not row:
                continue
            instance.add(relation, [_sniff(v) for v in row])
            count += 1
    return count


def save_relation_csv(
    instance: Instance,
    relation: str,
    path: Union[str, Path],
    header: Optional[Sequence[str]] = None,
) -> int:
    """Write one relation of ``instance`` to a CSV file; returns the row count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = sorted(instance.get_tuples(relation), key=repr)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if header is None:
            schema = instance.schema
            if schema is not None and relation in schema:
                header = schema.relation(relation).attributes
        if header is not None:
            writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return len(rows)


def load_instance_directory(
    directory: Union[str, Path],
    schema: Optional[DatabaseSchema] = None,
    has_header: bool = True,
) -> Instance:
    """Load every ``*.csv`` file in ``directory`` as a relation named after the file."""
    directory = Path(directory)
    instance = Instance(schema)
    for path in sorted(directory.glob("*.csv")):
        load_relation_csv(instance, path.stem, path, has_header=has_header)
    return instance
