"""Relation schemas and database schemas.

The paper's peers "define their own relational peer schema"; stored
relations have schemas too.  A :class:`RelationSchema` records a relation
name, its attribute names, and optional attribute types; a
:class:`DatabaseSchema` is a named collection of relation schemas with
uniqueness checks ("Without loss of generality we assume that relation and
attribute names are unique to each peer" — Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Type, Union

from ..errors import SchemaError

#: Attribute types supported by the toy type system.
AttributeType = Union[Type[str], Type[int], Type[float], None]


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: a name plus ordered attribute names.

    Parameters
    ----------
    name:
        Relation name; for peer relations this is the fully qualified
        ``peer:relation`` name.
    attributes:
        Ordered attribute names, unique within the relation.
    types:
        Optional attribute types (parallel to ``attributes``); ``None``
        entries mean "untyped".
    """

    name: str
    attributes: Tuple[str, ...]
    types: Tuple[AttributeType, ...] = field(default=())

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        types: Optional[Sequence[AttributeType]] = None,
    ):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in relation {name}: {attrs}")
        if types is None:
            resolved_types: Tuple[AttributeType, ...] = tuple(None for _ in attrs)
        else:
            resolved_types = tuple(types)
            if len(resolved_types) != len(attrs):
                raise SchemaError(
                    f"relation {name}: got {len(resolved_types)} types for "
                    f"{len(attrs)} attributes"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "types", resolved_types)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Return the index of ``attribute``; raises :class:`SchemaError` if absent."""
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}"
            ) from exc

    def validate_row(self, row: Sequence[object]) -> Tuple[object, ...]:
        """Check a row against the schema and return it as a tuple.

        Raises :class:`SchemaError` on arity mismatch or a typed attribute
        receiving a value of the wrong type.
        """
        values = tuple(row)
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name} has arity {self.arity} but got a row of "
                f"width {len(values)}"
            )
        for value, expected, attr in zip(values, self.types, self.attributes):
            if expected is not None and not isinstance(value, expected):
                raise SchemaError(
                    f"attribute {self.name}.{attr} expects {expected.__name__} "
                    f"but got {type(value).__name__} ({value!r})"
                )
        return values

    def rename(self, new_name: str) -> "RelationSchema":
        """Return the same schema under a different relation name."""
        return RelationSchema(new_name, self.attributes, self.types)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class DatabaseSchema:
    """A named collection of relation schemas with unique relation names."""

    def __init__(self, name: str, relations: Iterable[RelationSchema] = ()):
        self.name = name
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        """Add a relation schema; raises on duplicate names."""
        if relation.name in self._relations:
            raise SchemaError(
                f"schema {self.name} already defines relation {relation.name}"
            )
        self._relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(f"schema {self.name} has no relation {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation_names(self) -> Tuple[str, ...]:
        """All relation names, in insertion order."""
        return tuple(self._relations)

    def __str__(self) -> str:
        rels = "; ".join(str(r) for r in self)
        return f"schema {self.name}: {rels}"
