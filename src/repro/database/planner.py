"""Logical query plans: compile conjunctive queries to relational algebra.

The paper stops at reformulation ("The precise method of evaluating Q'
is beyond the scope of this paper"), but a usable library needs to run the
reformulated union of conjunctive queries.  Besides the backtracking
evaluator in :mod:`repro.datalog.evaluation`, this module provides the
path a database system would take:

1. compile each conjunctive query into a *logical plan* over the
   relational-algebra operators of :mod:`repro.database.algebra`
   (scan → select → join → project), with

   * selections pushed onto scans (constants and repeated variables in an
     atom become per-scan filters),
   * a greedy join order chosen by estimated cardinality (smallest input
     first, preferring joins that share variables), and
   * comparison predicates applied as soon as their variables are bound;

2. execute the plan bottom-up over an :class:`~repro.database.instance.Instance`
   (or any fact source), producing a :class:`~repro.database.algebra.Table`.

The two evaluation paths are cross-checked against each other in the test
suite, which is the point of having both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..config import columnar_enabled
from ..datalog.atoms import Atom, ComparisonAtom, compare_values
from ..datalog.evaluation import FactsLike, as_fact_source
from ..datalog.queries import ConjunctiveQuery, UnionQuery
from ..datalog.terms import Constant, Term, Variable, is_variable
from ..errors import EvaluationError
from .algebra import Table, union_many
from .columnar import (
    ColumnTable,
    compare_cols_mask,
    compare_mask,
    const_column,
    union_distinct,
)
from .columnar import _mask_and as _combine_masks
from .feedback import QErrorLog
from .statistics import (
    StatisticsCatalog,
    WeakStatisticsCatalog,
    shared_statistics,
    source_data_version,
)

Row = Tuple[object, ...]


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanNode:
    """Base class of logical plan operators."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child operators (empty for leaves)."""
        return ()

    def output_columns(self) -> Tuple[str, ...]:
        """Column names produced by this operator."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """An indented, human-readable rendering of the plan."""
        line = "  " * indent + self.describe()
        return "\n".join([line] + [child.explain(indent + 1) for child in self.children()])

    def describe(self) -> str:
        """One-line description of this operator."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Scan one stored relation, binding its columns to variable names.

    ``columns`` holds one name per relation position: variable names where
    the atom had variables, synthetic ``_pos<i>`` names elsewhere.
    ``filters`` are (position, constant) equality filters from constants in
    the atom; ``equal_positions`` are pairs of positions that must be equal
    (repeated variables in the atom).
    """

    relation: str
    columns: Tuple[str, ...]
    filters: Tuple[Tuple[int, object], ...] = ()
    equal_positions: Tuple[Tuple[int, int], ...] = ()

    def output_columns(self) -> Tuple[str, ...]:
        # Positions carrying constants or duplicate variables are projected
        # away right after the scan; only the first occurrence of each
        # variable column survives.
        seen: List[str] = []
        for name in self.columns:
            if not name.startswith("_pos") and name not in seen:
                seen.append(name)
        return tuple(seen)

    def describe(self) -> str:
        parts = [f"Scan({self.relation})"]
        if self.filters:
            rendered = ", ".join(f"#{i}={value!r}" for i, value in self.filters)
            parts.append(f"filter[{rendered}]")
        if self.equal_positions:
            rendered = ", ".join(f"#{i}=#{j}" for i, j in self.equal_positions)
            parts.append(f"equal[{rendered}]")
        return " ".join(parts)


@dataclass(frozen=True)
class SelectNode(PlanNode):
    """Apply comparison predicates to the child's rows."""

    child: PlanNode
    comparisons: Tuple[ComparisonAtom, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        rendered = ", ".join(str(c) for c in self.comparisons)
        return f"Select({rendered})"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Natural join of two subplans on their shared variable columns."""

    left: PlanNode
    right: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def output_columns(self) -> Tuple[str, ...]:
        left_columns = self.left.output_columns()
        right_columns = self.right.output_columns()
        return left_columns + tuple(c for c in right_columns if c not in left_columns)

    def describe(self) -> str:
        shared = set(self.left.output_columns()) & set(self.right.output_columns())
        rendered = ", ".join(sorted(shared)) if shared else "×"
        return f"Join({rendered})"


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Project the child onto the query's head, in head order.

    ``head`` may contain constants (e.g. a reformulation head
    ``Q(pid, "Doctor")``); those positions are emitted as constant columns.
    """

    child: PlanNode
    head: Tuple[Term, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def output_columns(self) -> Tuple[str, ...]:
        names: List[str] = []
        seen: Dict[str, int] = {}
        for index, term in enumerate(self.head):
            base = term.name if is_variable(term) else f"_const{index}"
            count = seen.get(base, 0)
            names.append(base if count == 0 else f"{base}#{count}")
            seen[base] = count + 1
        return tuple(names)

    def describe(self) -> str:
        rendered = ", ".join(str(t) for t in self.head)
        return f"Project({rendered})"


@dataclass(frozen=True)
class UnionNode(PlanNode):
    """Set union of the sub-plans of a union of conjunctive queries."""

    branches: Tuple[PlanNode, ...]
    arity: int

    def children(self) -> Tuple[PlanNode, ...]:
        return self.branches

    def output_columns(self) -> Tuple[str, ...]:
        if self.branches:
            return self.branches[0].output_columns()
        return tuple(f"c{i}" for i in range(self.arity))

    def describe(self) -> str:
        return f"Union({len(self.branches)} branches)"


@dataclass(frozen=True)
class DistinctNode(PlanNode):
    """Explicit duplicate elimination over the child's rows.

    Tables are set-semantics, so execution is the identity — the node marks
    the dedup point of a plan (e.g. the root of a union of rewritings)
    explicitly instead of leaving it implicit in the representation.
    """

    child: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        return "Distinct()"


@dataclass(frozen=True)
class MaterializeNode(PlanNode):
    """Evaluate the child once per execution and reuse the result.

    Executions that thread a shared *memo* dictionary through
    :func:`execute_plan` compute the child the first time any materialize
    node with this ``key`` is reached and serve every later occurrence from
    the memo — the mechanism behind common-subplan reuse in union plans.
    Without a memo the node is transparent.  Keys encode plan structure
    only, not data identity: a memo must never outlive its fact source
    (use one per evaluation over one unchanged source).
    """

    child: PlanNode
    key: str

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def output_columns(self) -> Tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        return f"Materialize({self.key})"


@dataclass(frozen=True)
class EmptyNode(PlanNode):
    """A plan producing no rows (e.g. an empty union)."""

    arity: int

    def output_columns(self) -> Tuple[str, ...]:
        return tuple(f"c{i}" for i in range(self.arity))

    def describe(self) -> str:
        return "Empty()"


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

class CardinalityCostModel:
    """Relation statistics of one fact source, packaged for planning.

    Backed by a :class:`~repro.database.statistics.StatisticsCatalog`:
    besides per-relation cardinalities, the model now knows per-column
    distinct counts, so a pushed-down constant filter is priced at its
    real point selectivity (``cardinality / distinct``) and a
    repeated-variable or join equality at ``1 / max(d_i, d_j)`` — instead
    of the old fixed shrink-one-notch-per-restriction heuristic (which
    survives as the fallback when no statistics are available).  Stats
    are version-validated against the source's per-relation data
    versions, so repeated compilations over slowly changing data rescan
    only the relations that moved.
    """

    __slots__ = ("_statistics",)

    def __init__(
        self,
        facts: Optional[FactsLike] = None,
        statistics: Optional[StatisticsCatalog] = None,
    ):
        if statistics is not None:
            self._statistics = statistics
        elif facts is not None:
            # The catalog is shared per source (and version-validated), so
            # per-call model construction costs no rescans.
            self._statistics = shared_statistics(as_fact_source(facts))
        else:
            self._statistics = StatisticsCatalog(None)

    @property
    def statistics(self) -> StatisticsCatalog:
        """The backing statistics catalog."""
        return self._statistics

    @classmethod
    def snapshot(cls, facts: FactsLike) -> "CardinalityCostModel":
        """A cost model that captures statistics eagerly and then drops
        its reference to the data.

        Safe to keep on long-lived compiled plans: a model built this way
        never retains the fact source (which may hold a removed peer's
        instance or a one-off data override).  Requires a source whose
        relations can be enumerated (a mapping, or anything with a
        ``relations()`` method — instances and federated sources both
        qualify); other sources fall back to whatever was cached.
        """
        model = cls(facts)
        # Detach via a copy: the live catalog is shared across models of
        # this source and must keep revalidating for them.
        model._statistics = model._statistics.frozen_copy()
        return model

    @classmethod
    def pinless(cls, facts: FactsLike) -> "CardinalityCostModel":
        """A model that never pins (and never eagerly scans) the source.

        Statistics are read lazily through the source's shared catalog
        via a weak reference — full fidelity while the source lives, a
        frozen view of whatever was observed once it is dropped.  This is
        what long-lived compiled plans hold: unlike :meth:`snapshot` it
        costs nothing up front, and unlike a live model it cannot keep a
        removed peer's data in memory.

        Plain mappings are the exception: ``as_fact_source`` adapts them
        into a throwaway object that would die under a weak reference
        before any stats read, so they are captured eagerly instead —
        the adapter already copied every row at construction, making one
        stats pass the same order of work.
        """
        source = as_fact_source(facts)
        if source is not facts:
            return cls(statistics=shared_statistics(source).frozen_copy())
        return cls(statistics=WeakStatisticsCatalog(source))

    def cardinality(self, relation: str) -> int:
        """Row count of ``relation`` (0 without a source or for unknown names)."""
        return self._statistics.cardinality(relation)

    def column_distinct(self, relation: str, position: int) -> int:
        """Distinct values at one column position (>= 1)."""
        return self._statistics.column_distinct(relation, position)

    def live_source(self) -> Optional[object]:
        """The statistics catalog's live source, if it is still alive.

        ``None`` for frozen/snapshot models — consumers that need current
        data-version tokens (cardinality-feedback corrections) then simply
        stand down.
        """
        return self._statistics.live_source()

    def scan_estimate(self, relation: str, filters: int = 0, equalities: int = 0) -> int:
        """Positionless estimate: the legacy shrink-per-restriction heuristic.

        Kept for callers that only know *how many* restrictions a scan
        carries; :meth:`restriction_estimate` prices known positions with
        real selectivities.  Non-empty relations floor at 1 — like
        :meth:`restriction_estimate` — so a heavily restricted scan of a
        populated relation never ties with a genuinely empty one and
        misorders the join greedily built on these numbers.
        """
        cardinality = self.cardinality(relation)
        if cardinality <= 0:
            return 0
        return max(cardinality // (1 + filters + equalities), 1)

    def restriction_estimate(
        self,
        relation: str,
        constant_positions: Sequence[int] = (),
        equal_position_pairs: Sequence[Tuple[int, int]] = (),
    ) -> int:
        """Estimated output rows of a scan restricted at known positions."""
        if not constant_positions and not equal_position_pairs:
            # Unrestricted scans need only the cardinality, which the
            # catalog serves in O(1) — don't force a distinct-count scan.
            return self._statistics.cardinality(relation)
        stats = self._statistics.stats(relation)
        estimate = float(stats.cardinality)
        if estimate <= 0:
            return 0
        for position in constant_positions:
            estimate /= stats.distinct_at(position)
        for first, second in equal_position_pairs:
            estimate /= max(stats.distinct_at(first), stats.distinct_at(second))
        return max(int(estimate), 1) if estimate > 0 else 0

    def atom_estimate(self, atom: Atom) -> int:
        """Estimated rows produced by scanning for one relational atom."""
        constant_positions: List[int] = []
        equal_pairs: List[Tuple[int, int]] = []
        first_position: Dict[Variable, int] = {}
        for position, arg in enumerate(atom.args):
            if is_variable(arg):
                earlier = first_position.get(arg)
                if earlier is None:
                    first_position[arg] = position
                else:
                    equal_pairs.append((earlier, position))
            else:
                constant_positions.append(position)
        return self.restriction_estimate(
            atom.predicate, constant_positions, equal_pairs
        )


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def _scan_for_atom(atom: Atom) -> ScanNode:
    """Build the scan (plus pushed-down filters) for one relational atom."""
    columns: List[str] = []
    filters: List[Tuple[int, object]] = []
    equal_positions: List[Tuple[int, int]] = []
    first_position: Dict[Variable, int] = {}
    for position, arg in enumerate(atom.args):
        if is_variable(arg):
            if arg in first_position:
                equal_positions.append((first_position[arg], position))
                columns.append(f"_pos{position}")
            else:
                first_position[arg] = position
                columns.append(arg.name)
        else:
            assert isinstance(arg, Constant)
            filters.append((position, arg.value))
            columns.append(f"_pos{position}")
    return ScanNode(
        relation=atom.predicate,
        columns=tuple(columns),
        filters=tuple(filters),
        equal_positions=tuple(equal_positions),
    )


def _estimate(node: PlanNode, cost: CardinalityCostModel) -> int:
    """A cardinality estimate used to pick join order and join build side."""
    if isinstance(node, ScanNode):
        return cost.restriction_estimate(
            node.relation,
            tuple(position for position, _ in node.filters),
            node.equal_positions,
        )
    if isinstance(node, JoinNode):
        return _estimate(node.left, cost) * max(_estimate(node.right, cost), 1)
    if isinstance(node, (SelectNode, ProjectNode, DistinctNode, MaterializeNode)):
        return _estimate(node.children()[0], cost)
    if isinstance(node, UnionNode):
        return sum(_estimate(branch, cost) for branch in node.branches)
    return 1


def _as_cost_model(
    facts: Optional[FactsLike], cost: Optional[CardinalityCostModel]
) -> Optional[CardinalityCostModel]:
    if cost is not None:
        return cost
    if facts is not None:
        return CardinalityCostModel(facts)
    return None


def compile_query(
    query: ConjunctiveQuery,
    facts: Optional[FactsLike] = None,
    cost: Optional[CardinalityCostModel] = None,
) -> PlanNode:
    """Compile one conjunctive query into a logical plan.

    ``facts`` (or an explicit, reusable ``cost`` model) is optional and
    only used for join-order estimates; without either the body order of
    the query is kept (still correct, possibly slower).
    """
    relational = query.relational_body()
    if not relational:
        raise EvaluationError("cannot compile a query with no relational atoms")
    cost = _as_cost_model(facts, cost)

    scans = [_scan_for_atom(atom) for atom in relational]

    # Greedy join ordering: start from the smallest estimated scan, then
    # repeatedly add the scan that shares variables with the current plan
    # (preferring the smallest), falling back to a cross product only when
    # nothing is connected.
    if cost is not None:
        remaining = sorted(scans, key=lambda scan: _estimate(scan, cost))
    else:
        remaining = list(scans)
    plan: PlanNode = remaining.pop(0)
    bound: Set[str] = set(plan.output_columns())
    while remaining:
        connected = [s for s in remaining if set(s.output_columns()) & bound]
        candidates = connected or remaining
        if cost is not None:
            nxt = min(candidates, key=lambda scan: _estimate(scan, cost))
        else:
            nxt = candidates[0]
        remaining.remove(nxt)
        plan = JoinNode(plan, nxt)
        bound |= set(nxt.output_columns())

    comparisons = tuple(query.comparison_body())
    if comparisons:
        plan = SelectNode(plan, comparisons)
    return ProjectNode(plan, tuple(query.head.args))


def compile_union(
    union: UnionQuery,
    facts: Optional[FactsLike] = None,
    cost: Optional[CardinalityCostModel] = None,
    share_common: bool = False,
) -> PlanNode:
    """Compile a union of conjunctive queries into a single plan.

    With ``share_common``, structurally identical branch subplans are
    wrapped in :class:`MaterializeNode` operators sharing one key, so an
    execution that threads a memo dictionary evaluates each distinct
    branch once; the union root is wrapped in an explicit
    :class:`DistinctNode`.  (The richer cross-rewriting sharing — common
    sub-*conjunctions*, not just whole branches — lives in
    :mod:`repro.pdms.planning`.)
    """
    if union.is_empty():
        return EmptyNode(union.arity)
    cost = _as_cost_model(facts, cost)
    branches = tuple(compile_query(disjunct, cost=cost) for disjunct in union)
    if share_common:
        consed: Dict[PlanNode, MaterializeNode] = {}
        shared = []
        for branch in branches:
            node = consed.get(branch)
            if node is None:
                # The key is the branch's full structural rendering, so a
                # memo dictionary shared across execute_plan calls over the
                # same data — even for different compiled plans — only ever
                # reuses a table for a structurally identical subplan.
                node = MaterializeNode(branch, key=repr(branch))
                consed[branch] = node
            shared.append(node)
        return DistinctNode(UnionNode(tuple(shared), union.arity))
    return UnionNode(branches, union.arity)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _scan_projection(node: ScanNode) -> Tuple[List[int], List[str]]:
    """Positions and names of the scan columns that survive projection
    (first occurrence of each variable column)."""
    keep_positions: List[int] = []
    keep_names: List[str] = []
    for position, name in enumerate(node.columns):
        if not name.startswith("_pos") and name not in keep_names:
            keep_positions.append(position)
            keep_names.append(name)
    return keep_positions, keep_names


def _scan_rows(node: ScanNode, facts) -> List[Row]:
    rows = list(facts.get_tuples(node.relation))
    width = len(node.columns)
    for row in rows:
        if len(row) != width:
            raise EvaluationError(
                f"arity mismatch scanning {node.relation}: row width {len(row)} "
                f"vs {width} plan columns"
            )
    return rows


def _execute_scan(node: ScanNode, facts) -> Table:
    rows = []
    for row in _scan_rows(node, facts):
        if any(row[position] != value for position, value in node.filters):
            continue
        if any(row[i] != row[j] for i, j in node.equal_positions):
            continue
        rows.append(row)
    table = Table([f"__c{i}" for i in range(len(node.columns))], rows)
    keep_positions, keep_names = _scan_projection(node)
    projected = table.project([f"__c{i}" for i in keep_positions])
    return projected.rename(dict(zip(projected.columns, keep_names)))


def _node_relations(node: PlanNode) -> FrozenSet[str]:
    """The stored relations a plan subtree scans (its version footprint)."""
    if isinstance(node, ScanNode):
        return frozenset((node.relation,))
    out: Set[str] = set()
    for child in node.children():
        out |= _node_relations(child)
    return frozenset(out)


def _relations_token(source, relations: Iterable[str]) -> Optional[object]:
    """One composite data-version token over ``relations`` (None if any
    relation is unversioned) — the same shape
    :func:`repro.pdms.materialization.data_version_token` produces."""
    parts = []
    for relation in sorted(relations):
        version = source_data_version(source, relation)
        if version is None:
            return None
        parts.append((relation, version))
    return tuple(parts)


def _plan_recorder(feedback: QErrorLog, source, cost: Optional[CardinalityCostModel]):
    """A per-execution hook feeding scan/join actuals into ``feedback``.

    Keys are the node's structural rendering (``repr`` of the frozen
    dataclass) — stable across executions of the same compiled plan, the
    property corrections need.  Without a cost model only actuals are
    recorded (no estimate, no q-error).
    """

    def record(node: PlanNode, actual: int) -> None:
        relations = _node_relations(node)
        estimated = float(_estimate(node, cost)) if cost is not None else None
        feedback.record(
            repr(node), relations, _relations_token(source, relations),
            estimated, actual,
        )

    return record


def _execute_select(node: SelectNode, facts, memo=None, recorder=None) -> Table:
    table = _execute_row(node.child, facts, memo, recorder)

    def satisfied(row: Mapping[str, object]) -> bool:
        for comparison in node.comparisons:
            def value(term: Term) -> object:
                if isinstance(term, Constant):
                    return term.value
                return row[term.name]  # type: ignore[index]

            if not compare_values(value(comparison.left), comparison.op,
                                  value(comparison.right)):
                return False
        return True

    return table.select(satisfied)


def _execute_project(node: ProjectNode, facts, memo=None, recorder=None) -> Table:
    table = _execute_row(node.child, facts, memo, recorder)
    out_rows = []
    for row in table:
        named = dict(zip(table.columns, row))
        out_rows.append(tuple(
            named[term.name] if is_variable(term) else term.value  # type: ignore[union-attr]
            for term in node.head
        ))
    return Table(node.output_columns(), out_rows)


def _execute_row(
    node: PlanNode,
    source,
    memo: Optional[Dict[str, Table]] = None,
    recorder=None,
) -> Table:
    """The row-at-a-time execution path (one Python tuple per step)."""
    if isinstance(node, ScanNode):
        table = _execute_scan(node, source)
        if recorder is not None:
            recorder(node, len(table))
        return table
    if isinstance(node, JoinNode):
        table = _execute_row(node.left, source, memo, recorder).natural_join(
            _execute_row(node.right, source, memo, recorder))
        if recorder is not None:
            recorder(node, len(table))
        return table
    if isinstance(node, SelectNode):
        return _execute_select(node, source, memo=memo, recorder=recorder)
    if isinstance(node, ProjectNode):
        return _execute_project(node, source, memo=memo, recorder=recorder)
    if isinstance(node, UnionNode):
        # Disjuncts may name their head variables differently; align each
        # branch to the union's columns positionally before the union.
        out_columns = node.output_columns()
        tables = []
        for branch in node.branches:
            table = _execute_row(branch, source, memo, recorder)
            if table.columns != out_columns:
                table = table.rename(dict(zip(table.columns, out_columns)))
            tables.append(table)
        return union_many(tables, columns=out_columns)
    if isinstance(node, DistinctNode):
        return _execute_row(node.child, source, memo, recorder).distinct()
    if isinstance(node, MaterializeNode):
        if memo is None:
            return _execute_row(node.child, source, recorder=recorder)
        table = memo.get(node.key)
        if table is None:
            table = memo[node.key] = _execute_row(node.child, source, memo, recorder)
        return table
    if isinstance(node, EmptyNode):
        return Table(node.output_columns(), [])
    raise EvaluationError(f"unknown plan node {type(node).__name__}")


def _operand_column(ct: ColumnTable, term: Term):
    """Resolve a comparison term against a columnar table."""
    if isinstance(term, Constant):
        return None, term.value
    return ct.column(term.name), None  # type: ignore[union-attr]


def _comparison_masks(ct: ColumnTable, comparisons) -> Optional[object]:
    """One fused boolean mask for a tuple of comparison atoms."""
    mask = None
    length = len(ct)
    for comparison in comparisons:
        left_col, left_const = _operand_column(ct, comparison.left)
        right_col, right_const = _operand_column(ct, comparison.right)
        if left_col is None and right_col is None:
            verdict = compare_values(left_const, comparison.op, right_const)
            part = const_column(bool(verdict), length)
        elif left_col is None:
            # const <op> col — flip the operator onto the column side.
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                comparison.op, comparison.op
            )
            part = compare_mask(right_col, flipped, left_const, length)
        elif right_col is None:
            part = compare_mask(left_col, comparison.op, right_const, length)
        else:
            part = compare_cols_mask(left_col, comparison.op, right_col, length)
        mask = _combine_masks(mask, part)
    return mask


def _vectorized_build_right(
    node: JoinNode,
    left_ct: ColumnTable,
    right_ct: ColumnTable,
    cost: Optional[CardinalityCostModel],
) -> bool:
    """Pick the join build side: statistics when available, else actuals."""
    if cost is not None:
        left_est = _estimate(node.left, cost)
        right_est = _estimate(node.right, cost)
        if left_est != right_est:
            return right_est < left_est
    return len(right_ct) <= len(left_ct)


def _execute_vectorized(
    node: PlanNode,
    source,
    memo: Optional[Dict[str, Table]],
    colmemo: Dict[str, ColumnTable],
    cost: Optional[CardinalityCostModel],
    recorder=None,
) -> ColumnTable:
    """The batch execution path: every operator consumes and produces
    :class:`ColumnTable` batches; operators with no kernel fall back to
    the row engine node-by-node and re-lift the result."""
    if isinstance(node, ScanNode):
        ct = ColumnTable.from_rows(
            tuple(f"__c{i}" for i in range(len(node.columns))),
            _scan_rows(node, source),
        )
        ct = ct.fused_select(node.filters, node.equal_positions)
        keep_positions, keep_names = _scan_projection(node)
        ct = ct.project_positions(keep_positions, keep_names)
        if recorder is not None:
            recorder(node, len(ct))
        return ct
    if isinstance(node, JoinNode):
        left_ct = _execute_vectorized(node.left, source, memo, colmemo, cost, recorder)
        right_ct = _execute_vectorized(node.right, source, memo, colmemo, cost, recorder)
        ct = left_ct.natural_join(
            right_ct,
            build_right=_vectorized_build_right(node, left_ct, right_ct, cost),
        )
        if recorder is not None:
            recorder(node, len(ct))
        return ct
    if isinstance(node, SelectNode):
        ct = _execute_vectorized(node.child, source, memo, colmemo, cost, recorder)
        mask = _comparison_masks(ct, node.comparisons)
        return ct if mask is None else ct.select_mask(mask)
    if isinstance(node, ProjectNode):
        ct = _execute_vectorized(node.child, source, memo, colmemo, cost, recorder)
        out_cols = []
        for term in node.head:
            if is_variable(term):
                out_cols.append(ct.column(term.name))
            else:
                out_cols.append(const_column(term.value, len(ct)))
        projected = ColumnTable(node.output_columns(), out_cols, len(ct))
        # Projection can collapse rows; the row path dedups via its set
        # representation, so dedup explicitly here.
        return projected.distinct()
    if isinstance(node, UnionNode):
        out_columns = node.output_columns()
        branches = []
        for branch in node.branches:
            ct = _execute_vectorized(branch, source, memo, colmemo, cost, recorder)
            if ct.columns != out_columns:
                ct = ColumnTable(out_columns, ct.data, len(ct))
            branches.append(ct)
        return union_distinct(branches, columns=out_columns)
    if isinstance(node, DistinctNode):
        return _execute_vectorized(
            node.child, source, memo, colmemo, cost, recorder
        ).distinct()
    if isinstance(node, MaterializeNode):
        ct = colmemo.get(node.key)
        if ct is not None:
            return ct
        if memo is not None:
            table = memo.get(node.key)
            if table is not None:
                ct = ColumnTable.from_table(table)
                colmemo[node.key] = ct
                return ct
        ct = _execute_vectorized(node.child, source, memo, colmemo, cost, recorder)
        colmemo[node.key] = ct
        if memo is not None:
            # The public memo contract stores row tables; keep it so memos
            # can be shared between vectorized and row executions.
            memo[node.key] = ct.to_table()
        return ct
    if isinstance(node, EmptyNode):
        columns = node.output_columns()
        return ColumnTable(columns, tuple([] for _ in columns), 0)
    # Odd operators (future/theta nodes) fall back to the row engine for
    # just this subtree and re-lift the result into a batch.
    return ColumnTable.from_table(_execute_row(node, source, memo, recorder=recorder))


def execute_plan(
    node: PlanNode,
    facts: FactsLike,
    memo: Optional[Dict[str, Table]] = None,
    *,
    vectorized: Optional[bool] = None,
    cost: Optional[CardinalityCostModel] = None,
    feedback: Optional[QErrorLog] = None,
) -> Table:
    """Execute a logical plan over ``facts`` and return the result table.

    ``memo`` (optional) is the shared-result dictionary consulted by
    :class:`MaterializeNode`; pass one dictionary across several
    ``execute_plan`` calls *over the same, unmutated fact source* to reuse
    materialised subplans between them.  Memo keys encode plan structure
    only, so a memo reused across different (or mutated) data would serve
    stale tables — make one per data source.

    ``vectorized`` selects the execution path: ``True`` lowers the plan
    onto the :mod:`repro.database.columnar` batch kernels, ``False`` runs
    the row-at-a-time path, and ``None`` (default) follows the
    ``REPRO_COLUMNAR`` knob (on unless disabled).  Both paths produce the
    same :class:`Table`.  ``cost`` (optional) supplies
    :class:`CardinalityCostModel` statistics so vectorized joins pick
    their build side by estimated cardinality instead of materialised
    size.  ``feedback`` (optional) is a :class:`QErrorLog` that receives
    one ``(estimated, actual)`` observation per scan and join actually
    executed (memoised subplans report only on their first computation).
    """
    source = as_fact_source(facts)
    if vectorized is None:
        vectorized = columnar_enabled()
    recorder = _plan_recorder(feedback, source, cost) if feedback is not None else None
    if vectorized:
        return _execute_vectorized(node, source, memo, {}, cost, recorder).to_table()
    return _execute_row(node, source, memo, recorder=recorder)


def evaluate_query_via_plan(query: ConjunctiveQuery, facts: FactsLike) -> Set[Row]:
    """Compile and execute one conjunctive query; returns a set of rows."""
    plan = compile_query(query, facts)
    return execute_plan(plan, facts).to_set()


def evaluate_union_via_plan(union: UnionQuery, facts: FactsLike) -> Set[Row]:
    """Compile and execute a union of conjunctive queries.

    Structurally identical disjunct subplans are materialised once via a
    shared memo (see :func:`compile_union`).
    """
    plan = compile_union(union, facts, share_common=True)
    return execute_plan(plan, facts, memo={}).to_set()
