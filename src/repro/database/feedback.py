"""Cardinality feedback: measure estimation error, remember the truth.

The cost model (:mod:`repro.database.planner`,
:mod:`repro.database.statistics`) estimates fragment cardinalities from
per-relation statistics under an independence assumption.  On skewed or
correlated data those estimates can be off by orders of magnitude, and
nothing so far *measured* the error — a bad bushy join shape, once
compiled, was locked in forever.  This module closes the loop:

* **q-error** — the standard symmetric estimation-error metric
  ``max(estimated / actual, actual / estimated)`` (both floored at 1).
  A perfect estimate scores 1.0; over- and under-estimation by the same
  factor score the same.

* :class:`QErrorLog` — a thread-safe log the executors feed one
  observation per *freshly computed* fragment: canonical fragment key,
  the relations it reads, the data-version token it was computed at, the
  planner's estimate, and the true row count.  The log maintains
  per-relation and per-column q-error aggregates, a bounded sample
  reservoir for percentiles, and **version-scoped corrections**: the
  observed actual, keyed by fragment key and valid only while the
  data-version token matches — exactly the staleness rule the
  :class:`~repro.pdms.materialization.FragmentCache` uses, so a write to
  any relation a correction depends on invalidates it for free.

* :class:`AdaptiveStats` — the flat counters surfaced through
  ``ServiceStats.adaptive`` (observations, live corrections, corrections
  applied during planning, races run/won/mismatched, mid-union re-plans)
  plus the current q-error percentiles.

Consumers: :mod:`repro.pdms.planning` records observations and reads
corrections while compiling; :class:`repro.pdms.service.QueryService`
owns one log per adaptive service and races challenger plans when the
log's ``generation`` moves.  See ``docs/adaptivity.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..obs.metrics import METRICS_SCHEMA_VERSION

__all__ = [
    "AdaptiveStats",
    "QErrorLog",
    "QErrorObservation",
    "q_error",
]


def q_error(estimated: float, actual: float) -> float:
    """The symmetric relative estimation error, floored at 1.0.

    Both operands are clamped to >= 1 first, so an estimated-0/actual-0
    pair is a perfect 1.0 instead of a division error, and "estimated 0,
    actual 1000" scores the same 1000x as the reverse.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return est / act if est >= act else act / est


@dataclass(frozen=True)
class QErrorObservation:
    """One measured fragment evaluation: what we guessed vs what happened.

    ``estimated`` is ``None`` when the executing plan had no estimate for
    the fragment (no cost model, or a path that only knows actuals);
    such observations still feed corrections consumers may not use, but
    carry no ``q`` and do not move the percentile aggregates.
    """

    key: str
    relations: FrozenSet[str]
    token: object
    estimated: Optional[float]
    actual: int
    q: Optional[float]


class _Aggregate:
    """Streaming q-error summary for one relation or column."""

    __slots__ = ("count", "total", "worst")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.worst = 1.0

    def add(self, q: float) -> None:
        self.count += 1
        self.total += q
        if q > self.worst:
            self.worst = q

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "max": self.worst,
        }


@dataclass
class AdaptiveStats:
    """Counters describing the self-tuning loop (all zero when disabled).

    The percentile fields are refreshed from the owning
    :class:`QErrorLog`'s sample reservoir — continuously every few
    records and explicitly by
    :meth:`repro.pdms.service.QueryService.stats_snapshot`.
    """

    #: Fragment evaluations measured (with or without an estimate).
    observations: int = 0
    #: Version-scoped corrections currently held.
    corrections: int = 0
    #: Estimates overridden by a correction while compiling a plan.
    corrections_applied: int = 0
    #: Champion/challenger races executed.
    races_run: int = 0
    #: Races the challenger won (and was adopted).
    races_won: int = 0
    #: Races where the answer sets differed — champion kept, red flag.
    races_mismatched: int = 0
    #: Mid-union re-optimizations triggered by blown estimates.
    replans: int = 0
    #: q-error percentiles over the recent sample reservoir.
    q_error_p50: float = 0.0
    q_error_p90: float = 0.0
    q_error_max: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "observations": self.observations,
            "corrections": self.corrections,
            "corrections_applied": self.corrections_applied,
            "races_run": self.races_run,
            "races_won": self.races_won,
            "races_mismatched": self.races_mismatched,
            "replans": self.replans,
            "q_error_p50": self.q_error_p50,
            "q_error_p90": self.q_error_p90,
            "q_error_max": self.q_error_max,
        }

    def snapshot(self) -> "AdaptiveStats":
        """An independent copy (the live object keeps mutating)."""
        return replace(self)


def _percentile(ordered, fraction: float) -> float:
    if not ordered:
        return 0.0
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


class QErrorLog:
    """Thread-safe estimation-feedback log with version-scoped corrections.

    Parameters
    ----------
    correction_threshold:
        Minimum q-error before an observation is promoted to a
        correction (and bumps ``generation``).  Estimates better than
        this are left alone — the model was right enough.
    blowup_factor:
        ``actual > blowup_factor * estimated`` counts as a *blown*
        estimate (``blown_events``); the union executor uses the counter
        to trigger mid-union re-optimization.
    max_corrections:
        Bound on held corrections (least recently touched drop first).
    max_observations:
        Bound on the observation ring buffer :meth:`observations` serves.
    replan:
        Whether executors holding this log may re-optimize mid-union on
        blown estimates (measurement-only logs switch this off).
    """

    def __init__(
        self,
        correction_threshold: float = 2.0,
        blowup_factor: float = 8.0,
        max_corrections: int = 4096,
        max_observations: int = 8192,
        replan: bool = True,
    ):
        if correction_threshold < 1.0:
            raise ValueError("correction_threshold must be >= 1.0")
        if blowup_factor < 1.0:
            raise ValueError("blowup_factor must be >= 1.0")
        self.correction_threshold = correction_threshold
        self.blowup_factor = blowup_factor
        self.replan = replan
        self.stats = AdaptiveStats()
        #: Monotone counter: moves whenever the held corrections change in
        #: a way that could change planning decisions.  Plan caches compare
        #: it against the generation they compiled at.
        self.generation = 0
        #: Monotone counter of blown estimates (actual >> estimated).
        self.blown_events = 0
        self._lock = threading.Lock()
        self._max_corrections = max_corrections
        #: key -> (token, actual, relations); valid only at that token.
        self._corrections: "OrderedDict[str, Tuple[object, int, FrozenSet[str]]]" = (
            OrderedDict()
        )
        self._observations: "deque[QErrorObservation]" = deque(maxlen=max_observations)
        self._samples: "deque[float]" = deque(maxlen=4096)
        self._per_relation: Dict[str, _Aggregate] = {}
        self._per_column: Dict[Tuple[str, int], _Aggregate] = {}
        self._since_refresh = 0

    # -- recording ---------------------------------------------------------

    def record(
        self,
        key: str,
        relations: Iterable[str],
        token: object,
        estimated: Optional[float],
        actual: int,
        columns: Iterable[Tuple[str, int]] = (),
    ) -> Optional[float]:
        """Log one fragment evaluation; returns its q-error (if measurable).

        Corrections are stored under ``token``: a later
        :meth:`correction` lookup with a different token — the relations'
        data moved, a peer churned — misses, which is the entire
        invalidation story.  ``columns`` optionally names the
        ``(relation, position)`` pairs the fragment restricted, feeding
        the per-column aggregates.
        """
        with self._lock:
            stats = self.stats
            stats.observations += 1
            q: Optional[float] = None
            if estimated is not None:
                q = q_error(estimated, actual)
                self._samples.append(q)
                for relation in relations:
                    aggregate = self._per_relation.get(relation)
                    if aggregate is None:
                        aggregate = self._per_relation[relation] = _Aggregate()
                    aggregate.add(q)
                for column in columns:
                    aggregate = self._per_column.get(column)
                    if aggregate is None:
                        aggregate = self._per_column[column] = _Aggregate()
                    aggregate.add(q)
                if actual > self.blowup_factor * max(float(estimated), 1.0):
                    self.blown_events += 1
            footprint = frozenset(relations)
            self._observations.append(
                QErrorObservation(key, footprint, token, estimated, actual, q)
            )
            entry = self._corrections.get(key)
            if entry is not None:
                # Keep an existing correction current (fresh token and
                # actual); bump the generation only when the actual moved
                # enough to change planning decisions.
                if q_error(max(entry[1], 1), max(actual, 1)) >= self.correction_threshold:
                    self.generation += 1
                self._corrections[key] = (token, actual, footprint)
                self._corrections.move_to_end(key)
            elif q is not None and q >= self.correction_threshold:
                self._corrections[key] = (token, actual, footprint)
                while len(self._corrections) > self._max_corrections:
                    self._corrections.popitem(last=False)
                self.generation += 1
            stats.corrections = len(self._corrections)
            self._since_refresh += 1
            if self._since_refresh >= 64:
                self._refresh_percentiles_locked()
        return q

    # -- corrections -------------------------------------------------------

    def correction(self, key: str, token: object) -> Optional[int]:
        """The observed cardinality of fragment ``key`` at ``token``.

        ``None`` when no correction is held *or* the held one was
        observed at a different data version — stale truth is no truth.
        """
        with self._lock:
            entry = self._corrections.get(key)
            if entry is None or entry[0] != token:
                return None
            self._corrections.move_to_end(key)
            return entry[1]

    def note_applied(self) -> None:
        """Count one correction actually substituted into a plan."""
        with self._lock:
            self.stats.corrections_applied += 1

    def invalidate_relations(self, relations: Iterable[str]) -> int:
        """Drop corrections that read any of ``relations``; returns count.

        Version tokens already stop stale corrections being *served*;
        this reclaims the entries eagerly (peer removal does the same to
        the fragment cache).
        """
        doomed = set(relations)
        with self._lock:
            stale = [
                key
                for key, (_, _, footprint) in self._corrections.items()
                if footprint & doomed
            ]
            for key in stale:
                del self._corrections[key]
            if stale:
                self.generation += 1
                self.stats.corrections = len(self._corrections)
        return len(stale)

    # -- introspection -----------------------------------------------------

    def observations(self) -> Tuple[QErrorObservation, ...]:
        """The retained observations, oldest first (bounded ring)."""
        with self._lock:
            return tuple(self._observations)

    def per_relation(self) -> Dict[str, Dict[str, float]]:
        """q-error aggregates keyed by relation name."""
        with self._lock:
            return {name: agg.as_dict() for name, agg in self._per_relation.items()}

    def per_column(self) -> Dict[Tuple[str, int], Dict[str, float]]:
        """q-error aggregates keyed by ``(relation, position)``."""
        with self._lock:
            return {col: agg.as_dict() for col, agg in self._per_column.items()}

    def _refresh_percentiles_locked(self) -> None:
        ordered = sorted(self._samples)
        self.stats.q_error_p50 = _percentile(ordered, 0.50)
        self.stats.q_error_p90 = _percentile(ordered, 0.90)
        self.stats.q_error_max = ordered[-1] if ordered else 0.0
        self._since_refresh = 0

    def refresh_percentiles(self) -> None:
        """Recompute the percentile fields on :attr:`stats` now."""
        with self._lock:
            self._refresh_percentiles_locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"QErrorLog({s.observations} obs, {s.corrections} corrections, "
            f"gen {self.generation})"
        )
