"""A small relational-algebra layer over named relations.

The reformulation algorithm outputs a union of conjunctive queries; to
execute it we could evaluate each CQ with the backtracking evaluator in
:mod:`repro.datalog.evaluation`, but a relational-algebra pipeline is how a
real system would run it and it gives us a second, independent evaluation
path to cross-check against in tests.  The operators work over
:class:`Table` objects: an ordered list of column names plus a set of rows.

Provided operators: selection (by predicate or by column/constant and
column/column equality), projection, renaming, natural join, theta join on
explicit column pairs, union, difference, and distinct (implicit — tables
are sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import EvaluationError

Row = Tuple[object, ...]


@dataclass(frozen=True)
class Table:
    """An immutable relation: ordered columns plus a set of rows."""

    columns: Tuple[str, ...]
    rows: frozenset

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[object]] = ()):
        cols = tuple(columns)
        if len(set(cols)) != len(cols):
            raise EvaluationError(f"duplicate column names: {cols}")
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(cols):
                raise EvaluationError(
                    f"row width {len(row)} does not match {len(cols)} columns"
                )
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "rows", frozen)

    @classmethod
    def _trusted(cls, columns: Tuple[str, ...], rows: Iterable[Row]) -> "Table":
        """Fast-path constructor for algebra/planner internals.

        Skips the per-row width re-validation that ``__init__`` performs:
        operator outputs are built from rows of an already-validated table,
        so re-checking every intermediate result is O(n) wasted per
        operator.  Callers must pass a tuple of unique column names and
        rows that are width-matching tuples; validation stays at API
        boundaries (``__init__``).
        """
        table = object.__new__(cls)
        object.__setattr__(table, "columns", columns)
        object.__setattr__(
            table, "rows", rows if isinstance(rows, frozenset) else frozenset(rows)
        )
        return table

    # -- helpers -----------------------------------------------------------------

    def column_index(self, column: str) -> int:
        """Index of a column; raises :class:`EvaluationError` if unknown."""
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise EvaluationError(f"unknown column {column!r}") from exc

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_set(self) -> Set[Row]:
        """Return the rows as a plain set of tuples."""
        return set(self.rows)

    # -- operators ---------------------------------------------------------------

    def select(self, predicate: Callable[[Mapping[str, object]], bool]) -> "Table":
        """Keep rows for which ``predicate`` returns true.

        The predicate receives a dict mapping column names to values.
        """
        kept = [
            row
            for row in self.rows
            if predicate(dict(zip(self.columns, row)))
        ]
        return Table._trusted(self.columns, kept)

    def select_eq(self, column: str, value: object) -> "Table":
        """Keep rows whose ``column`` equals ``value``."""
        index = self.column_index(column)
        return Table._trusted(
            self.columns, [row for row in self.rows if row[index] == value]
        )

    def select_columns_equal(self, first: str, second: str) -> "Table":
        """Keep rows where two columns hold the same value."""
        i, j = self.column_index(first), self.column_index(second)
        return Table._trusted(
            self.columns, [row for row in self.rows if row[i] == row[j]]
        )

    def project(self, columns: Sequence[str]) -> "Table":
        """Project onto ``columns`` (duplicates in the argument are allowed
        and produce repeated output columns with suffixes)."""
        indices = [self.column_index(c) for c in columns]
        out_columns: List[str] = []
        seen: Dict[str, int] = {}
        for column in columns:
            count = seen.get(column, 0)
            out_columns.append(column if count == 0 else f"{column}#{count}")
            seen[column] = count + 1
        rows = [tuple(row[i] for i in indices) for row in self.rows]
        return Table._trusted(tuple(out_columns), rows)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``mapping`` (missing keys unchanged)."""
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        if len(set(new_columns)) != len(new_columns):
            raise EvaluationError(f"duplicate column names: {new_columns}")
        return Table._trusted(new_columns, self.rows)

    def natural_join(self, other: "Table") -> "Table":
        """Natural join on all shared column names (hash join)."""
        shared = [c for c in self.columns if c in other.columns]
        left_only = [c for c in self.columns if c not in shared]
        right_only = [c for c in other.columns if c not in shared]
        out_columns = shared + left_only + right_only

        left_shared_idx = [self.column_index(c) for c in shared]
        left_only_idx = [self.column_index(c) for c in left_only]
        right_shared_idx = [other.column_index(c) for c in shared]
        right_only_idx = [other.column_index(c) for c in right_only]

        index: Dict[Tuple[object, ...], List[Row]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in right_shared_idx)
            index.setdefault(key, []).append(row)

        out_rows: List[Row] = []
        for row in self.rows:
            key = tuple(row[i] for i in left_shared_idx)
            for match in index.get(key, ()):
                out_rows.append(
                    key
                    + tuple(row[i] for i in left_only_idx)
                    + tuple(match[i] for i in right_only_idx)
                )
        return Table._trusted(tuple(out_columns), out_rows)

    def union(self, other: "Table") -> "Table":
        """Set union; requires identical column lists."""
        if self.columns != other.columns:
            raise EvaluationError(
                f"union requires identical columns: {self.columns} vs {other.columns}"
            )
        return Table._trusted(self.columns, self.rows | other.rows)

    def distinct(self) -> "Table":
        """Explicit duplicate elimination.

        Tables are set-semantics already, so this is the identity — but the
        operator exists so that plans (and any future bag-semantics table)
        can mark dedup points explicitly rather than relying on the
        representation.
        """
        return self

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        """An empty table with the given column list."""
        return cls(columns, [])

    def difference(self, other: "Table") -> "Table":
        """Set difference; requires identical column lists."""
        if self.columns != other.columns:
            raise EvaluationError(
                f"difference requires identical columns: {self.columns} vs {other.columns}"
            )
        return Table._trusted(self.columns, self.rows - other.rows)

    def cross(self, other: "Table") -> "Table":
        """Cartesian product; column names must be disjoint."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise EvaluationError(f"cross product requires disjoint columns; shared: {overlap}")
        out_rows = [left + right for left in self.rows for right in other.rows]
        return Table._trusted(self.columns + other.columns, out_rows)

    def __str__(self) -> str:
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        for row in sorted(self.rows, key=repr):
            lines.append(" | ".join(str(v) for v in row))
        return "\n".join(lines)


def union_many(tables: Sequence[Table], columns: Optional[Sequence[str]] = None) -> Table:
    """Set union of many compatible tables in one pass.

    ``columns`` names the output columns of the empty union; with one or
    more inputs every table must share the first table's column list.
    """
    if not tables:
        if columns is None:
            raise EvaluationError("union of zero tables needs explicit columns")
        return Table.empty(columns)
    first = tables[0].columns
    rows: Set[Row] = set()
    for table in tables:
        if table.columns != first:
            raise EvaluationError(
                f"union requires identical columns: {first} vs {table.columns}"
            )
        rows |= table.rows
    return Table._trusted(first, rows)


def table_from_instance(instance, relation: str, columns: Optional[Sequence[str]] = None) -> Table:
    """Build a :class:`Table` from one relation of an instance.

    ``columns`` defaults to the schema's attribute names when the instance
    has a schema, else to ``c0, c1, ...``.
    """
    rows = list(instance.get_tuples(relation))
    if columns is None:
        schema = getattr(instance, "schema", None)
        if schema is not None and relation in schema:
            columns = schema.relation(relation).attributes
        else:
            width = len(rows[0]) if rows else 0
            columns = [f"c{i}" for i in range(width)]
    return Table(columns, rows)
