"""Versioned relation statistics for cost-based planning.

The planners so far estimated scan outputs with a fixed "shrink one notch
per restriction" heuristic — fine for picking *some* join order, useless
for deciding whether a fragment is worth materialising or which bushy
join pair to build first.  This module maintains cheap per-relation
statistics over any fact source:

* **cardinality** — row count;
* **distinct counts per column** — the number of distinct values at each
  argument position, which turns a constant filter into a real point
  selectivity (``cardinality / distinct``) and a repeated-variable or
  join equality into the textbook ``1 / max(d_left, d_right)``;
* **selectivities** derived from the two.

Statistics are *version-validated*: a relation's stats are computed in
one pass over its rows and cached under the source's **data version**
for that relation (see :meth:`repro.database.instance.Instance.data_version`
— a ``(instance id, PredicateIndex.version)`` pair that moves on every
insert/delete).  A later lookup re-reads the version (an O(1) attribute
probe) and recomputes only when the relation actually changed, so a
workload that trickles writes into one relation pays one rescan of that
relation and nothing else.  Sources that expose no ``data_version``
(plain mappings, one-off snapshots) get snapshot semantics: stats are
computed once and never revalidated, matching how long such sources live.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

Row = Tuple[object, ...]


def source_data_version(source: object, relation: str) -> Optional[object]:
    """The source's data-version token for ``relation``, if it has one.

    Returns ``None`` for unversioned sources; tokens are opaque hashable
    values that change whenever the relation's contents may have changed
    (and differ across distinct source objects, so a cache keyed on them
    can never confuse two instances that happen to share relation names).
    """
    reader = getattr(source, "data_version", None)
    if not callable(reader):
        return None
    return reader(relation)


@dataclass(frozen=True)
class RelationStats:
    """One relation's statistics, stamped with the version they describe."""

    relation: str
    cardinality: int
    #: Distinct value count per column position (empty for empty relations).
    distinct: Tuple[int, ...]
    #: Data version the stats were computed at (``None`` when unversioned).
    version: object = None

    def distinct_at(self, position: int) -> int:
        """Distinct values at ``position`` (>= 1; falls back to cardinality)."""
        if 0 <= position < len(self.distinct):
            return max(self.distinct[position], 1)
        return max(self.cardinality, 1)

    def selectivity(self, position: int) -> float:
        """Fraction of rows matched by one constant at ``position``."""
        if self.cardinality <= 0:
            return 0.0
        return 1.0 / self.distinct_at(position)


def compute_relation_stats(
    relation: str, rows: Iterable[Row], version: object = None
) -> RelationStats:
    """One-pass cardinality + per-column distinct counts over ``rows``.

    Tolerates ragged widths (a malformed relation still gets stats for the
    positions it has; probes on it fail elsewhere with a real error).
    """
    cardinality = 0
    seen: list = []
    for row in rows:
        cardinality += 1
        while len(seen) < len(row):
            seen.append(set())
        for position, value in enumerate(row):
            seen[position].add(value)
    return RelationStats(
        relation=relation,
        cardinality=cardinality,
        distinct=tuple(len(values) for values in seen),
        version=version,
    )


class StatisticsCatalog:
    """Per-relation statistics over one fact source, revalidated by version.

    ``stats(relation)`` returns a :class:`RelationStats`, recomputing only
    when the source's data version for that relation moved since the last
    computation.  :meth:`freeze` turns the catalog into a pure snapshot
    that drops its source reference — safe to keep on long-lived compiled
    plans without pinning a removed peer's instance in memory.
    """

    __slots__ = ("_source", "_cache")

    def __init__(self, source: Optional[object] = None):
        self._source = source
        self._cache: Dict[str, RelationStats] = {}

    @property
    def source(self) -> Optional[object]:
        """The live source (``None`` once frozen or constructed without one)."""
        return self._source

    def live_source(self) -> Optional[object]:
        """The source this catalog currently reads, if it is still alive.

        This is what version-scoped consumers (cardinality-feedback
        corrections) use to compute current data-version tokens; a frozen
        catalog returns ``None`` — no live source, no valid token, no
        correction served.
        """
        return self._source

    def stats(self, relation: str) -> RelationStats:
        """Current statistics for ``relation`` (empty stats when unknown)."""
        cached = self._cache.get(relation)
        if self._source is None:
            if cached is not None:
                return cached
            return RelationStats(relation, 0, ())
        version = source_data_version(self._source, relation)
        if cached is not None and (version is None or cached.version == version):
            return cached
        rows = self._source.get_tuples(relation)  # type: ignore[attr-defined]
        computed = compute_relation_stats(relation, rows, version)
        self._cache[relation] = computed
        return computed

    def cardinality(self, relation: str) -> int:
        """Row count of ``relation`` (0 when unknown).

        Served without a row scan whenever possible: a valid cached stats
        entry, else the source's own O(1) ``cardinality`` counter (hash
        indexes track their size).  Full stats — distinct counts — are
        computed only when an estimate actually needs them.
        """
        cached = self._cache.get(relation)
        if cached is not None and (
            self._source is None
            or cached.version == source_data_version(self._source, relation)
        ):
            return cached.cardinality
        if self._source is not None:
            counter = getattr(self._source, "cardinality", None)
            if callable(counter):
                return int(counter(relation))
        return self.stats(relation).cardinality

    def column_distinct(self, relation: str, position: int) -> int:
        """Distinct values at one column position (>= 1)."""
        return self.stats(relation).distinct_at(position)

    def selectivity(self, relation: str, position: int) -> float:
        """Point selectivity of one constant filter at ``position``."""
        return self.stats(relation).selectivity(position)

    def known_relations(self) -> Tuple[str, ...]:
        """Relations with currently cached statistics."""
        return tuple(self._cache)

    def freeze(self) -> "StatisticsCatalog":
        """Capture stats for every enumerable relation, then drop the source.

        Requires a source whose relations can be listed (a ``relations()``
        method — instances and federated sources qualify); sources that
        cannot be enumerated keep whatever is already cached.  Mutates
        *this* catalog — never call it on a catalog obtained from
        :func:`shared_statistics`; use :meth:`frozen_copy` there.
        """
        if self._source is not None:
            lister = getattr(self._source, "relations", None)
            if callable(lister):
                for relation in lister():
                    self.stats(relation)
            self._source = None
        return self

    def frozen_copy(self) -> "StatisticsCatalog":
        """A detached snapshot of this catalog (the original stays live).

        Computes (and caches, benefiting future snapshots of the same
        unchanged source) stats for every enumerable relation, then
        returns a new source-less catalog holding the captured entries.
        """
        if self._source is not None:
            lister = getattr(self._source, "relations", None)
            if callable(lister):
                for relation in lister():
                    self.stats(relation)
        clone = StatisticsCatalog(None)
        clone._cache = dict(self._cache)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = "live" if self._source is not None else "frozen"
        return f"StatisticsCatalog({len(self._cache)} relations, {live})"


class WeakStatisticsCatalog(StatisticsCatalog):
    """A catalog that never pins its source.

    Holds the source through a weak reference and delegates to the
    source's *shared* catalog while it is alive — estimates stay fully
    stats-driven, computed lazily and only for the relations actually
    asked about, at zero eager cost.  Entries observed during the
    source's lifetime are mirrored locally, so once the source is
    dropped the catalog degrades to frozen-snapshot behaviour instead of
    keeping the data alive.  This is what long-lived compiled plans use
    (see ``ensure_plan``): a cached plan must not pin a removed peer's
    instance, and must not pay a full rescan of every relation up front
    the way an eager snapshot would.
    """

    __slots__ = ("_source_ref",)

    def __init__(self, source: object):
        super().__init__(None)
        try:
            self._source_ref: Optional["weakref.ref"] = weakref.ref(source)
        except TypeError:
            # Not weak-referenceable: capture eagerly (the pre-weakref
            # snapshot behaviour) rather than silently pinning it.
            self._source_ref = None
            self._cache = dict(shared_statistics(source).frozen_copy()._cache)

    def _live(self) -> Optional[object]:
        return self._source_ref() if self._source_ref is not None else None

    def live_source(self) -> Optional[object]:
        return self._live()

    def stats(self, relation: str) -> RelationStats:
        source = self._live()
        if source is not None:
            computed = shared_statistics(source).stats(relation)
            self._cache[relation] = computed
            return computed
        return super().stats(relation)

    def cardinality(self, relation: str) -> int:
        source = self._live()
        if source is not None:
            return shared_statistics(source).cardinality(relation)
        return super().cardinality(relation)


_CATALOG_ATTRIBUTE = "_repro_statistics"


def shared_statistics(source: object) -> StatisticsCatalog:
    """One shared catalog per live fact source.

    Every compilation against the same source — including the per-call
    cost model the plan engine builds for each rewriting — reuses the
    same version-validated statistics instead of rescanning relations per
    call.  Sharing is safe because every entry is revalidated on read.
    The catalog rides on the source object itself (instances have a
    ``__dict__``; federated sources reserve a slot), so its lifetime —
    and the lifetime of everything it references — exactly equals the
    source's: no registry that could pin a dropped source.  The
    source→catalog→source cycle is ordinary gc-collectable garbage.
    Sources that cannot carry the attribute get a private catalog
    (per-call dict adapters die with the call anyway).
    """
    cached = getattr(source, _CATALOG_ATTRIBUTE, None)
    if isinstance(cached, StatisticsCatalog):
        return cached
    catalog = StatisticsCatalog(source)
    try:
        setattr(source, _CATALOG_ATTRIBUTE, catalog)
    except (AttributeError, TypeError):
        pass
    return catalog
