"""Columnar batch execution: tables as tuples of columns, batch kernels.

The row engine (:mod:`repro.database.algebra`) processes one Python tuple
at a time over ``frozenset`` rows — clean, but every operator pays per-row
interpreter overhead and the GIL serialises any thread-pooled execution of
it.  This module is the batch-at-a-time alternative:

* a :class:`ColumnTable` stores a relation as one container per column —
  a NumPy ``int64``/``float64`` array when dtype sniffing proves the
  column safely numeric, a plain Python list otherwise (and always, when
  NumPy is not installed);
* batch kernels — hash/merge equi-join, fused selection, zero-copy
  project/rename, column-wise distinct, n-way union — operate on whole
  columns; on the NumPy path the heavy loops run in C **with the GIL
  released**, which is what lets thread-pooled union-plan execution
  finally scale on multicore;
* conversion to and from :class:`~repro.database.algebra.Table` happens
  only at representation boundaries (scans in, answer sets out), so a
  fragment pipeline transposes each input once and stays columnar.

Dtype sniffing is deliberately conservative so columnar results are
*value-identical* to the row engine under Python equality semantics:

* ``int``/``bool`` columns within ``int64`` range → ``int64`` (Python's
  ``True == 1`` already collapses them inside row sets);
* pure ``float`` columns without NaNs → ``float64``;
* anything else — mixed numeric kinds, big integers, strings, ``None``,
  NaN — stays a Python list and flows through the pure-Python kernel
  fallback, which mirrors dict/set semantics exactly.

Cross-kind comparisons (an ``int64`` column against a ``float`` constant,
say) fall back element-wise through
:func:`repro.datalog.atoms.compare_values` rather than risking NumPy's
int→float casting, which disagrees with Python's exact mixed-type
equality beyond 2**53.

See ``docs/columnar.md`` for the representation notes and the full
kernel/fallback matrix.
"""

from __future__ import annotations

from itertools import compress
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..datalog.atoms import compare_values
from ..errors import EvaluationError
from .algebra import Row, Table

try:  # NumPy is optional: every kernel has a pure-Python fallback.
    import numpy as np  # type: ignore
except Exception:  # pragma: no cover - exercised via monkeypatched import
    np = None  # type: ignore

#: True when the NumPy fast path is available in this process.
HAVE_NUMPY = np is not None

#: Code-combination guard: pairwise key-code products stay below this, so
#: combined join codes never overflow int64.
_CODE_LIMIT = 2 ** 62

#: Largest integer magnitude that float64 represents exactly; NumPy
#: comparisons that would cast ints past this fall back to Python.
_EXACT_FLOAT_INT = 2 ** 53


def _is_array(col: object) -> bool:
    return np is not None and isinstance(col, np.ndarray)


def _pylist(col) -> list:
    """The column as a plain Python list (NumPy scalars → Python values)."""
    return col.tolist() if _is_array(col) else col


def _sniff_column(values: list):
    """Choose a column container: ``int64``/``float64`` array or list."""
    if np is None or not values:
        return values
    kinds = set(map(type, values))
    if kinds <= {int, bool} and kinds != {bool}:
        # All-bool columns stay Python lists so True renders as True after
        # a round trip (int64 storage would hand back 1 — equal under set
        # semantics, but golden output renders values).
        if -(2 ** 63) <= min(values) and max(values) < 2 ** 63:
            return np.fromiter(values, dtype=np.int64, count=len(values))
        return values
    if kinds == {float}:
        array = np.fromiter(values, dtype=np.float64, count=len(values))
        # NaN breaks Python's identity-based set membership semantics;
        # keep such columns on the object path.
        if not np.isnan(array).any():
            return array
    return values


def _take(col, indices):
    """Gather ``col`` at ``indices`` (array or list of int)."""
    if _is_array(col):
        return col[indices] if _is_array(indices) else col[np.asarray(indices, dtype=np.intp)] if indices else col[:0]
    if _is_array(indices):
        indices = indices.tolist()
    return [col[i] for i in indices]


def _apply_mask(col, mask):
    if _is_array(col):
        if _is_array(mask):
            return col[mask]
        return col[np.fromiter(mask, dtype=bool, count=len(mask))]
    if _is_array(mask):
        mask = mask.tolist()
    return list(compress(col, mask))


def _mask_and(first, second):
    if first is None:
        return second
    if _is_array(first) and _is_array(second):
        return first & second
    return [a and b for a, b in zip(_pylist(first), _pylist(second))]


def _mask_count(mask) -> int:
    return int(mask.sum()) if _is_array(mask) else sum(1 for m in mask if m)


class ColumnTable:
    """An immutable relation stored column-wise (bag semantics internally).

    ``columns`` names the columns; each entry of the parallel ``data``
    tuple holds that column's values — a NumPy array or a Python list
    (see :func:`_sniff_column`).  Operators share column objects freely
    (project/rename are zero-copy), so instances must be treated as
    immutable, exactly like :class:`~repro.database.algebra.Table`.

    Rows are *not* implicitly deduplicated the way ``Table``'s frozenset
    is; kernels that can introduce duplicates (projection to fewer
    columns, union) call :meth:`distinct` explicitly.
    """

    __slots__ = ("columns", "data", "_length")

    def __init__(self, columns: Sequence[str], data: Sequence[object], length: int):
        self.columns: Tuple[str, ...] = tuple(columns)
        self.data: Tuple[object, ...] = tuple(data)
        self._length = length

    # -- construction / conversion ----------------------------------------

    @classmethod
    def from_rows(
        cls, columns: Sequence[str], rows: Iterable[Row]
    ) -> "ColumnTable":
        """Transpose rows into sniffed columns (the scan boundary)."""
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        width = len(columns)
        if not rows:
            return cls(columns, tuple([] for _ in range(width)), 0)
        transposed = list(zip(*rows)) if width else []
        return cls(
            columns,
            tuple(_sniff_column(list(col)) for col in transposed),
            len(rows),
        )

    @classmethod
    def from_table(cls, table: Table) -> "ColumnTable":
        """Columnar view of a row table (rows are already distinct)."""
        return cls.from_rows(table.columns, list(table.rows))

    def to_table(self) -> Table:
        """Row-table conversion (dedups via the frozenset representation)."""
        return Table._trusted(self.columns, frozenset(self.row_set()))

    def row_set(self) -> Set[Row]:
        """The rows as a set of plain Python tuples."""
        if not self.columns:
            return {()} if self._length else set()
        return set(zip(*(_pylist(col) for col in self.data)))

    def iter_rows(self) -> Iterator[Row]:
        """Iterate rows as Python tuples (duplicates included)."""
        if not self.columns:
            return iter([()] * self._length)
        return zip(*(_pylist(col) for col in self.data))

    def __len__(self) -> int:
        return self._length

    def column(self, name: str):
        """The storage of one column; raises on unknown names."""
        try:
            return self.data[self.columns.index(name)]
        except ValueError:
            raise EvaluationError(f"unknown column {name!r}") from None

    def estimated_bytes(self) -> int:
        """O(1)-ish footprint estimate (mirrors ``estimate_result_bytes``)."""
        total = 128
        for col in self.data:
            if _is_array(col):
                total += int(col.nbytes) + 112
            else:
                total += 56 + 16 * len(col)
        return total

    def __reduce__(self):
        # Ships across process boundaries for the process-pool executor;
        # NumPy arrays pickle natively, lists trivially.
        return (ColumnTable, (self.columns, self.data, self._length))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = "".join(
            "n" if _is_array(col) else "o" for col in self.data
        )
        return f"ColumnTable({self._length}x{len(self.columns)} [{kinds}])"

    # -- zero-copy structural operators ------------------------------------

    def project_positions(
        self, positions: Sequence[int], names: Sequence[str]
    ) -> "ColumnTable":
        """Project to ``positions``, renamed to ``names`` — zero-copy."""
        return ColumnTable(
            names, tuple(self.data[p] for p in positions), self._length
        )

    def project(self, names: Sequence[str]) -> "ColumnTable":
        """Project (and reorder) to existing column ``names`` — zero-copy."""
        indices = []
        for name in names:
            try:
                indices.append(self.columns.index(name))
            except ValueError:
                raise EvaluationError(f"unknown column {name!r}") from None
        return self.project_positions(indices, tuple(names))

    def rename(self, mapping: Mapping[str, str]) -> "ColumnTable":
        """Rename columns — zero-copy."""
        return ColumnTable(
            tuple(mapping.get(c, c) for c in self.columns),
            self.data,
            self._length,
        )

    # -- filtering kernels --------------------------------------------------

    def take(self, indices) -> "ColumnTable":
        """Gather rows at ``indices``."""
        length = len(indices)
        return ColumnTable(
            self.columns,
            tuple(_take(col, indices) for col in self.data),
            length,
        )

    def select_mask(self, mask) -> "ColumnTable":
        """Keep rows where ``mask`` is true (bool array or list)."""
        return ColumnTable(
            self.columns,
            tuple(_apply_mask(col, mask) for col in self.data),
            _mask_count(mask),
        )

    def fused_filter_mask(
        self,
        const_filters: Sequence[Tuple[int, object]] = (),
        equal_pairs: Sequence[Tuple[int, int]] = (),
    ):
        """One combined mask for position=const and position=position filters.

        Returns ``None`` when there is nothing to filter (keep everything).
        """
        mask = None
        for position, value in const_filters:
            mask = _mask_and(mask, _eq_const_mask(self.data[position], value, self._length))
        for first, second in equal_pairs:
            mask = _mask_and(
                mask, _eq_cols_mask(self.data[first], self.data[second], self._length)
            )
        return mask

    def fused_select(
        self,
        const_filters: Sequence[Tuple[int, object]] = (),
        equal_pairs: Sequence[Tuple[int, int]] = (),
    ) -> "ColumnTable":
        """Apply constant and column-equality filters in one pass."""
        mask = self.fused_filter_mask(const_filters, equal_pairs)
        return self if mask is None else self.select_mask(mask)

    # -- dedup --------------------------------------------------------------

    def distinct(self) -> "ColumnTable":
        """Duplicate elimination via column-wise hashing/encoding."""
        if self._length <= 1:
            return self
        if not self.columns:
            return ColumnTable(self.columns, self.data, 1)
        if np is not None and all(_is_array(col) for col in self.data):
            codes = _self_codes(self.data)
            _, first = np.unique(codes, return_index=True)
            if len(first) == self._length:
                return self
            return self.take(first)
        seen: Set[Row] = set()
        keep: List[bool] = []
        for row in zip(*(col if isinstance(col, list) else _pylist(col) for col in self.data)):
            if row in seen:
                keep.append(False)
            else:
                seen.add(row)
                keep.append(True)
        if all(keep):
            return self
        return self.select_mask(keep)

    # -- join ---------------------------------------------------------------

    def natural_join(
        self, other: "ColumnTable", build_right: Optional[bool] = None
    ) -> "ColumnTable":
        """Natural join on all shared column names.

        Column order matches :meth:`Table.natural_join`: shared, then
        left-only, then right-only.  ``build_right`` forces the build
        (sorted/hashed) side; by default the smaller input builds — a
        caller holding cardinality estimates (the vectorized planner) can
        override from its cost model.
        """
        shared = [c for c in self.columns if c in other.columns]
        left_only = [c for c in self.columns if c not in shared]
        right_only = [c for c in other.columns if c not in shared]
        if not shared:
            return self._cross(other)
        left_idx, right_idx = join_indices(
            [self.column(c) for c in shared],
            [other.column(c) for c in shared],
            len(self),
            len(other),
            build_right=build_right,
        )
        length = len(left_idx)
        out_cols: List[object] = []
        for name in shared + left_only:
            out_cols.append(_take(self.column(name), left_idx))
        for name in right_only:
            out_cols.append(_take(other.column(name), right_idx))
        return ColumnTable(shared + left_only + right_only, out_cols, length)

    def _cross(self, other: "ColumnTable") -> "ColumnTable":
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise EvaluationError(
                f"cross product requires disjoint columns; shared: {overlap}"
            )
        nl, nr = len(self), len(other)
        if np is not None:
            left_idx = np.repeat(np.arange(nl, dtype=np.intp), nr)
            right_idx = np.tile(np.arange(nr, dtype=np.intp), nl)
        else:
            left_idx = [i for i in range(nl) for _ in range(nr)]
            right_idx = [j for _ in range(nl) for j in range(nr)]
        return ColumnTable(
            self.columns + other.columns,
            tuple(_take(col, left_idx) for col in self.data)
            + tuple(_take(col, right_idx) for col in other.data),
            nl * nr,
        )


# ---------------------------------------------------------------------------
# Join kernel
# ---------------------------------------------------------------------------

def join_indices(
    left_cols: Sequence[object],
    right_cols: Sequence[object],
    left_len: int,
    right_len: int,
    build_right: Optional[bool] = None,
):
    """Matching row-index pairs of an equi-join on parallel key columns.

    Returns ``(left_indices, right_indices)`` — equal-length index
    sequences such that row ``left_indices[i]`` joins row
    ``right_indices[i]``.  Uses the NumPy sort-merge kernel when every
    key column pair is numeric arrays of the same kind; otherwise a
    dict-based hash join with Python equality semantics.
    """
    if left_len == 0 or right_len == 0:
        empty = np.empty(0, dtype=np.intp) if np is not None else []
        return empty, empty
    numeric = np is not None and all(
        _is_array(l) and _is_array(r) and l.dtype.kind == r.dtype.kind
        for l, r in zip(left_cols, right_cols)
    )
    if build_right is None:
        build_right = right_len <= left_len
    if numeric:
        lkey, rkey = _combined_codes(left_cols, right_cols, left_len)
        if build_right:
            probe_idx, build_idx = _sorted_probe(rkey, lkey)
            return probe_idx, build_idx
        probe_idx, build_idx = _sorted_probe(lkey, rkey)
        return build_idx, probe_idx
    return _dict_join(left_cols, right_cols, left_len, right_len, build_right)


def _combined_codes(left_cols, right_cols, left_len):
    """Encode multi-column keys of both sides into one shared int64 space."""
    if len(left_cols) == 1 and left_cols[0].dtype == right_cols[0].dtype:
        return left_cols[0], right_cols[0]
    lkey = rkey = None
    card_bound = 1
    for lcol, rcol in zip(left_cols, right_cols):
        concat = np.concatenate([lcol, rcol])
        uniq, inverse = np.unique(concat, return_inverse=True)
        lcode, rcode = inverse[:left_len], inverse[left_len:]
        card = len(uniq)
        if lkey is None:
            lkey, rkey, card_bound = lcode, rcode, card
            continue
        if card_bound > _CODE_LIMIT // max(card, 1):
            # Re-densify before multiplying so codes stay within int64.
            both = np.concatenate([lkey, rkey])
            _, inverse2 = np.unique(both, return_inverse=True)
            lkey, rkey = inverse2[:left_len], inverse2[left_len:]
            card_bound = len(lkey) + len(rkey)
        lkey = lkey * card + lcode
        rkey = rkey * card + rcode
        card_bound *= card
    return lkey, rkey


def _sorted_probe(build, probe):
    """Sort-merge core: returns (probe_indices, build_indices)."""
    order = np.argsort(build, kind="stable")
    sorted_build = build[order]
    lo = np.searchsorted(sorted_build, probe, "left")
    hi = np.searchsorted(sorted_build, probe, "right")
    counts = hi - lo
    total = int(counts.sum())
    probe_idx = np.repeat(np.arange(len(probe), dtype=np.intp), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    build_idx = order[starts + offsets]
    return probe_idx, build_idx


def _dict_join(left_cols, right_cols, left_len, right_len, build_right):
    """Hash join with Python equality (the mixed-dtype / no-NumPy path)."""
    left_lists = [_pylist(col) for col in left_cols]
    right_lists = [_pylist(col) for col in right_cols]

    def keys_of(lists, length):
        if len(lists) == 1:
            return lists[0]
        return list(zip(*lists)) if lists else [()] * length

    left_keys = keys_of(left_lists, left_len)
    right_keys = keys_of(right_lists, right_len)
    if build_right:
        build_keys, probe_keys = right_keys, left_keys
    else:
        build_keys, probe_keys = left_keys, right_keys
    buckets: Dict[object, List[int]] = {}
    for index, key in enumerate(build_keys):
        buckets.setdefault(key, []).append(index)
    probe_idx: List[int] = []
    build_idx: List[int] = []
    for index, key in enumerate(probe_keys):
        for match in buckets.get(key, ()):
            probe_idx.append(index)
            build_idx.append(match)
    if build_right:
        return probe_idx, build_idx
    return build_idx, probe_idx


# ---------------------------------------------------------------------------
# Self-encoding (distinct) helper
# ---------------------------------------------------------------------------

def _self_codes(cols):
    """Combine one table's numeric columns into a single int64 code column."""
    key = None
    card_bound = 1
    for col in cols:
        _, code = np.unique(col, return_inverse=True)
        card = int(code.max()) + 1 if len(code) else 1
        if key is None:
            key, card_bound = code, card
            continue
        if card_bound > _CODE_LIMIT // max(card, 1):
            _, key = np.unique(key, return_inverse=True)
            card_bound = len(key)
        key = key * card + code
        card_bound *= card
    if key is None:
        return np.zeros(0, dtype=np.int64)
    return key


# ---------------------------------------------------------------------------
# Union
# ---------------------------------------------------------------------------

def union_all(
    tables: Sequence[ColumnTable], columns: Optional[Sequence[str]] = None
) -> ColumnTable:
    """Bag concatenation of column-compatible tables (no dedup).

    Inputs must share the first table's column list (like
    :func:`repro.database.algebra.union_many`); ``columns`` names the
    output of an empty union.
    """
    tables = [t for t in tables if t is not None]
    if not tables:
        if columns is None:
            raise EvaluationError("union of zero tables needs explicit columns")
        return ColumnTable(columns, tuple([] for _ in columns), 0)
    first = tables[0]
    for table in tables[1:]:
        if table.columns != first.columns:
            raise EvaluationError(
                f"union requires identical columns: {first.columns} vs "
                f"{table.columns}"
            )
    if len(tables) == 1:
        return first
    length = sum(len(t) for t in tables)
    out_cols = []
    for position in range(len(first.columns)):
        parts = [t.data[position] for t in tables]
        if np is not None and all(_is_array(p) for p in parts) and len(
            {p.dtype for p in parts}
        ) == 1:
            out_cols.append(np.concatenate(parts))
        else:
            merged: List[object] = []
            for part in parts:
                merged.extend(_pylist(part))
            out_cols.append(merged)
    return ColumnTable(first.columns, out_cols, length)


def union_distinct(
    tables: Sequence[ColumnTable], columns: Optional[Sequence[str]] = None
) -> ColumnTable:
    """Set union of many column-compatible tables."""
    return union_all(tables, columns).distinct()


def const_column(value, length: int):
    """A column holding ``value`` at every position (sniffed like data)."""
    if np is not None:
        vtype = type(value)
        # bool constants stay Python lists so True survives as True (an
        # int64 column would hand back 1 — same set semantics, but the
        # rendered value matters to golden output).
        if vtype is int and -(2 ** 63) <= value < 2 ** 63:
            return np.full(length, value, dtype=np.int64)
        if vtype is float and value == value:  # excludes NaN
            return np.full(length, value, dtype=np.float64)
    return [value] * length


# ---------------------------------------------------------------------------
# Comparison masks (the fused-select building block)
# ---------------------------------------------------------------------------

def _full_mask(value: bool, length: int):
    if np is not None:
        return np.full(length, value, dtype=bool)
    return [value] * length


def _loop_mask(left_values, op: str, right_values):
    return [
        compare_values(a, op, b) for a, b in zip(left_values, right_values)
    ]


def _numeric_const(col, value) -> bool:
    """Can ``col <op> value`` run in NumPy with exact Python semantics?"""
    kind = col.dtype.kind
    vtype = type(value)
    if kind == "i":
        return vtype in (int, bool) and -(2 ** 63) <= value < 2 ** 63
    if kind == "f":
        if vtype is float:
            return True
        return vtype in (int, bool) and abs(value) <= _EXACT_FLOAT_INT
    return False


_NUMPY_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _eq_const_mask(col, value, length: int):
    return compare_mask(col, "=", value, length)


def _eq_cols_mask(first, second, length: int):
    return compare_cols_mask(first, "=", second, length)


def compare_mask(col, op: str, value, length: int):
    """Element-wise ``col <op> value`` under Python comparison semantics."""
    if _is_array(col):
        if _numeric_const(col, value):
            return _NUMPY_OPS[op](col, value)
        if op in ("=", "!=") and type(value) not in (int, bool, float):
            # A non-numeric constant never equals a numeric cell.
            return _full_mask(op == "!=", length)
        values = col.tolist()
        if np is not None:
            return np.fromiter(
                (compare_values(v, op, value) for v in values),
                dtype=bool,
                count=length,
            )
        return [compare_values(v, op, value) for v in values]
    return [compare_values(v, op, value) for v in col]


def compare_cols_mask(first, op: str, second, length: int):
    """Element-wise ``first <op> second`` under Python semantics."""
    if _is_array(first) and _is_array(second) and first.dtype.kind == second.dtype.kind:
        return _NUMPY_OPS[op](first, second)
    mask = _loop_mask(_pylist(first), op, _pylist(second))
    if np is not None:
        return np.fromiter(mask, dtype=bool, count=length)
    return mask
