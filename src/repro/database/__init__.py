"""Relational database substrate: schemas, instances, and a relational algebra."""

from .algebra import Table, table_from_instance, union_many
from .columnar import (
    HAVE_NUMPY,
    ColumnTable,
    compare_cols_mask,
    compare_mask,
    join_indices,
    union_all,
    union_distinct,
)
from .csvio import load_instance_directory, load_relation_csv, save_relation_csv
from .feedback import AdaptiveStats, QErrorLog, QErrorObservation, q_error
from .instance import Instance
from .planner import (
    CardinalityCostModel,
    compile_query,
    compile_union,
    evaluate_query_via_plan,
    evaluate_union_via_plan,
    execute_plan,
)
from .schema import DatabaseSchema, RelationSchema
from .statistics import RelationStats, StatisticsCatalog, compute_relation_stats

__all__ = [
    "AdaptiveStats",
    "CardinalityCostModel",
    "ColumnTable",
    "DatabaseSchema",
    "HAVE_NUMPY",
    "Instance",
    "QErrorLog",
    "QErrorObservation",
    "RelationSchema",
    "RelationStats",
    "StatisticsCatalog",
    "Table",
    "q_error",
    "compare_cols_mask",
    "compare_mask",
    "compute_relation_stats",
    "join_indices",
    "compile_query",
    "compile_union",
    "evaluate_query_via_plan",
    "evaluate_union_via_plan",
    "execute_plan",
    "load_instance_directory",
    "load_relation_csv",
    "save_relation_csv",
    "table_from_instance",
    "union_all",
    "union_distinct",
    "union_many",
]
