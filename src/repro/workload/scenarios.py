"""The emergency-services PDMS of Figure 1, as a ready-made scenario.

The paper's running example is a PDMS coordinating emergency response at
the Oregon–Washington border: hospitals (First Hospital, Lakeview
Hospital) and fire districts (Portland, Vancouver) publish stored
relations; the Hospitals (H) and Fire Services (FS) peers mediate them;
the 911 Dispatch Center (9DC) unifies everything; and after an earthquake
an Earthquake Command Center (ECC) joins ad hoc and immediately reaches
all existing sources through transitive mappings.

:func:`build_emergency_services` constructs that PDMS with the schemas of
Figure 1, the GAV- and LAV-style mappings of Example 2.2, the storage
descriptions of Example 2.3, and the replication equality of Section 3
(``ECC:Vehicle = 9DC:Vehicle``).  :func:`sample_instance` returns a small
but non-trivial data set for the stored relations, and
:func:`example_queries` a handful of queries used by the examples and the
integration tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..database.instance import Instance
from ..datalog.parser import parse_atom, parse_query
from ..datalog.queries import ConjunctiveQuery
from ..pdms.mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
    lav_style,
    replication,
)
from ..pdms.peer import Peer
from ..pdms.system import PDMS


def build_emergency_services(include_ecc: bool = True) -> PDMS:
    """Build the Figure-1 emergency-services PDMS.

    Parameters
    ----------
    include_ecc:
        Whether the Earthquake Command Center (the "ad hoc addition to the
        system") has already joined.  Examples use ``False`` first and then
        add it, mirroring the paper's narrative.
    """
    pdms = PDMS("emergency-services")

    # -- peers and their schemas (Figure 1) -------------------------------------

    ninedc = pdms.add_peer(Peer("9DC"))
    ninedc.add_relation("SkilledPerson", ["PID", "skill"])
    ninedc.add_relation("Located", ["PID", "where"])
    ninedc.add_relation("Hours", ["PID", "start", "stop"])
    ninedc.add_relation("TreatedVictim", ["PID", "BID", "state"])
    ninedc.add_relation("UntreatedVictim", ["loc", "state"])
    ninedc.add_relation("Vehicle", ["VID", "type", "capac", "GPS", "dest"])
    ninedc.add_relation("Bed", ["BID", "loc", "class"])
    ninedc.add_relation("Site", ["GPS", "status"])

    hospitals = pdms.add_peer(Peer("H"))
    hospitals.add_relation("Worker", ["SID", "first", "last"])
    hospitals.add_relation("Ambulance", ["VID", "hosp", "GPS", "dest"])
    hospitals.add_relation("EMT", ["SID", "hosp", "VID", "start", "end"])
    hospitals.add_relation("Doctor", ["SID", "hosp", "loc", "start", "end"])
    hospitals.add_relation("EmergBed", ["bed", "hosp", "room"])
    hospitals.add_relation("CritBed", ["bed", "hosp", "room"])
    hospitals.add_relation("GenBed", ["bed", "hosp", "room"])
    hospitals.add_relation("Patient", ["PID", "bed", "status"])

    fire = pdms.add_peer(Peer("FS"))
    fire.add_relation("Engine", ["VID", "cap", "status", "station", "loc", "dest"])
    fire.add_relation("FirstResponse", ["VID", "station", "loc", "dest"])
    fire.add_relation("Skills", ["SID", "skill"])
    fire.add_relation("Firefighter", ["SID", "station", "first", "last"])
    fire.add_relation("Schedule", ["SID", "VID", "start", "stop"])

    first_hospital = pdms.add_peer(Peer("FH"))
    first_hospital.add_relation("Ambulance", ["VID", "GPS", "dest"])
    first_hospital.add_relation("Staff", ["SID", "firstn", "lastn", "start", "end"])
    first_hospital.add_relation("EMT", ["SID", "VID"])
    first_hospital.add_relation("Doctor", ["SID", "loc"])
    first_hospital.add_relation("Bed", ["bed", "room", "class"])
    first_hospital.add_relation("Patient", ["PID", "bed", "status"])

    lakeview = pdms.add_peer(Peer("LH"))
    lakeview.add_relation("Ambulance", ["VID", "GPS", "dest"])
    lakeview.add_relation("InAmbulance", ["SID", "VID"])
    lakeview.add_relation("Staff", ["SID", "firstn", "lastn", "class"])
    lakeview.add_relation("Schedule", ["SID", "start", "end"])
    lakeview.add_relation("EmergBed", ["bed", "room", "PID", "status"])
    lakeview.add_relation("CritBed", ["bed", "room", "PID", "status"])
    lakeview.add_relation("GenBed", ["bed", "room", "PID", "status"])

    portland = pdms.add_peer(Peer("PFD"))
    portland.add_relation("Engine", ["VID", "cap", "status", "station", "loc", "dest"])
    portland.add_relation("Firefighter", ["SID", "station", "first", "last"])
    portland.add_relation("Skills", ["SID", "skill"])
    portland.add_relation("Schedule", ["SID", "VID", "start", "stop"])

    vancouver = pdms.add_peer(Peer("VFD"))
    vancouver.add_relation("Engine", ["VID", "cap", "status", "station", "loc", "dest"])
    vancouver.add_relation("Firefighter", ["SID", "station", "first", "last"])
    vancouver.add_relation("Skills", ["SID", "skill"])
    vancouver.add_relation("Schedule", ["SID", "VID", "start", "stop"])

    # -- 9DC mediates H and FS (Example 2.2, GAV-style definitional mappings) ---

    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:SkilledPerson(sid, "Doctor") :- H:Doctor(sid, h, l, s, e)'),
        name="9dc_skilled_doctor"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:SkilledPerson(sid, "EMT") :- H:EMT(sid, h, vid, s, e)'),
        name="9dc_skilled_hospital_emt"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:SkilledPerson(sid, "EMT") :- FS:Schedule(sid, vid, st, en), '
        'FS:FirstResponse(vid, s, l, d), FS:Skills(sid, "medical")'),
        name="9dc_skilled_fire_emt"))

    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Vehicle(vid, "ambulance", 4, gps, dest) :- H:Ambulance(vid, h, gps, dest)'),
        name="9dc_vehicle_ambulance"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Vehicle(vid, "engine", cap, loc, dest) :- '
        'FS:Engine(vid, cap, status, station, loc, dest)'),
        name="9dc_vehicle_engine"))

    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Bed(bid, hosp, "critical") :- H:CritBed(bid, hosp, room)'),
        name="9dc_bed_critical"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Bed(bid, hosp, "emergency") :- H:EmergBed(bid, hosp, room)'),
        name="9dc_bed_emergency"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Bed(bid, hosp, "general") :- H:GenBed(bid, hosp, room)'),
        name="9dc_bed_general"))

    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Located(sid, loc) :- H:Doctor(sid, h, loc, s, e)'),
        name="9dc_located_doctor"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Hours(sid, s, e) :- H:Doctor(sid, h, l, s, e)'),
        name="9dc_hours_doctor"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        '9DC:Hours(sid, s, e) :- FS:Schedule(sid, vid, s, e)'),
        name="9dc_hours_fire"))

    # -- Lakeview Hospital described as views over H (Example 2.2, LAV-style) ---

    pdms.add_peer_mapping(lav_style(
        parse_atom('LH:CritBed(bed, room, pid, status)'),
        parse_query('R(bed, room, pid, status) :- H:CritBed(bed, h, room), '
                    'H:Patient(pid, bed, status)'),
        name="lh_critbed"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('LH:EmergBed(bed, room, pid, status)'),
        parse_query('R(bed, room, pid, status) :- H:EmergBed(bed, h, room), '
                    'H:Patient(pid, bed, status)'),
        name="lh_emergbed"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('LH:GenBed(bed, room, pid, status)'),
        parse_query('R(bed, room, pid, status) :- H:GenBed(bed, h, room), '
                    'H:Patient(pid, bed, status)'),
        name="lh_genbed"))
    # Lakeview's staff roster (which also records a job class) is contained,
    # once the class is projected away, in the hospitals' worker registry —
    # a non-atomic left-hand side, exercising the synthetic-predicate path
    # of the Step-1 normalisation.
    pdms.add_peer_mapping(InclusionMapping(
        parse_query('L(sid, first, last) :- LH:Staff(sid, first, last, class)'),
        parse_query('R(sid, first, last) :- H:Worker(sid, first, last)'),
        name="lh_staff"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('LH:Ambulance(vid, gps, dest)'),
        parse_query('R(vid, gps, dest) :- H:Ambulance(vid, h, gps, dest)'),
        name="lh_ambulance"))

    # -- First Hospital described as views over H (LAV-style) --------------------

    pdms.add_peer_mapping(lav_style(
        parse_atom('FH:Doctor(sid, loc)'),
        parse_query('R(sid, loc) :- H:Doctor(sid, h, loc, s, e)'),
        name="fh_doctor"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('FH:EMT(sid, vid)'),
        parse_query('R(sid, vid) :- H:EMT(sid, h, vid, s, e)'),
        name="fh_emt"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('FH:Staff(sid, first, last, s, e)'),
        parse_query('R(sid, first, last, s, e) :- H:Worker(sid, first, last), '
                    'H:Doctor(sid, h, l, s, e)'),
        name="fh_staff"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('FH:Patient(pid, bed, status)'),
        parse_query('R(pid, bed, status) :- H:Patient(pid, bed, status)'),
        name="fh_patient"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('FH:Ambulance(vid, gps, dest)'),
        parse_query('R(vid, gps, dest) :- H:Ambulance(vid, h, gps, dest)'),
        name="fh_ambulance"))
    pdms.add_peer_mapping(lav_style(
        parse_atom('FH:Bed(bed, room, "critical")'),
        parse_query('R(bed, room, "critical") :- H:CritBed(bed, h, room)'),
        name="fh_bed_critical"))

    # -- Fire districts described as views over FS -------------------------------

    for district, name_prefix in (("PFD", "pfd"), ("VFD", "vfd")):
        pdms.add_peer_mapping(lav_style(
            parse_atom(f'{district}:Engine(vid, cap, status, station, loc, dest)'),
            parse_query('R(vid, cap, status, station, loc, dest) :- '
                        'FS:Engine(vid, cap, status, station, loc, dest)'),
            name=f"{name_prefix}_engine"))
        pdms.add_peer_mapping(lav_style(
            parse_atom(f'{district}:Firefighter(sid, station, first, last)'),
            parse_query('R(sid, station, first, last) :- '
                        'FS:Firefighter(sid, station, first, last)'),
            name=f"{name_prefix}_firefighter"))
        pdms.add_peer_mapping(lav_style(
            parse_atom(f'{district}:Skills(sid, skill)'),
            parse_query('R(sid, skill) :- FS:Skills(sid, skill)'),
            name=f"{name_prefix}_skills"))
        pdms.add_peer_mapping(lav_style(
            parse_atom(f'{district}:Schedule(sid, vid, start, stop)'),
            parse_query('R(sid, vid, start, stop) :- FS:Schedule(sid, vid, start, stop)'),
            name=f"{name_prefix}_schedule"))

    # -- storage descriptions ------------------------------------------------------

    # Example 2.3: First Hospital's stored doctor and schedule relations.
    pdms.add_storage_description(StorageDescription(
        "FH", "doc",
        parse_query('V(sid, last, loc) :- FH:Staff(sid, f, last, s, e), FH:Doctor(sid, loc)'),
        exact=False, name="fh_store_doc"))
    pdms.add_storage_description(StorageDescription(
        "FH", "sched",
        parse_query('V(sid, s, e) :- FH:Staff(sid, f, last, s, e), FH:Doctor(sid, loc)'),
        exact=False, name="fh_store_sched"))
    pdms.add_storage_description(StorageDescription(
        "FH", "fh_patients",
        parse_query('V(pid, bed, status) :- FH:Patient(pid, bed, status)'),
        exact=False, name="fh_store_patients"))
    pdms.add_storage_description(StorageDescription(
        "FH", "fh_ambulances",
        parse_query('V(vid, gps, dest) :- FH:Ambulance(vid, gps, dest)'),
        exact=False, name="fh_store_ambulances"))
    pdms.add_storage_description(StorageDescription(
        "FH", "fh_emts",
        parse_query('V(sid, vid) :- FH:EMT(sid, vid)'),
        exact=False, name="fh_store_emts"))

    # Lakeview Hospital stores its bed boards and staff roster.
    pdms.add_storage_description(StorageDescription(
        "LH", "lh_critical",
        parse_query('V(bed, room, pid, status) :- LH:CritBed(bed, room, pid, status)'),
        exact=False, name="lh_store_critical"))
    pdms.add_storage_description(StorageDescription(
        "LH", "lh_emergency",
        parse_query('V(bed, room, pid, status) :- LH:EmergBed(bed, room, pid, status)'),
        exact=False, name="lh_store_emergency"))
    pdms.add_storage_description(StorageDescription(
        "LH", "lh_staff",
        parse_query('V(sid, first, last, class) :- LH:Staff(sid, first, last, class)'),
        exact=False, name="lh_store_staff"))

    # Fire stations store engine and roster data for their districts.
    pdms.add_storage_description(StorageDescription(
        "PFD", "station12_engines",
        parse_query('V(vid, cap, status, loc, dest) :- '
                    'PFD:Engine(vid, cap, status, "station12", loc, dest)'),
        exact=False, name="pfd_store_station12_engines"))
    pdms.add_storage_description(StorageDescription(
        "PFD", "station12_roster",
        parse_query('V(sid, first, last) :- PFD:Firefighter(sid, "station12", first, last)'),
        exact=False, name="pfd_store_station12_roster"))
    pdms.add_storage_description(StorageDescription(
        "PFD", "station12_skills",
        parse_query('V(sid, skill) :- PFD:Skills(sid, skill)'),
        exact=False, name="pfd_store_station12_skills"))
    pdms.add_storage_description(StorageDescription(
        "PFD", "station12_schedule",
        parse_query('V(sid, vid, start, stop) :- PFD:Schedule(sid, vid, start, stop)'),
        exact=False, name="pfd_store_station12_schedule"))
    pdms.add_storage_description(StorageDescription(
        "VFD", "station3_engines",
        parse_query('V(vid, cap, status, loc, dest) :- '
                    'VFD:Engine(vid, cap, status, "station3", loc, dest)'),
        exact=False, name="vfd_store_station3_engines"))
    pdms.add_storage_description(StorageDescription(
        "VFD", "station3_skills",
        parse_query('V(sid, skill) :- VFD:Skills(sid, skill)'),
        exact=False, name="vfd_store_station3_skills"))
    pdms.add_storage_description(StorageDescription(
        "VFD", "station3_schedule",
        parse_query('V(sid, vid, start, stop) :- VFD:Schedule(sid, vid, start, stop)'),
        exact=False, name="vfd_store_station3_schedule"))
    pdms.add_storage_description(StorageDescription(
        "VFD", "station3_first_response",
        parse_query('V(vid, loc, dest) :- FS:FirstResponse(vid, "station3", loc, dest)'),
        exact=False, name="vfd_store_station3_first_response"))

    # -- the ad hoc Earthquake Command Center ---------------------------------------

    if include_ecc:
        add_earthquake_command_center(pdms)

    return pdms


def add_earthquake_command_center(pdms: PDMS) -> Peer:
    """Add the ECC peer and its mappings to an existing emergency-services PDMS.

    Mirrors the paper's narrative: once mappings between the ECC and the
    existing 911 Dispatch Center are provided, queries over either peer can
    use all source relations.  Includes the Section-3 replication equality
    ``ECC:Vehicle = 9DC:Vehicle``.
    """
    ecc = pdms.add_peer(Peer("ECC"))
    ecc.add_relation("TreatedVictim", ["PID", "BID", "state"])
    ecc.add_relation("UntreatedVictim", ["loc", "state"])
    ecc.add_relation("Vehicle", ["VID", "type", "capac", "GPS", "dest"])
    ecc.add_relation("Bed", ["BID", "loc", "class"])
    ecc.add_relation("Site", ["GPS", "status"])
    ecc.add_relation("Responder", ["PID", "skill"])

    # Data replication (Section 3): projection-free equality, hence a cycle
    # that stays within the tractable fragment of Theorem 3.2.
    pdms.add_peer_mapping(replication(
        parse_atom('ECC:Vehicle(vid, t, c, g, d)'),
        parse_atom('9DC:Vehicle(vid, t, c, g, d)'),
        name="ecc_vehicle_replication"))

    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        'ECC:Bed(bid, loc, class) :- 9DC:Bed(bid, loc, class)'),
        name="ecc_bed"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        'ECC:Responder(pid, skill) :- 9DC:SkilledPerson(pid, skill)'),
        name="ecc_responder"))
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        'ECC:Site(gps, status) :- 9DC:Site(gps, status)'),
        name="ecc_site"))
    return ecc


def sample_instance() -> Instance:
    """A small but non-trivial data set for the scenario's stored relations."""
    instance = Instance()
    instance.add_all("doc", [
        ("d1", "Nguyen", "ICU"),
        ("d2", "Okafor", "ER"),
        ("d3", "Silva", "Ward3"),
    ])
    instance.add_all("sched", [
        ("d1", 8, 16),
        ("d2", 16, 24),
        ("d3", 8, 12),
    ])
    instance.add_all("fh_patients", [
        ("p1", "bed10", "stable"),
        ("p2", "bed11", "critical"),
    ])
    instance.add_all("fh_ambulances", [
        ("amb1", "45.52,-122.68", "FH"),
        ("amb2", "45.60,-122.60", "LH"),
    ])
    instance.add_all("fh_emts", [
        ("e1", "amb1"),
        ("e2", "amb2"),
    ])
    instance.add_all("lh_critical", [
        ("bed20", "icu-2", "p9", "critical"),
        ("bed21", "icu-2", "p10", "guarded"),
    ])
    instance.add_all("lh_emergency", [
        ("bed30", "er-1", "p11", "stable"),
    ])
    instance.add_all("lh_staff", [
        ("n1", "Asha", "Patel", "nurse"),
        ("d4", "Liu", "Chen", "doctor"),
    ])
    instance.add_all("station12_engines", [
        ("eng12", 6, "ready", "45.51,-122.66", "downtown"),
        ("eng13", 4, "out", "45.53,-122.70", "bridge"),
    ])
    instance.add_all("station12_roster", [
        ("f1", "Jo", "Kim"),
        ("f2", "Max", "Rossi"),
    ])
    instance.add_all("station12_skills", [
        ("f1", "medical"),
        ("f2", "ladder"),
    ])
    instance.add_all("station12_schedule", [
        ("f1", "eng12", 8, 20),
        ("f2", "eng13", 20, 8),
    ])
    instance.add_all("station3_engines", [
        ("eng31", 6, "ready", "45.63,-122.67", "harbor"),
    ])
    instance.add_all("station3_skills", [
        ("f7", "medical"),
        ("f8", "rescue"),
    ])
    instance.add_all("station3_schedule", [
        ("f7", "eng31", 8, 20),
    ])
    instance.add_all("station3_first_response", [
        ("eng31", "45.63,-122.67", "harbor"),
    ])
    return instance


#: Which scenario peer owns each stored relation of :func:`sample_instance`
#: (derivable from the storage descriptions; spelled out for the per-peer
#: splitters below).
SAMPLE_RELATION_OWNERS: Dict[str, str] = {
    "doc": "FH", "sched": "FH", "fh_patients": "FH",
    "fh_ambulances": "FH", "fh_emts": "FH",
    "lh_critical": "LH", "lh_emergency": "LH", "lh_staff": "LH",
    "station12_engines": "PFD", "station12_roster": "PFD",
    "station12_skills": "PFD", "station12_schedule": "PFD",
    "station3_engines": "VFD", "station3_skills": "VFD",
    "station3_schedule": "VFD", "station3_first_response": "VFD",
}


def sample_peer_instances() -> Dict[str, Instance]:
    """The :func:`sample_instance` rows split per owning peer.

    The natural shape for the distributed runtime: four data-bearing
    peers (FH, LH, PFD, VFD), each holding exactly the stored relations
    its storage descriptions declare — ready to hand to a
    :class:`~repro.pdms.distributed.transport.LoopbackTransport` or to
    ship into per-peer worker processes.
    """
    combined = sample_instance()
    per_peer: Dict[str, Instance] = {}
    for relation in combined.relations():
        owner = SAMPLE_RELATION_OWNERS[relation]
        per_peer.setdefault(owner, Instance()).add_all(
            relation, combined.get_tuples(relation)
        )
    return per_peer


def example_queries() -> Dict[str, ConjunctiveQuery]:
    """Representative queries over different peers of the scenario."""
    return {
        # Who can act as a doctor anywhere in the system? (posed at 9DC)
        "skilled_doctors": parse_query(
            'Q(pid) :- 9DC:SkilledPerson(pid, "Doctor")'),
        # All skilled people with their skill.
        "skilled_people": parse_query(
            'Q(pid, skill) :- 9DC:SkilledPerson(pid, skill)'),
        # Critical beds known to the dispatch center.
        "critical_beds": parse_query(
            'Q(bid, loc) :- 9DC:Bed(bid, loc, "critical")'),
        # Vehicles visible from the Earthquake Command Center (via replication).
        "ecc_vehicles": parse_query(
            'Q(vid, type, gps) :- ECC:Vehicle(vid, type, c, gps, dest)'),
        # Responders the ECC can call on, chained through 9DC and H/FS.
        "ecc_medical_responders": parse_query(
            'Q(pid) :- ECC:Responder(pid, "EMT")'),
        # Doctors and the hours they work (joins two 9DC relations).
        "doctor_hours": parse_query(
            'Q(pid, s, e) :- 9DC:SkilledPerson(pid, "Doctor"), 9DC:Hours(pid, s, e)'),
    }
