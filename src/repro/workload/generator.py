"""The Section-5 synthetic PDMS workload generator.

The paper's experiments (Figures 3 and 4) run the reformulation algorithm
over randomly generated PDMSs:

    "The parameters to the generator are: (1) the number of peers R in the
    system, and (2) the expected diameter L of the PDMS [...].  We call
    each such level a stratum, and to create the PDMS, we assign a number
    of peers to each stratum.  The generator also controls the ratio of
    definitional versus inclusion peer mappings.  Finally, the right-hand
    sides of the peer mappings are chain queries over a set of relations
    that was selected randomly from the stratum below (for definitional
    mappings) and above (for inclusions)."

This module re-implements that generator from the description.  Peers are
arranged in ``diameter`` strata; every peer declares a few binary peer
relations; every relation of stratum *s* participates in a configurable
number of peer mappings whose "other side" lives in stratum *s+1*:

* with probability ``definitional_ratio`` the mapping is *definitional* —
  the stratum-*s* relation is defined by a chain query over stratum-*s+1*
  relations (GAV direction; several such rules for the same head act as a
  union, which is exactly why higher ratios blow up the branching factor,
  as the paper observes);
* otherwise the mapping is an *inclusion* — a randomly chosen stratum-*s+1*
  relation is contained in a chain query over stratum-*s* relations that
  includes the relation being wired up (LAV direction).

Bottom-stratum relations get storage descriptions binding them to stored
relations, and the benchmark query is a chain query over top-stratum
relations.  Every random choice flows through a seeded
:class:`random.Random`, so data points can be averaged over many runs
reproducibly (the paper averages 100 runs per point).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.atoms import Atom
from ..datalog.queries import ConjunctiveQuery
from ..datalog.terms import Variable
from ..errors import PDMSConfigurationError
from ..pdms.mappings import DefinitionalMapping, InclusionMapping, StorageDescription
from ..pdms.peer import Peer
from ..pdms.system import PDMS


@dataclass(frozen=True)
class GeneratorParameters:
    """Knobs of the synthetic workload generator.

    The defaults correspond to the paper's experimental setup: 96 peers,
    variable diameter, and a definitional-mapping ratio swept over
    {0, 0.10, 0.25, 0.50}.
    """

    #: Total number of peers R in the system (the paper uses 96).
    num_peers: int = 96
    #: Expected diameter L — the number of strata.
    diameter: int = 4
    #: Fraction of peer mappings that are definitional (the paper's "%dd").
    definitional_ratio: float = 0.10
    #: Binary peer relations declared by each peer.
    relations_per_peer: int = 2
    #: Peer mappings generated per relation per stratum boundary (branching).
    mappings_per_relation: int = 2
    #: Number of atoms in each definitional mapping's body chain.
    chain_length: int = 2
    #: Number of atoms in each inclusion mapping's right-hand-side chain.
    #: The default of 1 corresponds to replication-style inclusions (one
    #: lower-stratum relation contained in one upper-stratum relation).
    #: Longer inclusion chains are only *usable* by the reformulation
    #: algorithm when a goal's siblings happen to match the chain (MiniCon
    #: must be able to export the join variables), so values above 1 mostly
    #: add mappings that the algorithm proves irrelevant — see
    #: EXPERIMENTS.md for the discussion of this reconstruction choice.
    inclusion_chain_length: int = 1
    #: Number of atoms in the benchmark query (a chain over stratum-0 relations).
    query_length: int = 2
    #: Random seed (each run of an averaged data point uses seed+run_index).
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`PDMSConfigurationError` on nonsensical parameters."""
        if self.num_peers < self.diameter:
            raise PDMSConfigurationError(
                f"cannot spread {self.num_peers} peers over {self.diameter} strata"
            )
        if self.diameter < 1:
            raise PDMSConfigurationError("diameter must be at least 1")
        if not 0.0 <= self.definitional_ratio <= 1.0:
            raise PDMSConfigurationError("definitional_ratio must be within [0, 1]")
        if min(self.relations_per_peer, self.mappings_per_relation, self.chain_length,
               self.query_length) < 1:
            raise PDMSConfigurationError("structural parameters must be at least 1")


@dataclass
class GeneratedWorkload:
    """A generated PDMS together with its benchmark query and bookkeeping."""

    pdms: PDMS
    query: ConjunctiveQuery
    parameters: GeneratorParameters
    #: Qualified peer-relation names per stratum (index 0 = top).
    strata: List[List[str]] = field(default_factory=list)
    #: Names of the stored relations created for the bottom stratum.
    stored_relations: List[str] = field(default_factory=list)

    @property
    def diameter(self) -> int:
        """The diameter (number of strata) of the generated PDMS."""
        return len(self.strata)


def _split_peers(num_peers: int, diameter: int) -> List[int]:
    """Distribute ``num_peers`` over ``diameter`` strata as evenly as possible."""
    base = num_peers // diameter
    remainder = num_peers % diameter
    return [base + (1 if stratum < remainder else 0) for stratum in range(diameter)]


def _chain_query(
    name: str, relations: Sequence[str], rng: random.Random, prefix: str
) -> ConjunctiveQuery:
    """A chain query ``name(x0, xn) :- r1(x0, x1), ..., rn(x(n-1), xn)``."""
    variables = [Variable(f"{prefix}{i}") for i in range(len(relations) + 1)]
    body = [
        Atom(relation, [variables[i], variables[i + 1]])
        for i, relation in enumerate(relations)
    ]
    head = Atom(name, [variables[0], variables[-1]])
    return ConjunctiveQuery(head, body)


def generate_workload(parameters: GeneratorParameters) -> GeneratedWorkload:
    """Generate one random PDMS plus benchmark query per ``parameters``."""
    parameters.validate()
    rng = random.Random(parameters.seed)

    pdms = PDMS(
        name=(
            f"synthetic-R{parameters.num_peers}-L{parameters.diameter}-"
            f"dd{int(parameters.definitional_ratio * 100)}-s{parameters.seed}"
        )
    )

    # 1. Peers and peer relations, stratum by stratum (stratum 0 is the top,
    #    where the query is posed; the bottom stratum holds the data).
    strata: List[List[str]] = []
    peer_counts = _split_peers(parameters.num_peers, parameters.diameter)
    peer_index = 0
    for stratum, count in enumerate(peer_counts):
        relations: List[str] = []
        for _ in range(count):
            peer = pdms.add_peer(Peer(f"P{peer_index}"))
            for rel_index in range(parameters.relations_per_peer):
                schema = peer.add_relation(f"R{stratum}_{peer_index}_{rel_index}", ["a", "b"])
                relations.append(schema.name)
            peer_index += 1
        strata.append(relations)

    # 2. Peer mappings between consecutive strata.
    mapping_counter = 0
    for stratum in range(parameters.diameter - 1):
        upper = strata[stratum]
        lower = strata[stratum + 1]
        for relation in upper:
            for _ in range(parameters.mappings_per_relation):
                mapping_counter += 1
                if rng.random() < parameters.definitional_ratio:
                    # Definitional: the stratum-s relation is defined by a
                    # chain over relations of the stratum below.
                    body_relations = [
                        rng.choice(lower) for _ in range(parameters.chain_length)
                    ]
                    rule = _chain_query(relation, body_relations, rng, prefix="d")
                    pdms.add_peer_mapping(
                        DefinitionalMapping(rule, name=f"def_{mapping_counter}")
                    )
                else:
                    # Inclusion: a stratum-(s+1) relation is contained in a
                    # chain over stratum-s relations that mentions `relation`.
                    lhs_relation = rng.choice(lower)
                    rhs_relations = [relation] + [
                        rng.choice(upper)
                        for _ in range(parameters.inclusion_chain_length - 1)
                    ]
                    rng.shuffle(rhs_relations)
                    left = _chain_query(lhs_relation, [lhs_relation], rng, prefix="l")
                    right = _chain_query("__rhs__", rhs_relations, rng, prefix="u")
                    pdms.add_peer_mapping(
                        InclusionMapping(
                            ConjunctiveQuery(left.head, left.body),
                            right,
                            name=f"incl_{mapping_counter}",
                        )
                    )

    # 3. Storage descriptions for the bottom stratum: one stored relation per
    #    bottom peer relation, containing (a subset of) that relation.
    stored_relations: List[str] = []
    for index, relation in enumerate(strata[-1]):
        peer_name = relation.partition(":")[0]
        stored_name = f"S{index}"
        query = _chain_query(stored_name, [relation], rng, prefix="s")
        pdms.add_storage_description(
            StorageDescription(peer_name, stored_name, query, exact=False,
                               name=f"store_{index}")
        )
        stored_relations.append(stored_name)

    # 4. The benchmark query: a chain over top-stratum relations.
    query_relations = [rng.choice(strata[0]) for _ in range(parameters.query_length)]
    query = _chain_query("Q", query_relations, rng, prefix="q")

    return GeneratedWorkload(
        pdms=pdms,
        query=query,
        parameters=parameters,
        strata=strata,
        stored_relations=stored_relations,
    )


def generate_runs(
    parameters: GeneratorParameters, runs: int
) -> List[GeneratedWorkload]:
    """Generate ``runs`` workloads differing only in the random seed.

    The paper averages each data point over 100 runs; callers typically
    average tree sizes / timings over the returned list.
    """
    import dataclasses

    workloads = []
    for run_index in range(runs):
        run_parameters = dataclasses.replace(parameters, seed=parameters.seed + run_index)
        workloads.append(generate_workload(run_parameters))
    return workloads
