"""Random data population for generated workloads.

The paper's experiments measure reformulation only (no data is touched),
but the reproduction's end-to-end tests and examples want stored relations
with actual tuples so reformulated queries can be executed and compared
against the certain-answer oracle.  This module fills the stored relations
of a generated workload (or any PDMS) with random tuples over a small
integer domain; a small domain maximises joins and therefore answer sets.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Sequence

from ..database.instance import Instance
from ..pdms.system import PDMS
from .generator import GeneratedWorkload


def populate_stored_relations(
    pdms: PDMS,
    rows_per_relation: int = 10,
    domain_size: int = 8,
    seed: int = 0,
) -> Instance:
    """Create random tuples for every stored relation of ``pdms``.

    Values are drawn uniformly from ``range(domain_size)``; each stored
    relation receives ``rows_per_relation`` (not necessarily distinct)
    rows.  Returns a single :class:`Instance` usable directly with
    :func:`repro.pdms.execution.answer_query`.
    """
    rng = random.Random(seed)
    instance = Instance()
    for peer in pdms.peers():
        for stored in peer.stored_relations():
            for _ in range(rows_per_relation):
                row = tuple(rng.randrange(domain_size) for _ in range(stored.arity))
                instance.add(stored.name, row)
    return instance


def populate_workload(
    workload: GeneratedWorkload,
    rows_per_relation: int = 10,
    domain_size: int = 8,
    seed: Optional[int] = None,
) -> Instance:
    """Populate the stored relations of a generated workload."""
    actual_seed = workload.parameters.seed if seed is None else seed
    return populate_stored_relations(
        workload.pdms,
        rows_per_relation=rows_per_relation,
        domain_size=domain_size,
        seed=actual_seed,
    )
