"""Workload generation: the Section-5 synthetic generator and the Figure-1 scenario."""

from .churn import (
    BASE_DATA_KEY,
    ChurnEvent,
    ChurnParameters,
    ChurnReport,
    ChurnScenario,
    SatelliteSpec,
    generate_churn_scenario,
)
from .data import populate_stored_relations, populate_workload
from .generator import GeneratedWorkload, GeneratorParameters, generate_runs, generate_workload
from .scenarios import (
    add_earthquake_command_center,
    build_emergency_services,
    example_queries,
    sample_instance,
    sample_peer_instances,
)

__all__ = [
    "BASE_DATA_KEY",
    "ChurnEvent",
    "ChurnParameters",
    "ChurnReport",
    "ChurnScenario",
    "SatelliteSpec",
    "generate_churn_scenario",
    "GeneratedWorkload",
    "GeneratorParameters",
    "add_earthquake_command_center",
    "build_emergency_services",
    "example_queries",
    "generate_runs",
    "generate_workload",
    "populate_stored_relations",
    "populate_workload",
    "sample_instance",
    "sample_peer_instances",
]
