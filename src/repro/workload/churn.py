"""Churn workloads: peers joining and leaving under a live query stream.

The paper's motivating story (Section 1) is an *ad hoc* peer — the
Earthquake Command Center — joining a running PDMS and immediately
reaching every source through transitive mappings.  This module turns
that story into a reproducible workload: a base synthetic PDMS (from
:mod:`repro.workload.generator`) plus a pool of *satellite* peers that
join and leave while queries keep arriving.

Two satellite flavours mirror the two roles a newcomer can play:

* a **provider** brings data: its peer relation is declared contained in
  a base top-stratum relation (LAV-style), it stores tuples for it, and
  existing queries gain answers the moment it joins;
* a **consumer** is ECC-like: it defines its own relation over a base
  relation (GAV-style) and poses queries through it, transitively
  reaching all base sources.

:func:`generate_churn_scenario` produces a deterministic event stream
(``query`` / ``join`` / ``leave``) from a seed;
:meth:`ChurnScenario.replay` drives a
:class:`~repro.pdms.service.QueryService` through it, optionally
cross-checking every answer against a from-scratch
:func:`~repro.pdms.execution.answer_query` — the scenario-level oracle
the service-layer benchmarks and property tests build on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..database.instance import Instance
from ..datalog.queries import ConjunctiveQuery
from ..pdms.execution import answer_query
from ..pdms.mappings import (
    DefinitionalMapping,
    InclusionMapping,
    StorageDescription,
    lav_style,
)
from ..pdms.peer import Peer
from ..pdms.service import QueryService
from ..pdms.system import PDMS
from .generator import (
    GeneratedWorkload,
    GeneratorParameters,
    _chain_query,
    generate_workload,
)
from .data import populate_workload

#: Key under which the base workload's data is registered with the service.
BASE_DATA_KEY = "__base__"


@dataclass(frozen=True)
class SatelliteSpec:
    """Everything needed to join one satellite peer (and leave again)."""

    peer_name: str
    #: ``"provider"`` or ``"consumer"``.
    role: str
    #: Qualified satellite peer relation.
    relation: str
    #: The base top-stratum relation the satellite is wired to.
    base_relation: str
    mapping: object
    #: Storage description + rows (providers only).
    description: Optional[StorageDescription] = None
    rows: Tuple[Tuple[object, ...], ...] = ()
    #: Query posed through the satellite (consumers only).
    query: Optional[ConjunctiveQuery] = None

    def instance(self) -> Optional[Instance]:
        """The satellite's stored data, if it brings any."""
        if self.description is None:
            return None
        instance = Instance()
        instance.add_all(self.description.relation, self.rows)
        return instance


@dataclass(frozen=True)
class ChurnEvent:
    """One step of a churn scenario."""

    kind: str  # "query" | "join" | "leave"
    query: Optional[ConjunctiveQuery] = None
    satellite: Optional[SatelliteSpec] = None


@dataclass(frozen=True)
class ChurnParameters:
    """Knobs of the churn-scenario generator."""

    #: Parameters of the base PDMS (kept small: churn scenarios re-answer
    #: every query many times).
    base: GeneratorParameters = field(
        default_factory=lambda: GeneratorParameters(num_peers=8, diameter=2, seed=0)
    )
    #: Satellite peers available to join/leave.
    num_satellites: int = 4
    #: Fraction of satellites that are data providers (the rest consume).
    provider_ratio: float = 0.75
    #: Total number of events in the stream.
    num_events: int = 40
    #: Distinct base queries in the pool (repeats exercise the cache).
    query_pool_size: int = 3
    #: Rows stored by each provider satellite / the base workload.
    rows_per_relation: int = 6
    #: Value domain for generated tuples (small keeps joins likely).
    domain_size: int = 4
    #: Random seed for the event stream (independent of ``base.seed``).
    seed: int = 0


@dataclass
class ChurnReport:
    """What one replay did and how the cache behaved."""

    queries: int = 0
    joins: int = 0
    leaves: int = 0
    answers_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    invalidations: int = 0
    verified: bool = False

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over the replayed query stream."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


@dataclass
class ChurnScenario:
    """A base workload plus a deterministic join/leave/query event stream."""

    base: GeneratedWorkload
    base_data: Instance
    satellites: Tuple[SatelliteSpec, ...]
    query_pool: Tuple[ConjunctiveQuery, ...]
    events: Tuple[ChurnEvent, ...]
    parameters: ChurnParameters

    def fresh_service(self, **service_kwargs) -> QueryService:
        """A service over a *fresh copy* of the base PDMS and its data."""
        workload = generate_workload(self.base.parameters)
        service = QueryService(workload.pdms, **service_kwargs)
        service.set_peer_data(BASE_DATA_KEY, self.base_data)
        return service

    def replay(
        self,
        service: Optional[QueryService] = None,
        verify: bool = False,
        limit: Optional[int] = None,
    ) -> ChurnReport:
        """Drive ``service`` through the event stream.

        With ``verify=True`` every query's answers are compared against a
        from-scratch :func:`answer_query` on the service's own (mutated)
        PDMS — the post-churn ground truth; an :class:`AssertionError`
        reports the first mismatch.

        Satellites still joined when the event stream ends are removed
        again afterwards (not counted as ``leaves``), so the service is
        back at its base catalogue and the same scenario can be replayed
        on it repeatedly to model sustained churn.
        """
        if service is None:
            service = self.fresh_service()
        report = ChurnReport()
        hits0, misses0 = service.stats.hits, service.stats.misses
        invalidations0 = service.stats.invalidations
        data: Dict[str, Instance] = {BASE_DATA_KEY: self.base_data}
        joined: List[SatelliteSpec] = []

        for event in self.events:
            if event.kind == "join":
                satellite = event.satellite
                peer = Peer(satellite.peer_name)
                peer.add_relation(
                    satellite.relation.partition(":")[2], ["a", "b"]
                )
                service.add_peer(peer)
                service.add_peer_mapping(satellite.mapping)
                if satellite.description is not None:
                    service.add_storage_description(satellite.description)
                    instance = satellite.instance()
                    service.set_peer_data(satellite.peer_name, instance)
                    data[satellite.peer_name] = instance
                joined.append(satellite)
                report.joins += 1
            elif event.kind == "leave":
                service.remove_peer(event.satellite.peer_name)
                data.pop(event.satellite.peer_name, None)
                joined = [s for s in joined if s.peer_name != event.satellite.peer_name]
                report.leaves += 1
            else:
                answers = service.answer(event.query, limit=limit)
                report.queries += 1
                report.answers_total += len(answers)
                if verify:
                    fresh = answer_query(service.pdms, event.query, data)
                    if limit is None:
                        assert answers == fresh, (
                            f"service/fresh mismatch on {event.query}: "
                            f"{answers ^ fresh}"
                        )
                    else:
                        assert answers <= fresh and len(answers) == min(
                            limit, len(fresh)
                        ), f"limit={limit} answer not a subset on {event.query}"

        # Return to the base catalogue so the scenario is replayable.
        for satellite in joined:
            service.remove_peer(satellite.peer_name)
            data.pop(satellite.peer_name, None)

        report.cache_hits = service.stats.hits - hits0
        report.cache_misses = service.stats.misses - misses0
        report.invalidations = service.stats.invalidations - invalidations0
        report.verified = verify
        return report


def generate_churn_scenario(parameters: Optional[ChurnParameters] = None) -> ChurnScenario:
    """Generate one deterministic churn scenario from ``parameters``."""
    parameters = parameters if parameters is not None else ChurnParameters()
    rng = random.Random(parameters.seed)
    base = generate_workload(parameters.base)
    base_data = populate_workload(
        base,
        rows_per_relation=parameters.rows_per_relation,
        domain_size=parameters.domain_size,
    )
    top_stratum = base.strata[0]

    satellites: List[SatelliteSpec] = []
    for index in range(parameters.num_satellites):
        peer_name = f"SAT{index}"
        relation = f"{peer_name}:X{index}"
        base_relation = rng.choice(top_stratum)
        if rng.random() < parameters.provider_ratio:
            # Provider: SAT:X ⊆ base relation, with stored tuples behind it.
            mapping = lav_style(
                _chain_query(relation, [relation], rng, prefix="j").head,
                _chain_query("R", [base_relation], rng, prefix="k"),
                name=f"sat_incl_{index}",
            )
            stored_name = f"sat_store_{index}"
            description = StorageDescription(
                peer_name,
                stored_name,
                _chain_query(stored_name, [relation], rng, prefix="m"),
                exact=False,
                name=f"sat_desc_{index}",
            )
            rows = tuple(
                (
                    rng.randrange(parameters.domain_size),
                    rng.randrange(parameters.domain_size),
                )
                for _ in range(parameters.rows_per_relation)
            )
            satellites.append(SatelliteSpec(
                peer_name=peer_name,
                role="provider",
                relation=relation,
                base_relation=base_relation,
                mapping=mapping,
                description=description,
                rows=rows,
            ))
        else:
            # Consumer (ECC-style): SAT:X defined over a base relation and
            # queried through, transitively reaching the base sources.
            mapping = DefinitionalMapping(
                _chain_query(relation, [base_relation], rng, prefix="c"),
                name=f"sat_def_{index}",
            )
            satellites.append(SatelliteSpec(
                peer_name=peer_name,
                role="consumer",
                relation=relation,
                base_relation=base_relation,
                mapping=mapping,
                query=_chain_query("Q", [relation], rng, prefix="q"),
            ))

    query_pool: List[ConjunctiveQuery] = [base.query]
    for _ in range(max(0, parameters.query_pool_size - 1)):
        length = rng.randint(1, max(1, parameters.base.query_length))
        relations = [rng.choice(top_stratum) for _ in range(length)]
        query_pool.append(_chain_query("Q", relations, rng, prefix="q"))

    events: List[ChurnEvent] = []
    joined: List[SatelliteSpec] = []
    waiting = list(satellites)
    for _ in range(parameters.num_events):
        roll = rng.random()
        if roll < 0.25 and waiting:
            satellite = waiting.pop(rng.randrange(len(waiting)))
            joined.append(satellite)
            events.append(ChurnEvent(kind="join", satellite=satellite))
        elif roll < 0.40 and joined:
            satellite = joined.pop(rng.randrange(len(joined)))
            waiting.append(satellite)
            events.append(ChurnEvent(kind="leave", satellite=satellite))
        else:
            pool: List[ConjunctiveQuery] = list(query_pool)
            pool.extend(
                s.query for s in joined if s.role == "consumer" and s.query is not None
            )
            events.append(ChurnEvent(kind="query", query=rng.choice(pool)))

    return ChurnScenario(
        base=base,
        base_data=base_data,
        satellites=tuple(satellites),
        query_pool=tuple(query_pool),
        events=tuple(events),
        parameters=parameters,
    )
