"""Deployment knobs: every ``REPRO_*`` environment variable in one place.

Before this module existed, each subsystem read its own environment
variables through locally re-implemented parsing helpers, and the copies
drifted on error messages.  All integer knobs now flow through
:func:`int_from_env` and all enumerated knobs through
:func:`choice_from_env`, so every knob fails fast with the same message
shape — mirroring the treatment ``REPRO_DEFAULT_ENGINE`` gets in
:func:`repro.pdms.execution.default_engine` (that knob stays there
because validating it needs the live engine registry).

The consolidated knob table lives in ``docs/distributed.md``.
"""

from __future__ import annotations

import os
from typing import Sequence

from .errors import EvaluationError


def int_from_env(name: str, default: int, minimum: int = 0) -> int:
    """Read an integer from the environment, failing fast when malformed.

    A non-integer or below-minimum value raises :class:`EvaluationError`
    at the first call that reads it, with the offending value spelled
    out — never a silent fallback that hides a typo'd deployment knob.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EvaluationError(f"{name}={raw!r} is not an integer") from None
    if value < minimum:
        raise EvaluationError(f"{name}={raw!r} must be >= {minimum}")
    return value


def choice_from_env(name: str, default: str, choices: Sequence[str]) -> str:
    """Read an enumerated string knob, failing fast on unknown values."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw not in choices:
        raise EvaluationError(
            f"{name}={raw!r} is not one of: {', '.join(choices)}"
        )
    return raw


def bool_from_env(name: str, default: bool) -> bool:
    """Read a 0/1 toggle (any non-negative integer; 0 is off, >0 is on)."""
    return int_from_env(name, 1 if default else 0) > 0


def float_from_env(name: str, default: float, minimum: float = 0.0) -> float:
    """Read a float from the environment, failing fast when malformed."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise EvaluationError(f"{name}={raw!r} is not a number") from None
    if value < minimum:
        raise EvaluationError(f"{name}={raw!r} must be >= {minimum}")
    return value


# ---------------------------------------------------------------------------
# The knobs (one documented reader per REPRO_* variable)
# ---------------------------------------------------------------------------

def shared_workers() -> int:
    """Worker count for the shared/columnar engines (``REPRO_SHARED_WORKERS``).

    ``0`` (the default) means sequential in-thread execution; values > 1
    evaluate independent rewriting roots concurrently on the executor
    selected by :func:`shared_executor`.
    """
    return int_from_env("REPRO_SHARED_WORKERS", 0)


def shared_executor() -> str:
    """Executor kind behind ``REPRO_SHARED_WORKERS`` (``REPRO_SHARED_EXECUTOR``).

    ``"thread"`` (default): a thread pool — cheap, keeps the per-call
    fragment memo shared, and scales on multicore only where the columnar
    kernels release the GIL (large NumPy batches).  ``"process"``: a
    process pool — rewriting roots are evaluated in worker processes with
    their scan rows shipped over, so even the pure-Python kernel fallback
    scales with cores, at the price of per-task serialisation and no
    cross-root fragment sharing.
    """
    return choice_from_env("REPRO_SHARED_EXECUTOR", "thread", ("thread", "process"))


def columnar_enabled() -> bool:
    """Whether plan execution uses the columnar kernels (``REPRO_COLUMNAR``).

    On by default.  ``REPRO_COLUMNAR=0`` drops the shared engine and the
    vectorized planner back to the row-at-a-time paths — the switch the
    kernel-vs-row benchmarks and the equivalence suites flip.  The
    ``"columnar"`` engine ignores this toggle (it always vectorizes).
    """
    return bool_from_env("REPRO_COLUMNAR", True)


def fragment_cache_bytes() -> int:
    """Byte budget of a service fragment cache (``REPRO_FRAGMENT_CACHE_BYTES``).

    The default (64 MiB) lives in :mod:`repro.pdms.materialization`;
    ``0`` disables cross-call fragment caching entirely.
    """
    from .pdms.materialization import DEFAULT_FRAGMENT_CACHE_BYTES

    return int_from_env("REPRO_FRAGMENT_CACHE_BYTES", DEFAULT_FRAGMENT_CACHE_BYTES)


def distributed_workers() -> int:
    """Scatter width for per-peer scan batches (``REPRO_DISTRIBUTED_WORKERS``).

    ``0`` (the default) sizes the pool automatically (peer count, capped).
    """
    return int_from_env("REPRO_DISTRIBUTED_WORKERS", 0)


def transport_timeout_seconds() -> float:
    """Per-RPC deadline in seconds (``REPRO_TRANSPORT_TIMEOUT_MS``).

    Default 10 000 ms; ``0`` blocks forever.
    """
    return int_from_env("REPRO_TRANSPORT_TIMEOUT_MS", 10_000) / 1000.0


def max_inflight() -> int:
    """Cluster admission bound (``REPRO_MAX_INFLIGHT``; 0 = unbounded)."""
    return int_from_env("REPRO_MAX_INFLIGHT", 0)


def adaptive_enabled() -> bool:
    """Whether services run the self-tuning loop (``REPRO_ADAPTIVE``).

    Off by default.  When on, every :class:`repro.pdms.service.QueryService`
    owns a :class:`repro.database.feedback.QErrorLog`: fragment
    evaluations over the service's own data are measured, estimation
    errors become version-scoped cardinality corrections, and plans are
    re-compiled and raced champion/challenger as corrections accumulate.
    See ``docs/adaptivity.md``.
    """
    return bool_from_env("REPRO_ADAPTIVE", False)


def shards() -> int:
    """Shards per peer relation in the distributed engine (``REPRO_SHARDS``).

    ``0`` (the default) and ``1`` mean no sharding.  Values >= 2 make the
    distributed engine's loopback wrap path hash-partition every peer
    relation across that many shard instances (see
    :func:`repro.pdms.distributed.sharding.auto_shard`), enabling
    partition-pruned scatter-gather.  Explicitly built clusters pass their
    own :class:`~repro.pdms.distributed.sharding.ShardMap` instead.
    """
    return int_from_env("REPRO_SHARDS", 0)


def cache_tier_enabled() -> bool:
    """Whether services attach the shared cache tier (``REPRO_CACHE_TIER``).

    Off by default.  When on, every :class:`repro.pdms.service.QueryService`
    that owns its fragment cache consults the process-global cache-tier
    peer (:func:`repro.pdms.distributed.cache_tier.default_cache_tier`)
    between its local LRU and a fresh compute, so warm fragments are
    shared across services.  A failed cache peer degrades to
    compute-locally — never to wrong answers.  See ``docs/sharding.md``.
    """
    return bool_from_env("REPRO_CACHE_TIER", False)


def scan_retries() -> int:
    """Extra scan attempts after a ``TransportError`` (``REPRO_SCAN_RETRIES``).

    Default 2 (so up to three attempts per scan unit).  ``0`` disables
    retries: the first transport fault degrades the answer, as before the
    tail-latency layer existed.  Attempts rotate across the replicas of
    the owning placement group, so retries double as replica failover.
    """
    return int_from_env("REPRO_SCAN_RETRIES", 2)


def scan_deadline_seconds() -> float:
    """Per-query scan deadline budget (``REPRO_SCAN_DEADLINE_MS``).

    ``0`` (the default) means no deadline.  When set, each prefetch wave
    (and each cold ``get_matching``) gets this much wall-clock time for
    retries and hedges combined; scan units still pending at expiry are
    abandoned and recorded as failures, degrading the answer honestly.
    """
    return int_from_env("REPRO_SCAN_DEADLINE_MS", 0) / 1000.0


def hedge_seconds() -> float:
    """Fixed hedge delay for scans (``REPRO_HEDGE_MS``).

    ``0`` (the default) means *adaptive*: hedge when the primary replica
    exceeds the p95 of its per-peer latency EWMA (once enough
    observations exist).  A positive value hedges after that fixed delay
    instead.  Hedging needs a replica to duplicate the request to, so it
    only engages for placement groups with >= 2 live members; disable it
    entirely with ``REPRO_HEDGE_MS=-1``.
    """
    return int_from_env("REPRO_HEDGE_MS", 0, minimum=-1) / 1000.0


def breaker_cooldown_seconds() -> float:
    """Circuit-breaker half-open cooldown (``REPRO_BREAKER_COOLDOWN_MS``).

    After a peer's breaker trips, one probe RPC is allowed through every
    cooldown interval (default 1000 ms); a successful probe closes the
    breaker and the peer rejoins, a failed one re-arms the cooldown.
    """
    return int_from_env("REPRO_BREAKER_COOLDOWN_MS", 1_000) / 1000.0


def transport_backend() -> str:
    """Transport behind the engine's wrap path (``REPRO_TRANSPORT``).

    ``"loopback"`` (default): in-process :class:`LoopbackTransport`.
    ``"socket"``: :class:`AsyncSocketTransport` — the same peers served
    over asyncio TCP sockets on the loopback interface, exercising the
    full framing/pooling stack.  Explicitly built clusters pass their own
    transport and ignore this knob.
    """
    return choice_from_env("REPRO_TRANSPORT", "loopback", ("loopback", "socket"))


def trace_enabled() -> bool:
    """Whether query-lifecycle tracing is on (``REPRO_TRACE``).

    Off by default: :func:`repro.obs.trace.get_tracer` hands out the
    no-op :data:`~repro.obs.trace.NULL_SPAN` for every query, so
    instrumentation sites cost ~nothing (the gate guarded by
    ``BENCH_observability.json``).  When on, each answered query builds
    a trace tree — reformulation, planning, fragment evaluation, scatter
    waves, every remote scan attempt — subject to the sampling rate
    below.  See ``docs/observability.md``.
    """
    return bool_from_env("REPRO_TRACE", False)


def trace_sample_rate() -> float:
    """Fraction of queries traced when tracing is on (``REPRO_TRACE_SAMPLE``).

    Default 1.0 (trace everything).  The sampling decision is made once
    per query at the trace root; an unsampled query runs on the same
    no-op path as tracing-off, which is how a busy deployment keeps
    tracing enabled at, say, 0.01 without paying for every query.
    """
    value = float_from_env("REPRO_TRACE_SAMPLE", 1.0)
    if value > 1.0:
        raise EvaluationError(
            f"REPRO_TRACE_SAMPLE={value!r} must be within [0, 1]"
        )
    return value


def trace_sink_path() -> "str | None":
    """JSONL file completed traces are appended to (``REPRO_TRACE_SINK``).

    Unset (the default) keeps traces only in the tracer's bounded
    in-memory ring.  When set, every sampled trace is appended as one
    JSON line at root-span close; render with
    ``python -m repro.obs.export <path>``.  A sink write failure
    disables the sink rather than failing the query it was observing.
    """
    raw = os.environ.get("REPRO_TRACE_SINK")
    return raw if raw else None


def race_margin() -> float:
    """Cost ratio that makes a challenger raceable (``REPRO_RACE_MARGIN``).

    A challenger plan is raced against the incumbent champion when its
    corrected cost estimate is within ``margin`` times the champion's
    (default 2.0; must be >= 1.0).  Larger values race more aggressively;
    1.0 races only challengers that already estimate no worse.
    """
    return float_from_env("REPRO_RACE_MARGIN", 2.0, minimum=1.0)
