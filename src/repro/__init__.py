"""repro — reproduction of *Schema Mediation in Peer Data Management Systems*.

This library re-implements, in pure Python, the Piazza peer data management
system (PDMS) described by Halevy, Ives, Suciu and Tatarinov at ICDE 2003:
the PPL mediation language (storage descriptions, inclusion/equality and
definitional peer mappings), its certain-answer semantics, the complexity
classification of query answering, the rule-goal-tree reformulation
algorithm that interleaves GAV- and LAV-style rewriting, the optimizations
described in the paper, and the synthetic workload generator behind its
experiments (Figures 3 and 4).

Quick taste
-----------
>>> from repro import Peer, PDMS, parse_query
>>> from repro.pdms import StorageDescription, DefinitionalMapping
>>> pdms = PDMS()
>>> fire = pdms.add_peer(Peer("FS"))
>>> # ... declare relations, storage descriptions, peer mappings ...
>>> # reformulate a query over peer schemas into stored relations:
>>> # pdms.reformulate(parse_query('Q(x) :- FS:Engine(x, c, s, st, l, d)'))

See ``examples/quickstart.py`` for a complete runnable example.
"""

from .datalog import (
    Atom,
    ComparisonAtom,
    ConjunctiveQuery,
    Constant,
    DatalogProgram,
    DatalogRule,
    UnionQuery,
    Variable,
    parse_atom,
    parse_query,
    parse_rule,
)
from .database import DatabaseSchema, Instance, RelationSchema, Table
from .errors import (
    EvaluationError,
    MalformedQueryError,
    MappingError,
    ParseError,
    PDMSConfigurationError,
    ReformulationError,
    ReproError,
    SchemaError,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ComparisonAtom",
    "ConjunctiveQuery",
    "Constant",
    "DatabaseSchema",
    "DatalogProgram",
    "DatalogRule",
    "EvaluationError",
    "Instance",
    "MalformedQueryError",
    "MappingError",
    "PDMS",
    "PDMSConfigurationError",
    "ParseError",
    "Peer",
    "ReformulationError",
    "RelationSchema",
    "ReproError",
    "SchemaError",
    "Table",
    "UnionQuery",
    "Variable",
    "parse_atom",
    "parse_query",
    "parse_rule",
]


def __getattr__(name):  # pragma: no cover - thin lazy import shim
    """Lazily expose the PDMS layer to avoid import cycles at package load."""
    if name in ("PDMS", "Peer"):
        from . import pdms as _pdms

        return getattr(_pdms, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
