"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single exception type at API boundaries.  Finer-grained
subclasses distinguish parsing problems, malformed logical objects,
ill-formed PDMS specifications, and evaluation-time failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(ReproError):
    """A textual query, rule, or mapping could not be parsed.

    Attributes
    ----------
    text:
        The offending input text (possibly truncated).
    position:
        Character offset at which the problem was detected, or ``None``.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        base = super().__str__()
        if self.text:
            loc = f" at position {self.position}" if self.position is not None else ""
            return f"{base}{loc}: {self.text!r}"
        return base


class MalformedQueryError(ReproError):
    """A query object violates a structural invariant.

    Examples: unsafe head variables (head variables that do not occur in
    any relational body atom), duplicate variable names used as both
    constant and variable, or an atom whose arity disagrees with its
    schema.
    """


class SchemaError(ReproError):
    """A relation or attribute reference is inconsistent with the schema."""


class InstanceError(ReproError):
    """A database instance operation failed (e.g. arity mismatch on insert)."""


class MappingError(ReproError):
    """A PPL storage description or peer mapping is ill-formed."""


class PDMSConfigurationError(ReproError):
    """A PDMS specification is inconsistent (unknown peers, duplicate names...)."""


class ReformulationError(ReproError):
    """Query reformulation failed in an unexpected way."""


class EvaluationError(ReproError):
    """Evaluation of a query or datalog program over an instance failed."""


class TransportError(ReproError):
    """A peer-boundary RPC failed (peer down, timed out, or injected fault).

    Distinct from :class:`EvaluationError`: a transport fault does not mean
    the query is wrong, only that a peer could not be reached.  The
    distributed engine treats it as *missing data* — it degrades to a
    best-effort (sound-subset) answer and clears the ``completeness`` flag
    instead of failing the whole query.
    """

    def __init__(self, message: str, peer: str | None = None):
        super().__init__(message)
        self.peer = peer


class UnsatisfiableConstraintError(ReproError):
    """A constraint conjunction was required to be satisfiable but is not."""
