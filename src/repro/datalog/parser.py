"""Parser for the textual conjunctive-query / datalog / PPL syntax.

The grammar mirrors the paper's notation as closely as plain text allows::

    query      := atom ":-" body
    body       := literal ("," literal)*
    literal    := atom | comparison
    atom       := predicate "(" term ("," term)* ")"
    predicate  := identifier (":" identifier)?        # peer-qualified names
    term       := variable | constant
    variable   := identifier starting with a letter or "_"
    constant   := '"' characters '"'  |  "'" characters "'"  |  number
    comparison := term op term        with op in  = != < <= > >=

Examples
--------
>>> parse_query('Q(f1,f2) :- SameEngine(f1,f2,e), Skill(f1,s), Skill(f2,s)')
ConjunctiveQuery(Q(f1, f2) :- SameEngine(f1, f2, e), Skill(f1, s), Skill(f2, s))

>>> parse_query('R(x) :- S(x, y), y < 5')
ConjunctiveQuery(R(x) :- S(x, y), y < 5)

Peer-qualified predicates use the paper's ``peer:relation`` form::

    9DC:SkilledPerson(PID, "Doctor") :- H:Doctor(PID, h, l, s, e)

Identifiers may contain letters, digits, ``_``, and a single ``:``
separating a peer name from a relation name.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Sequence, Tuple, Union

from ..errors import ParseError
from .atoms import COMPARISON_OPERATORS, Atom, BodyAtom, ComparisonAtom
from .queries import ConjunctiveQuery, DatalogProgram, DatalogRule, UnionQuery
from .terms import Constant, Term, Variable

# Identifier segments must contain at least one letter or underscore so
# that pure numbers fall through to NUMBER; this lets the paper's peer
# names that start with a digit ("9DC") parse as identifiers.
_SEGMENT = r"[A-Za-z_0-9]*[A-Za-z_][A-Za-z_0-9]*"

_TOKEN_REGEX = re.compile(
    rf"""
    (?P<WS>\s+)
  | (?P<ARROW>:-)
  | (?P<STRING>"[^"]*"|'[^']*')
  | (?P<IDENT>{_SEGMENT}(?::{_SEGMENT})?)
  | (?P<NUMBER>-?\d+\.\d+|-?\d+)
  | (?P<OP><=|>=|!=|=|<|>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_REGEX.match(text, position)
        if match is None:
            raise ParseError("unexpected character", text, position)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> _Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", self._text, len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.kind} ({token.value!r})",
                self._text,
                token.position,
            )
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- grammar ---------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "IDENT":
            return Variable(token.value)
        if token.kind == "STRING":
            return Constant(token.value[1:-1])
        if token.kind == "NUMBER":
            value = float(token.value) if "." in token.value else int(token.value)
            return Constant(value)
        raise ParseError(
            f"expected a term but found {token.value!r}", self._text, token.position
        )

    def parse_atom_or_comparison(self) -> BodyAtom:
        start_index = self._index
        token = self._next()
        if token.kind == "IDENT" and self._peek() and self._peek().kind == "LPAREN":
            # Relational atom.
            predicate = token.value
            self._expect("LPAREN")
            args: List[Term] = []
            if self._peek() and self._peek().kind != "RPAREN":
                args.append(self.parse_term())
                while self._peek() and self._peek().kind == "COMMA":
                    self._next()
                    args.append(self.parse_term())
            self._expect("RPAREN")
            return Atom(predicate, args)
        # Otherwise it must be a comparison: rewind and parse term op term.
        self._index = start_index
        left = self.parse_term()
        op_token = self._expect("OP")
        if op_token.value not in COMPARISON_OPERATORS:
            raise ParseError(
                f"unknown comparison operator {op_token.value!r}",
                self._text,
                op_token.position,
            )
        right = self.parse_term()
        return ComparisonAtom(left, op_token.value, right)

    def parse_head(self) -> Atom:
        atom = self.parse_atom_or_comparison()
        if not isinstance(atom, Atom):
            raise ParseError("query head must be a relational atom", self._text)
        return atom

    def parse_body(self) -> List[BodyAtom]:
        body: List[BodyAtom] = [self.parse_atom_or_comparison()]
        while self._peek() and self._peek().kind == "COMMA":
            self._next()
            body.append(self.parse_atom_or_comparison())
        return body

    def parse_query(self) -> ConjunctiveQuery:
        head = self.parse_head()
        self._expect("ARROW")
        body = self.parse_body()
        if not self.at_end():
            token = self._peek()
            raise ParseError(
                f"unexpected trailing input {token.value!r}", self._text, token.position
            )
        return ConjunctiveQuery(head, body)

    def parse_atom_only(self) -> Atom:
        atom = self.parse_atom_or_comparison()
        if not isinstance(atom, Atom):
            raise ParseError("expected a relational atom", self._text)
        if not self.at_end():
            token = self._peek()
            raise ParseError(
                f"unexpected trailing input {token.value!r}", self._text, token.position
            )
        return atom


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query of the form ``Head(...) :- body``."""
    return _Parser(text).parse_query()


def parse_rule(text: str) -> DatalogRule:
    """Parse a datalog rule (same syntax as a conjunctive query)."""
    query = parse_query(text)
    return DatalogRule(query.head, query.body)


def parse_atom(text: str) -> Atom:
    """Parse a single relational atom such as ``R(x, "a", 3)``."""
    return _Parser(text).parse_atom_only()


def parse_program(text: str, query_predicate: str) -> DatalogProgram:
    """Parse a datalog program: one rule per non-empty, non-comment line.

    Lines starting with ``%`` or ``#`` are comments.
    """
    rules: List[DatalogRule] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("%", "#")):
            continue
        rules.append(parse_rule(stripped))
    return DatalogProgram(rules, query_predicate)


def parse_union(lines: Union[str, Sequence[str]]) -> UnionQuery:
    """Parse a union of conjunctive queries (one disjunct per line)."""
    if isinstance(lines, str):
        lines = [l for l in lines.splitlines() if l.strip() and not l.strip().startswith(("%", "#"))]
    disjuncts = [parse_query(line) for line in lines]
    return UnionQuery(disjuncts)
