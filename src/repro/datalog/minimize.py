"""Conjunctive-query minimization (computing the core).

A CQ is *minimal* if no body atom can be removed while preserving
equivalence.  Minimization matters in two places in the reproduction:

* rewritings produced by the reformulation algorithm can contain redundant
  atoms (the paper's Remark 4.1 notes that covering "cousins or uncles"
  conservatively may leave redundant atoms — "In the worst case, we obtain
  conjunctive rewritings that contain redundant atoms"); minimizing them
  gives cleaner output and faster execution;
* the equivalence tests used in tests/benchmarks are faster on minimized
  queries.

The algorithm is the textbook one: repeatedly try to drop a relational
body atom and check that the smaller query still contains the original
(the other direction is automatic since dropping atoms only enlarges the
result).  Comparison atoms referring only to variables that disappeared
are dropped as well.
"""

from __future__ import annotations

from .atoms import Atom, ComparisonAtom, atoms_variables
from .containment import is_contained_in
from .queries import ConjunctiveQuery


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return an equivalent minimal conjunctive query (a core of ``query``).

    The result uses a subset of the original body atoms; head and variable
    names are preserved.  The procedure is deterministic (atoms are
    considered in body order).
    """
    current = list(query.body)
    changed = True
    while changed:
        changed = False
        for index, atom in enumerate(current):
            if not isinstance(atom, Atom):
                continue
            candidate_body = current[:index] + current[index + 1 :]
            candidate_relational = [a for a in candidate_body if isinstance(a, Atom)]
            if not candidate_relational:
                continue
            # Head variables must remain safe.
            remaining_vars = atoms_variables(candidate_relational)
            if any(v not in remaining_vars for v in query.head.variables()):
                continue
            # Comparisons must remain safe too; drop those that are not.
            pruned_body = [
                a
                for a in candidate_body
                if isinstance(a, Atom)
                or all(v in remaining_vars for v in a.variables())
            ]
            try:
                candidate = ConjunctiveQuery(query.head, pruned_body)
            except Exception:  # pragma: no cover - safety net
                continue
            if is_contained_in(candidate, query):
                current = pruned_body
                changed = True
                break
    return ConjunctiveQuery(query.head, current)


def is_minimal(query: ConjunctiveQuery) -> bool:
    """Return ``True`` iff no relational body atom can be dropped."""
    return len(minimize(query).relational_body()) == len(query.relational_body())
