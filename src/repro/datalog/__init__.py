"""Conjunctive-query / datalog substrate.

This package provides the logical foundation the rest of the library is
built on: terms, atoms, conjunctive queries, unions of conjunctive
queries, datalog rules and programs, a textual parser, unification,
homomorphism search, query containment and minimization, comparison
constraints, and query/program evaluation over fact sources.
"""

from .atoms import Atom, BodyAtom, ComparisonAtom
from .constraints import ConstraintSet
from .containment import (
    are_equivalent,
    containment_mapping,
    is_contained_in,
    remove_redundant_disjuncts,
    ucq_is_contained_in,
)
from .evaluation import evaluate_program, evaluate_program_query, evaluate_query, evaluate_union
from .homomorphism import find_homomorphism, find_homomorphisms, has_homomorphism
from .indexing import WILDCARD, IndexedFactSource, PredicateIndex
from .minimize import is_minimal, minimize
from .parser import parse_atom, parse_program, parse_query, parse_rule, parse_union
from .queries import (
    ConjunctiveQuery,
    DatalogProgram,
    DatalogRule,
    UnionQuery,
    make_chain_query,
)
from .terms import Constant, FreshVariableFactory, Term, Variable
from .unify import Substitution, match_atom, unify_atoms, unify_terms

__all__ = [
    "Atom",
    "BodyAtom",
    "ComparisonAtom",
    "ConjunctiveQuery",
    "Constant",
    "ConstraintSet",
    "DatalogProgram",
    "DatalogRule",
    "FreshVariableFactory",
    "IndexedFactSource",
    "PredicateIndex",
    "Substitution",
    "Term",
    "UnionQuery",
    "Variable",
    "WILDCARD",
    "are_equivalent",
    "containment_mapping",
    "evaluate_program",
    "evaluate_program_query",
    "evaluate_query",
    "evaluate_union",
    "find_homomorphism",
    "find_homomorphisms",
    "has_homomorphism",
    "is_contained_in",
    "is_minimal",
    "make_chain_query",
    "match_atom",
    "minimize",
    "parse_atom",
    "parse_program",
    "parse_query",
    "parse_rule",
    "parse_union",
    "remove_redundant_disjuncts",
    "ucq_is_contained_in",
    "unify_atoms",
    "unify_terms",
]
