"""Terms of the conjunctive-query / datalog language.

A *term* is either a :class:`Variable` or a :class:`Constant`.  Terms are
immutable, hashable value objects: two variables with the same name are the
same variable, and two constants with the same value are the same constant.

The paper's notation uses lowercase identifiers for variables and quoted
strings / numbers for constants (e.g. ``SkilledPerson(PID, "Doctor")``);
:mod:`repro.datalog.parser` follows that convention.

A :class:`FreshVariableFactory` hands out variables that are guaranteed not
to collide with a given set of existing names; the reformulation algorithm
uses it when renaming mapping bodies apart (Section 4.2, Step 2 of the
paper: "Existential variables ... should be renamed so they are fresh
variables that do not occur anywhere else in the tree").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A logical variable, identified by its name.

    Parameters
    ----------
    name:
        Variable name.  Names are case-sensitive; the parser maps
        identifiers starting with a letter or underscore to variables.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        # Variables are rehashed constantly (substitutions, MCD memoization,
        # binding dictionaries); cache the hash once at construction.  The
        # "var" tag keeps Variable("x") and Constant("x") from colliding.
        object.__setattr__(self, "_hash", hash(("var", self.name)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant value (string, int, or float).

    Constants compare equal iff their values are equal and of compatible
    types (Python equality).  Strings and numbers are both supported since
    comparison predicates in the paper range over ordered domains.
    """

    value: Union[str, int, float]

    def __post_init__(self) -> None:
        # Cached hash; ``hash(1) == hash(1.0)`` so the cache stays consistent
        # with dataclass equality across int/float constants.
        object.__setattr__(self, "_hash", hash(("const", self.value)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return repr(self.value)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


#: A term is either a variable or a constant.
Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return ``True`` iff ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` iff ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def term_from_python(value: Union[Term, str, int, float]) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Strings are treated as *constants* here — use :class:`Variable`
    explicitly (or the parser) when you mean a variable.  Existing terms
    pass through unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, bool):
        raise TypeError("boolean constants are not supported")
    if isinstance(value, (str, int, float)):
        return Constant(value)
    raise TypeError(f"cannot convert {value!r} to a term")


class FreshVariableFactory:
    """Produce variables guaranteed not to collide with known names.

    The factory remembers every name it has seen (either because it was
    registered via :meth:`reserve` or because the factory produced it) and
    never returns the same name twice.

    Examples
    --------
    >>> fresh = FreshVariableFactory(prefix="v")
    >>> fresh.reserve(["v0", "x"])
    >>> fresh()
    ?v1
    >>> fresh()
    ?v2
    """

    def __init__(self, prefix: str = "_v", used: Iterable[str] = ()) -> None:
        self._prefix = prefix
        self._used: set[str] = set(used)
        self._counter = itertools.count()

    def reserve(self, names: Iterable[str]) -> None:
        """Mark ``names`` as already in use."""
        self._used.update(names)

    def reserve_from_terms(self, terms: Iterable[Term]) -> None:
        """Reserve the names of all variables appearing in ``terms``."""
        self._used.update(t.name for t in terms if isinstance(t, Variable))

    def __call__(self, hint: str | None = None) -> Variable:
        """Return a fresh variable.

        Parameters
        ----------
        hint:
            Optional readable stem; the fresh name will start with it.
        """
        stem = hint if hint is not None else self._prefix
        for i in self._counter:
            name = f"{stem}{i}"
            if name not in self._used:
                self._used.add(name)
                return Variable(name)
        raise RuntimeError("unreachable")  # pragma: no cover

    def fresh_many(self, count: int, hint: str | None = None) -> list[Variable]:
        """Return ``count`` distinct fresh variables."""
        return [self(hint) for _ in range(count)]
