"""Hash indexes over relations for the indexed join engine.

The join engine in :mod:`repro.datalog.evaluation` probes relations on the
argument positions that are already bound (constants in the atom, or
variables bound by earlier atoms in the join order).  A
:class:`PredicateIndex` holds the rows of one relation together with hash
indexes on subsets of positions, built lazily the first time a probe asks
for them and maintained incrementally as rows are added.

Probes are phrased as *patterns*: one entry per column, either the
:data:`WILDCARD` sentinel (position unconstrained) or a concrete value the
row must hold at that position.  ``None`` is not used as the wildcard
because ``None`` could in principle appear as a data value.

:class:`IndexedFactSource` extends the evaluation ``FactSource`` protocol
with pattern probes; :func:`ensure_indexed` upgrades any plain fact source
to an indexed one by snapshotting its relations on first use.
"""

from __future__ import annotations

from typing import Collection, Dict, Iterable, List, Protocol, Tuple

Row = Tuple[object, ...]


class _Wildcard:
    """Singleton marker for an unconstrained pattern position."""

    _instance: "_Wildcard | None" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "*"


#: Pattern entry meaning "any value at this position".
WILDCARD = _Wildcard()

#: A pattern: one entry per column, WILDCARD or a required value.
Pattern = Tuple[object, ...]

#: Maximum insertion-log length kept per relation for delta scans.  Beyond
#: this the log is dropped and the next delta request degrades to a full
#: rescan (correct, just less efficient).
DELTA_LOG_CAP = 8192


class PredicateIndex:
    """Rows of one relation plus lazily built positional hash indexes.

    The index owns its row set.  Adding a row updates every index that has
    already been built (O(#indexes) per row); building an index for a new
    position subset is a single scan of the rows.  Removal invalidates the
    built indexes (it is rare on the hot paths).
    """

    __slots__ = ("_rows", "_indexes", "_version", "_widths", "_log", "_log_floor")

    def __init__(self, rows: Iterable[Row] = ()):
        self._rows: set[Row] = set(map(tuple, rows))
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[object, ...], List[Row]]] = {}
        self._version = 0
        self._widths: Dict[int, int] = {}
        # Bounded insertion log backing delta scans (rows_since): log[i] is
        # the row whose add moved the version to _log_floor + i + 1.
        self._log: List[Row] = []
        self._log_floor = 0
        for row in self._rows:
            self._widths[len(row)] = self._widths.get(len(row), 0) + 1

    # -- mutation ---------------------------------------------------------

    def add(self, row: Row) -> bool:
        """Add ``row``; returns ``True`` iff it was new."""
        if row in self._rows:
            return False
        self._rows.add(row)
        self._version += 1
        self._widths[len(row)] = self._widths.get(len(row), 0) + 1
        self._log.append(row)
        if len(self._log) > DELTA_LOG_CAP:
            # The log is soft state: dropping it only downgrades later
            # delta requests to full rescans, it never loses rows.
            self._log = []
            self._log_floor = self._version
        for positions, buckets in self._indexes.items():
            key = _bucket_key(row, positions)
            buckets.setdefault(key, []).append(row)
        return True

    def add_all(self, rows: Iterable[Row]) -> int:
        """Add many rows; returns how many were new."""
        return sum(1 for row in rows if self.add(tuple(row)))

    def discard(self, row: Row) -> bool:
        """Remove ``row`` if present, dropping built indexes."""
        if row not in self._rows:
            return False
        self._rows.remove(row)
        self._version += 1
        # Removals are not representable as an additive delta: invalidate
        # the log so delta requests from older versions get a full rescan.
        self._log = []
        self._log_floor = self._version
        width = len(row)
        remaining = self._widths.get(width, 0) - 1
        if remaining > 0:
            self._widths[width] = remaining
        else:
            self._widths.pop(width, None)
        self._indexes.clear()
        return True

    def clear(self) -> None:
        """Remove every row and every index."""
        if self._rows:
            self._version += 1
        self._rows.clear()
        self._indexes.clear()
        self._widths.clear()
        self._log = []
        self._log_floor = self._version

    # -- access -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (for cache validation)."""
        return self._version

    def rows(self) -> Collection[Row]:
        """The live row set (treat as read-only)."""
        return self._rows

    def rows_since(self, version: int) -> "Tuple[Row, ...] | None":
        """Rows added after ``version``, or ``None`` if unanswerable.

        ``None`` means the additive history back to ``version`` is gone
        (a removal or ``clear`` happened, the log overflowed, or the
        version is from the future) and the caller must take a full
        rescan.  A non-``None`` result is exactly the rows whose ``add``
        moved the version past ``version``, in insertion order.
        """
        if version < self._log_floor or version > self._version:
            return None
        return tuple(self._log[version - self._log_floor:])

    def matching(self, pattern: Pattern) -> Collection[Row]:
        """Rows whose values equal ``pattern`` at every non-wildcard position.

        Raises :class:`ValueError` when the relation holds any row whose
        width differs from the pattern's — the relation is malformed with
        respect to the probing atom, and a scanning evaluator would have
        raised on that row.  This keeps error detection deterministic
        regardless of which index bucket a probe hits.
        """
        expected = len(pattern)
        widths = self._widths
        if widths and not (len(widths) == 1 and expected in widths):
            raise ValueError(
                f"holds rows of widths {sorted(widths)} but the probing atom "
                f"has arity {expected}"
            )
        positions = tuple(
            i for i, value in enumerate(pattern) if value is not WILDCARD
        )
        if not positions:
            return self._rows
        buckets = self._indexes.get(positions)
        if buckets is None:
            buckets = {}
            for row in self._rows:
                buckets.setdefault(_bucket_key(row, positions), []).append(row)
            self._indexes[positions] = buckets
        return buckets.get(tuple(pattern[p] for p in positions), ())

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PredicateIndex({len(self._rows)} rows, {len(self._indexes)} indexes)"


def _bucket_key(row: Row, positions: Tuple[int, ...]) -> Tuple[object, ...]:
    """Values of ``row`` at ``positions``.

    Raises :class:`ValueError` when the row is narrower than a probed
    position — deterministic detection of malformed data, independent of
    which bucket a probe would have hit.  The evaluation engine translates
    this into its :class:`~repro.errors.EvaluationError` with the relation
    name attached.
    """
    if len(row) <= max(positions):
        raise ValueError(
            f"row {row!r} of width {len(row)} is too narrow for an index on "
            f"positions {positions}"
        )
    return tuple(row[p] for p in positions)


class IndexedFactSource(Protocol):
    """A fact source that can answer positional pattern probes.

    ``get_matching(predicate, pattern)`` returns the rows of ``predicate``
    agreeing with ``pattern`` at every non-:data:`WILDCARD` position.  It
    must return the same rows a scan-and-filter of ``get_tuples`` would.
    """

    def get_tuples(self, predicate: str) -> Iterable[Row]:  # pragma: no cover
        ...

    def get_matching(
        self, predicate: str, pattern: Pattern
    ) -> Iterable[Row]:  # pragma: no cover
        ...


class SnapshotIndexedSource:
    """Upgrade a plain ``get_tuples`` source to an indexed one.

    Relations are snapshotted (and indexed) lazily, one
    :class:`PredicateIndex` per predicate, the first time they are touched.
    The snapshot is taken once per adapter, so an adapter must not outlive
    mutations of the underlying source — the evaluation entry points create
    one adapter per evaluation call.
    """

    __slots__ = ("_source", "_cache")

    def __init__(self, source: object):
        self._source = source
        self._cache: Dict[str, PredicateIndex] = {}

    def _index(self, predicate: str) -> PredicateIndex:
        index = self._cache.get(predicate)
        if index is None:
            index = PredicateIndex(self._source.get_tuples(predicate))  # type: ignore[attr-defined]
            self._cache[predicate] = index
        return index

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        return self._index(predicate).rows()

    def get_matching(self, predicate: str, pattern: Pattern) -> Iterable[Row]:
        return self._index(predicate).matching(pattern)


def ensure_indexed(source: object) -> IndexedFactSource:
    """Return ``source`` if it already answers pattern probes, else wrap it."""
    if hasattr(source, "get_matching"):
        return source  # type: ignore[return-value]
    return SnapshotIndexedSource(source)
