"""Constraint conjunctions of comparison predicates.

Section 4.2 of the paper attaches to each rule-goal-tree node a
*constraint label* ``c(n)``: the conjunction of comparison predicates known
to hold over the variables of the node's label.  The algorithm needs three
operations on such conjunctions:

* **satisfiability** — "we do not expand a node in the tree if its label is
  not satisfiable";
* **conjunction / propagation** — when a node is expanded with a
  definitional mapping ``r`` carrying comparisons ``c1 ∧ ... ∧ cm``, the
  child label is ``c(n) ∧ c1 ∧ ... ∧ cm``;
* **projection** onto the variables of a child node — the paper's footnote 3
  notes the exact projection may be a disjunction and allows approximating
  it with "the least subsuming conjunction", which is what we do.

We implement a sound and complete satisfiability test for conjunctions of
``=, !=, <, <=, >, >=`` atoms over a dense totally ordered domain (numbers;
strings are ordered lexicographically and kept in a separate stratum), via
the classical approach: build equality classes (union-find), collapse, then
check the strict/non-strict ordering graph for cycles containing a strict
edge, and finally check ``!=`` atoms and constant bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .atoms import ComparisonAtom, compare_values
from .terms import Constant, Term, Variable, is_variable


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


@dataclass(frozen=True)
class ConstraintSet:
    """An immutable conjunction of comparison atoms.

    The empty conjunction is ``True``.  Use :meth:`conjoin` to add atoms,
    :meth:`is_satisfiable` to test consistency, :meth:`project` to
    restrict to a variable set (least subsuming conjunction), and
    :meth:`implies` for entailment of a single comparison.
    """

    atoms: Tuple[ComparisonAtom, ...] = field(default=())

    def __init__(self, atoms: Iterable[ComparisonAtom] = ()):
        # Normalise: drop exact duplicates, keep order otherwise.
        seen: set[ComparisonAtom] = set()
        unique: List[ComparisonAtom] = []
        for atom in atoms:
            if atom not in seen:
                seen.add(atom)
                unique.append(atom)
        object.__setattr__(self, "atoms", tuple(unique))

    # -- basic protocol --------------------------------------------------------

    def __iter__(self) -> Iterator[ComparisonAtom]:
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def is_trivially_true(self) -> bool:
        """Return ``True`` iff the conjunction has no atoms."""
        return not self.atoms

    def variables(self) -> FrozenSet[Variable]:
        """All variables mentioned by the conjunction."""
        result: set[Variable] = set()
        for atom in self.atoms:
            result.update(atom.variables())
        return frozenset(result)

    # -- construction ----------------------------------------------------------

    def conjoin(self, extra: Iterable[ComparisonAtom] | "ConstraintSet") -> "ConstraintSet":
        """Return the conjunction of this set with ``extra``."""
        extra_atoms = extra.atoms if isinstance(extra, ConstraintSet) else tuple(extra)
        return ConstraintSet(self.atoms + tuple(extra_atoms))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConstraintSet":
        """Apply a substitution to every comparison atom."""
        return ConstraintSet(tuple(a.substitute(mapping) for a in self.atoms))

    # -- satisfiability --------------------------------------------------------

    def is_satisfiable(self) -> bool:
        """Decide satisfiability over a dense ordered domain.

        Ground comparisons are evaluated outright.  Equalities merge
        variables/constants into classes; two distinct constants in one
        class are a contradiction.  Then a directed graph with edges
        ``a -> b`` for ``a <= b`` (weight 0) and ``a < b`` (weight 1) is
        checked: a cycle containing a strict edge is a contradiction, and
        ``!=`` within one equality class is a contradiction.  Finally the
        interval of every class implied by constant bounds must be
        non-empty.
        """
        uf = _UnionFind()
        strict_edges: List[Tuple[object, object]] = []     # a < b
        nonstrict_edges: List[Tuple[object, object]] = []  # a <= b
        disequalities: List[Tuple[object, object]] = []

        def key(term: Term) -> object:
            if isinstance(term, Constant):
                return ("const", term.value)
            return ("var", term.name)

        for atom in self.atoms:
            if atom.is_ground():
                if not atom.evaluate_ground():
                    return False
                continue
            left, right = key(atom.left), key(atom.right)
            if atom.op == "=":
                uf.union(left, right)
            elif atom.op == "!=":
                disequalities.append((left, right))
            elif atom.op == "<":
                strict_edges.append((left, right))
            elif atom.op == "<=":
                nonstrict_edges.append((left, right))
            elif atom.op == ">":
                strict_edges.append((right, left))
            elif atom.op == ">=":
                nonstrict_edges.append((right, left))

        # Collect every node, including constants, before collapsing classes.
        nodes: set[object] = set()
        for a, b in strict_edges + nonstrict_edges + disequalities:
            nodes.add(a)
            nodes.add(b)
        for atom in self.atoms:
            if not atom.is_ground():
                nodes.add(key(atom.left))
                nodes.add(key(atom.right))

        # Two different constants in the same equality class -> unsat.
        class_constant: Dict[object, object] = {}
        for node in nodes:
            root = uf.find(node)
            if isinstance(node, tuple) and node[0] == "const":
                existing = class_constant.get(root, _MISSING)
                if existing is not _MISSING and existing != node[1]:
                    return False
                class_constant[root] = node[1]

        # Build the ordering graph over equality-class representatives and
        # compute its transitive closure, tracking whether some path uses a
        # strict edge.  The graphs produced by reformulation labels are tiny
        # (a handful of variables), so Floyd–Warshall is perfectly adequate.
        reps = sorted({uf.find(n) for n in nodes}, key=repr)
        rep_index = {rep: i for i, rep in enumerate(reps)}
        size = len(reps)
        NO, WEAK, STRICT = 0, 1, 2
        reach = [[NO] * size for _ in range(size)]

        def add_edge(a: object, b: object, strict: bool) -> None:
            i, j = rep_index[uf.find(a)], rep_index[uf.find(b)]
            reach[i][j] = max(reach[i][j], STRICT if strict else WEAK)

        for a, b in nonstrict_edges:
            add_edge(a, b, strict=False)
        for a, b in strict_edges:
            add_edge(a, b, strict=True)

        for k in range(size):
            for i in range(size):
                if reach[i][k] == NO:
                    continue
                for j in range(size):
                    if reach[k][j] == NO:
                        continue
                    combined = STRICT if STRICT in (reach[i][k], reach[k][j]) else WEAK
                    reach[i][j] = max(reach[i][j], combined)

        # A strict path from a class to itself means x < x: unsatisfiable.
        for i in range(size):
            if reach[i][i] == STRICT:
                return False

        # Ordering paths between constant-valued classes must agree with the
        # actual constant order (this catches e.g.  x < 5 together with x > 7,
        # where 7 reaches 5 through the class of x).
        for i in range(size):
            const_a = class_constant.get(reps[i], _MISSING)
            if const_a is _MISSING:
                continue
            for j in range(size):
                if reach[i][j] == NO or i == j:
                    continue
                const_b = class_constant.get(reps[j], _MISSING)
                if const_b is _MISSING:
                    continue
                op = "<" if reach[i][j] == STRICT else "<="
                if not compare_values(const_a, op, const_b):
                    return False

        # Disequality within a single class -> unsat; two classes ordered in
        # both directions (hence forced equal) with a disequality -> unsat.
        for a, b in disequalities:
            ra, rb = uf.find(a), uf.find(b)
            if ra == rb:
                return False
            i, j = rep_index[ra], rep_index[rb]
            if reach[i][j] == WEAK and reach[j][i] == WEAK:
                return False
        return True

    # -- projection and entailment ---------------------------------------------

    def project(self, variables: Iterable[Variable]) -> "ConstraintSet":
        """Project onto ``variables`` (least subsuming conjunction).

        We keep every atom whose variables are all within ``variables``
        (constants are always allowed), plus atoms derivable by one step of
        transitivity through an eliminated variable (e.g. from ``x < y`` and
        ``y < 5`` with ``y`` eliminated we keep ``x < 5``).  This
        over-approximates the true projection, which is exactly what the
        paper's footnote 3 permits.
        """
        keep = set(variables)

        def visible(atom: ComparisonAtom) -> bool:
            return all(v in keep for v in atom.variables())

        kept = [a for a in self.atoms if visible(a)]

        # One-step transitive closure through eliminated variables.
        hidden_atoms = [a for a in self.atoms if not visible(a)]
        derived: List[ComparisonAtom] = []
        order_ops = {"<", "<=", "="}
        for first in hidden_atoms:
            for second in hidden_atoms:
                if first is second:
                    continue
                chained = _chain(first, second, order_ops)
                if chained is not None and visible(chained):
                    derived.append(chained)
        return ConstraintSet(tuple(kept) + tuple(derived))

    def implies(self, atom: ComparisonAtom) -> bool:
        """Return ``True`` iff this conjunction entails ``atom``.

        Uses refutation: the conjunction entails ``atom`` iff conjunction
        ∧ ¬atom is unsatisfiable.
        """
        if not self.is_satisfiable():
            return True
        return not self.conjoin([atom.negated()]).is_satisfiable()

    def __str__(self) -> str:
        if not self.atoms:
            return "true"
        return " ∧ ".join(str(a) for a in self.atoms)

    def __repr__(self) -> str:
        return f"ConstraintSet({self})"


class _Missing:
    """Sentinel distinct from any constant value."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()


def _chain(
    first: ComparisonAtom, second: ComparisonAtom, order_ops: set
) -> Optional[ComparisonAtom]:
    """One step of transitive chaining: from ``a op1 b`` and ``b op2 c``
    derive ``a op c`` where ``op`` is the stricter of the two order
    operators.  Only handles <, <=, = chains (sufficient for projection
    approximation)."""
    def normalise(atom: ComparisonAtom) -> Optional[Tuple[Term, str, Term]]:
        if atom.op in ("<", "<=", "="):
            return (atom.left, atom.op, atom.right)
        if atom.op in (">", ">="):
            flipped = atom.flipped()
            return (flipped.left, flipped.op, flipped.right)
        return None

    n1 = normalise(first)
    n2 = normalise(second)
    if n1 is None or n2 is None:
        return None
    a, op1, b = n1
    b2, op2, c = n2
    if b != b2 or not isinstance(b, Variable):
        return None
    if op1 not in order_ops or op2 not in order_ops:
        return None
    if "<" in (op1, op2):
        op = "<"
    elif op1 == "=" and op2 == "=":
        op = "="
    else:
        op = "<="
    if a == c:
        return None
    return ComparisonAtom(a, op, c)


def constraints_of(atoms: Iterable[ComparisonAtom]) -> ConstraintSet:
    """Convenience constructor mirroring :class:`ConstraintSet`."""
    return ConstraintSet(atoms)
