"""Homomorphism search between sets of atoms and between queries.

A *homomorphism* from a set of atoms ``A`` to a set of atoms ``B`` is a
mapping ``h`` from the variables of ``A`` to terms of ``B`` such that every
atom of ``A`` is mapped onto some atom of ``B`` (constants map to
themselves).  Query containment (Chandra–Merkurio 1977 style) reduces to
the existence of a *containment mapping*: a homomorphism from the body of
the containing query to the body of the contained query that maps head to
head.

This is the engine behind:

* CQ containment and equivalence (:mod:`repro.datalog.containment`),
* CQ minimization (:mod:`repro.datalog.minimize`),
* detection of redundant rewritings in the PDMS reformulation step.

The search is a straightforward backtracking over candidate target atoms
per source atom, with the most-constrained-first atom ordering; bodies in
this domain are small (a handful of atoms) so this is plenty fast.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from .atoms import Atom
from .terms import Term, Variable, is_variable
from .unify import Substitution


def _order_atoms(atoms: Sequence[Atom]) -> List[Atom]:
    """Order atoms so that highly constrained ones (more constants, shared
    variables with earlier atoms) come first; a cheap heuristic that keeps
    the backtracking shallow."""
    remaining = list(atoms)
    ordered: List[Atom] = []
    bound_vars: set[Variable] = set()
    while remaining:
        def score(atom: Atom) -> tuple[int, int]:
            consts = sum(1 for a in atom.args if not is_variable(a))
            shared = sum(1 for a in atom.args if is_variable(a) and a in bound_vars)
            return (consts + shared, consts)

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound_vars.update(best.variable_set())
    return ordered


def find_homomorphisms(
    source: Sequence[Atom],
    target: Sequence[Atom],
    seed: Optional[Mapping[Variable, Term]] = None,
) -> Iterator[Substitution]:
    """Yield every homomorphism from ``source`` atoms into ``target`` atoms.

    Candidate target atoms for each source atom are looked up in a
    positional index: every position of a source atom that holds a
    constant, or a variable already bound when the atom is reached in the
    search order, narrows the candidates to the target atoms carrying the
    required term at that position.  The search itself binds into a single
    mutable mapping with trail-based undo.

    Parameters
    ----------
    source:
        Atoms whose variables are to be mapped.
    target:
        Atoms that must cover the image of every source atom.
    seed:
        Optional partial mapping that every returned homomorphism must
        extend (used for containment mappings, where the head fixes part
        of the mapping).
    """
    ordered = _order_atoms(source)
    by_predicate: Dict[str, List[Atom]] = {}
    by_position: Dict[tuple[str, int, Term], List[Atom]] = {}
    for atom in target:
        by_predicate.setdefault(atom.predicate, []).append(atom)
        for pos, arg in enumerate(atom.args):
            by_position.setdefault((atom.predicate, pos, arg), []).append(atom)

    initial: Substitution = dict(seed) if seed else {}

    # Per ordered atom, precompute the probe positions whose target term is
    # known either statically (constants) or at search time (variables
    # bound by earlier atoms or by the seed).
    compiled: List[tuple[Atom, List[tuple[int, Term]], List[tuple[int, Variable]]]] = []
    bound_before: set[Variable] = set(initial)
    for atom in ordered:
        const_probes: List[tuple[int, Term]] = []
        var_probes: List[tuple[int, Variable]] = []
        for pos, arg in enumerate(atom.args):
            if is_variable(arg):
                if arg in bound_before:
                    var_probes.append((pos, arg))  # type: ignore[arg-type]
            else:
                const_probes.append((pos, arg))
        compiled.append((atom, const_probes, var_probes))
        bound_before.update(atom.variable_set())

    def candidates_for(
        atom: Atom,
        const_probes: List[tuple[int, Term]],
        var_probes: List[tuple[int, Variable]],
        mapping: Substitution,
    ) -> Sequence[Atom]:
        best: Optional[Sequence[Atom]] = None
        for pos, term in const_probes:
            bucket = by_position.get((atom.predicate, pos, term), ())
            if best is None or len(bucket) < len(best):
                best = bucket
        for pos, var in var_probes:
            bucket = by_position.get((atom.predicate, pos, mapping[var]), ())
            if best is None or len(bucket) < len(best):
                best = bucket
        if best is None:
            return by_predicate.get(atom.predicate, ())
        return best

    mapping: Substitution = initial

    def backtrack(index: int) -> Iterator[Substitution]:
        if index == len(compiled):
            yield dict(mapping)
            return
        atom, const_probes, var_probes = compiled[index]
        for candidate in candidates_for(atom, const_probes, var_probes, mapping):
            if candidate.arity != atom.arity:
                continue
            added: List[Variable] = []
            ok = True
            for p_arg, t_arg in zip(atom.args, candidate.args):
                if is_variable(p_arg):
                    bound = mapping.get(p_arg)  # type: ignore[arg-type]
                    if bound is None:
                        mapping[p_arg] = t_arg  # type: ignore[index]
                        added.append(p_arg)  # type: ignore[arg-type]
                    elif bound != t_arg:
                        ok = False
                        break
                elif p_arg != t_arg:
                    ok = False
                    break
            if ok:
                yield from backtrack(index + 1)
            for var in added:
                del mapping[var]

    yield from backtrack(0)


def find_homomorphism(
    source: Sequence[Atom],
    target: Sequence[Atom],
    seed: Optional[Mapping[Variable, Term]] = None,
) -> Optional[Substitution]:
    """Return one homomorphism from ``source`` into ``target``, or ``None``."""
    return next(find_homomorphisms(source, target, seed), None)


def has_homomorphism(
    source: Sequence[Atom],
    target: Sequence[Atom],
    seed: Optional[Mapping[Variable, Term]] = None,
) -> bool:
    """Return ``True`` iff a homomorphism from ``source`` into ``target`` exists."""
    return find_homomorphism(source, target, seed) is not None


def head_seed(
    container_head: Atom, contained_head: Atom
) -> Optional[Substitution]:
    """Build the seed mapping required for a containment mapping.

    A containment mapping from query ``Q1`` (container) to ``Q2``
    (contained) must map the head of ``Q1`` onto the head of ``Q2``
    argument-by-argument.  Returns ``None`` if the heads are incompatible
    (different arity, or a constant mismatch).
    """
    if container_head.arity != contained_head.arity:
        return None
    seed: Substitution = {}
    for c_arg, d_arg in zip(container_head.args, contained_head.args):
        if is_variable(c_arg):
            bound = seed.get(c_arg)  # type: ignore[arg-type]
            if bound is None:
                seed[c_arg] = d_arg  # type: ignore[index]
            elif bound != d_arg:
                return None
        else:
            if c_arg != d_arg:
                return None
    return seed
