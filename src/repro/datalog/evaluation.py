"""Evaluation of conjunctive queries, UCQs, and datalog programs.

Evaluation works against any *fact source*: either a plain mapping from
predicate names to collections of tuples, or an object exposing
``get_tuples(predicate) -> Iterable[tuple]`` (the
:class:`repro.database.instance.Instance` class does).  Results are sets of
Python tuples of plain values (the values held by :class:`Constant`).

Conjunctive queries are compiled to *join plans*: the body's relational
atoms are ordered most-constrained-first (the same heuristic used for
homomorphism search) and each atom becomes a step that probes a hash index
on the argument positions already bound at that point — constants in the
atom plus variables bound by earlier steps — instead of scanning the whole
relation.  Sources that implement the
:class:`repro.datalog.indexing.IndexedFactSource` protocol (``Instance``,
the internal mapping/layered sources) answer those probes from maintained
indexes; any other source is snapshotted into one per evaluation call.
The backtracking itself binds into a single mutable binding dictionary
with trail-based undo, so no per-candidate-row copies are made.

Datalog programs are evaluated with true semi-naive fixpoint iteration:
for every rule and every IDB atom occurrence in its body, a *delta plan*
joins that occurrence against the previous round's newly derived tuples
and the remaining atoms against the full (EDB + IDB) relations.  Rules
whose bodies touch no IDB predicate fire once, in the naive seeding round.
See ``docs/evaluation.md`` for the architecture notes.
"""

from __future__ import annotations

from itertools import chain
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import EvaluationError
from .atoms import Atom, BodyAtom, ComparisonAtom, compare_values
from .indexing import (
    WILDCARD,
    IndexedFactSource,
    Pattern,
    PredicateIndex,
    ensure_indexed,
)
from .queries import ConjunctiveQuery, DatalogProgram, UnionQuery
from .terms import Constant, Variable, is_variable

#: A row of plain Python values.
Row = Tuple[object, ...]


class FactSource(Protocol):
    """Protocol for anything that can supply tuples for a predicate."""

    def get_tuples(self, predicate: str) -> Iterable[Row]:  # pragma: no cover - protocol
        ...


FactsLike = Union[FactSource, Mapping[str, Iterable[Row]]]


class _MappingFacts:
    """Adapter presenting a plain mapping as an indexed fact source."""

    def __init__(self, mapping: Mapping[str, Iterable[Row]]):
        self._indexes = {
            name: PredicateIndex(map(tuple, rows)) for name, rows in mapping.items()
        }

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        index = self._indexes.get(predicate)
        return index.rows() if index is not None else ()

    def get_matching(self, predicate: str, pattern: Pattern) -> Iterable[Row]:
        index = self._indexes.get(predicate)
        return index.matching(pattern) if index is not None else ()

    def relations(self) -> Tuple[str, ...]:
        """Relation names in the adapted mapping (for stats snapshots)."""
        return tuple(self._indexes)

    def cardinality(self, relation: str) -> int:
        """Row count of ``relation`` (0 when unknown)."""
        index = self._indexes.get(relation)
        return len(index) if index is not None else 0


def as_fact_source(facts: FactsLike) -> FactSource:
    """Coerce a mapping or fact source into a :class:`FactSource`."""
    if hasattr(facts, "get_tuples"):
        return facts  # type: ignore[return-value]
    if isinstance(facts, Mapping):
        return _MappingFacts(facts)
    raise EvaluationError(f"cannot use {type(facts).__name__} as a fact source")


# ---------------------------------------------------------------------------
# Join-plan compilation
# ---------------------------------------------------------------------------

def _order_body(
    body: Sequence[Tuple[int, Atom]], first: Optional[int] = None
) -> List[Tuple[int, Atom]]:
    """Order relational atoms most-constrained-first for the join search.

    ``body`` pairs each atom with its occurrence id (position among the
    body's relational atoms).  When ``first`` names an occurrence, that
    atom is forced to the front — delta plans start from the (small) delta
    relation — and the heuristic orders the rest around it.
    """
    remaining = list(body)
    ordered: List[Tuple[int, Atom]] = []
    bound: set[Variable] = set()
    if first is not None:
        for pair in remaining:
            if pair[0] == first:
                remaining.remove(pair)
                ordered.append(pair)
                bound.update(pair[1].variable_set())
                break
    while remaining:
        def score(pair: Tuple[int, Atom]) -> Tuple[int, int]:
            atom = pair[1]
            consts = sum(1 for a in atom.args if not is_variable(a))
            shared = sum(1 for a in atom.args if is_variable(a) and a in bound)
            return (shared + consts, consts)

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best[1].variable_set())
    return ordered


#: A compiled comparison: a predicate over the (mutable) binding dict.
_CompiledComparison = Callable[[Dict[Variable, object]], bool]


def _compile_comparison(comp: ComparisonAtom) -> _CompiledComparison:
    left, op, right = comp.left, comp.op, comp.right
    if is_variable(left) and is_variable(right):
        return lambda b: compare_values(b[left], op, b[right])
    if is_variable(left):
        rv = right.value  # type: ignore[union-attr]
        return lambda b: compare_values(b[left], op, rv)
    lv = left.value  # type: ignore[union-attr]
    return lambda b: compare_values(lv, op, b[right])


class _Step:
    """One compiled join step: probe a relation, bind new variables."""

    __slots__ = (
        "occurrence",
        "predicate",
        "arity",
        "base_pattern",
        "var_probe",
        "intra_checks",
        "bind_ops",
        "comparisons",
    )

    def __init__(self, occurrence: int, atom: Atom, bound_before: set[Variable]):
        self.occurrence = occurrence
        self.predicate = atom.predicate
        self.arity = atom.arity
        pattern: List[object] = [WILDCARD] * atom.arity
        var_probe: List[Tuple[int, Variable]] = []
        intra_checks: List[Tuple[int, int]] = []
        bind_ops: List[Tuple[int, Variable]] = []
        first_position: Dict[Variable, int] = {}
        for pos, arg in enumerate(atom.args):
            if is_variable(arg):
                if arg in bound_before:
                    var_probe.append((pos, arg))  # probe on the runtime value
                elif arg in first_position:
                    intra_checks.append((pos, first_position[arg]))
                else:
                    first_position[arg] = pos
                    bind_ops.append((pos, arg))
            else:
                assert isinstance(arg, Constant)
                pattern[pos] = arg.value
        self.base_pattern: Pattern = tuple(pattern)
        self.var_probe = tuple(var_probe)
        self.intra_checks = tuple(intra_checks)
        self.bind_ops = tuple(bind_ops)
        self.comparisons: Tuple[_CompiledComparison, ...] = ()


class _JoinPlan:
    """A compiled conjunctive body plus head projection.

    ``delta_occurrence`` (set at compile time) marks one relational-atom
    occurrence whose tuples are read from a caller-supplied delta index
    instead of the fact source — the building block of semi-naive datalog
    evaluation.
    """

    __slots__ = ("steps", "head_ops", "always_false", "delta_occurrence")

    def __init__(
        self,
        head: Atom,
        body: Sequence[BodyAtom],
        delta_occurrence: Optional[int] = None,
    ):
        relational = [a for a in body if isinstance(a, Atom)]
        comparisons = [a for a in body if isinstance(a, ComparisonAtom)]
        self.delta_occurrence = delta_occurrence
        ordered = _order_body(list(enumerate(relational)), first=delta_occurrence)

        # Ground comparisons decide the plan's fate at compile time.
        self.always_false = any(
            c.is_ground() and not c.evaluate_ground() for c in comparisons
        )
        pending = [c for c in comparisons if not c.is_ground()]

        steps: List[_Step] = []
        bound: set[Variable] = set()
        for occurrence, atom in ordered:
            step = _Step(occurrence, atom, bound)
            bound.update(atom.variable_set())
            # Attach every comparison that has just become fully bound, so
            # the search prunes at the earliest possible step.
            ready = [c for c in pending if c.variable_set() <= bound]
            if ready:
                step.comparisons = tuple(_compile_comparison(c) for c in ready)
                pending = [c for c in pending if not (c.variable_set() <= bound)]
            steps.append(step)
        self.steps: Tuple[_Step, ...] = tuple(steps)

        head_ops: List[Tuple[bool, object]] = []
        for arg in head.args:
            if is_variable(arg):
                head_ops.append((True, arg))
            else:
                assert isinstance(arg, Constant)
                head_ops.append((False, arg.value))
        self.head_ops: Tuple[Tuple[bool, object], ...] = tuple(head_ops)

    def execute(
        self,
        source: IndexedFactSource,
        out: Set[Row],
        delta_index: Optional[PredicateIndex] = None,
    ) -> None:
        """Run the plan over ``source``, adding projected head rows to ``out``."""
        if self.always_false:
            return
        steps = self.steps
        nsteps = len(steps)
        head_ops = self.head_ops
        binding: Dict[Variable, object] = {}
        delta_occurrence = self.delta_occurrence

        def run(i: int) -> None:
            if i == nsteps:
                out.add(
                    tuple(binding[v] if is_var else v for is_var, v in head_ops)
                )
                return
            step = steps[i]
            if step.var_probe:
                filled = list(step.base_pattern)
                for pos, var in step.var_probe:
                    filled[pos] = binding[var]
                pattern: Pattern = tuple(filled)
            else:
                pattern = step.base_pattern
            try:
                if delta_index is not None and step.occurrence == delta_occurrence:
                    rows = delta_index.matching(pattern)
                else:
                    rows = source.get_matching(step.predicate, pattern)
            except ValueError as exc:
                # An index build hit a row narrower than a probed position.
                raise EvaluationError(
                    f"arity mismatch: relation {step.predicate} {exc}"
                ) from exc
            arity = step.arity
            intra_checks = step.intra_checks
            bind_ops = step.bind_ops
            comparisons = step.comparisons
            for row in rows:
                if len(row) != arity:
                    raise EvaluationError(
                        f"arity mismatch: relation {step.predicate} holds a row "
                        f"of width {len(row)} but the atom has arity {arity}"
                    )
                if intra_checks and any(
                    row[pos] != row[earlier] for pos, earlier in intra_checks
                ):
                    continue
                for pos, var in bind_ops:
                    binding[var] = row[pos]
                if not comparisons or all(c(binding) for c in comparisons):
                    run(i + 1)
                for _, var in bind_ops:
                    del binding[var]

        run(0)


def _compile_query(query: ConjunctiveQuery) -> _JoinPlan:
    return _JoinPlan(query.head, query.body)


def evaluate_query(query: ConjunctiveQuery, facts: FactsLike) -> Set[Row]:
    """Evaluate a conjunctive query over ``facts`` and return the answer set."""
    source = ensure_indexed(as_fact_source(facts))
    answers: Set[Row] = set()
    _compile_query(query).execute(source, answers)
    return answers


def evaluate_union(union: UnionQuery, facts: FactsLike) -> Set[Row]:
    """Evaluate a union of conjunctive queries (set semantics)."""
    source = ensure_indexed(as_fact_source(facts))
    answers: Set[Row] = set()
    for disjunct in union:
        _compile_query(disjunct).execute(source, answers)
    return answers


# ---------------------------------------------------------------------------
# Datalog evaluation (semi-naive)
# ---------------------------------------------------------------------------

class _LayeredFacts:
    """Fact source overlaying live IDB indexes on top of EDB facts.

    ``derived`` maps IDB predicate names to :class:`PredicateIndex`
    objects that the fixpoint loop mutates in place; the overlay sees new
    tuples immediately and keeps serving index probes without rebuilding.
    Full scans (``get_tuples``) merge base and derived rows into a fresh
    set, cached per predicate and invalidated via the index's version
    counter — callers never receive (and so can never corrupt) internal
    state by reference.
    """

    def __init__(
        self,
        base: FactSource,
        derived: Mapping[str, Union[PredicateIndex, Iterable[Row]]],
    ):
        self._base = ensure_indexed(base)
        self._idb: Dict[str, PredicateIndex] = {
            name: rows if isinstance(rows, PredicateIndex) else PredicateIndex(rows)
            for name, rows in derived.items()
        }
        self._scan_cache: Dict[str, Tuple[int, frozenset]] = {}

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        index = self._idb.get(predicate)
        if index is None or not index:
            return self._base.get_tuples(predicate)
        cached = self._scan_cache.get(predicate)
        if cached is not None and cached[0] == index.version:
            return cached[1]
        merged = frozenset(self._base.get_tuples(predicate)) | set(index.rows())
        self._scan_cache[predicate] = (index.version, merged)
        return merged

    def get_matching(self, predicate: str, pattern: Pattern) -> Iterable[Row]:
        index = self._idb.get(predicate)
        base = self._base.get_matching(predicate, pattern)
        if index is None or not index:
            return base
        derived = index.matching(pattern)
        if not base:
            return derived
        # A row present in both layers is yielded twice; set semantics
        # upstream absorbs the duplicate.
        return chain(base, derived)


def _idb_add(index: PredicateIndex, name: str, row: Row) -> None:
    """Add a derived row to an IDB index, mapping width clashes to EvaluationError."""
    try:
        index.add(row)
    except ValueError as exc:
        raise EvaluationError(f"arity mismatch: relation {name} {exc}") from exc


def evaluate_program(
    program: DatalogProgram,
    facts: FactsLike,
    max_iterations: Optional[int] = None,
) -> Dict[str, Set[Row]]:
    """Evaluate a datalog program to fixpoint (semi-naive).

    Returns a mapping from every IDB predicate to its derived tuples.  EDB
    facts are read from ``facts`` and are *not* included in the result
    unless an IDB rule rederives them under an IDB predicate name.

    The evaluation is genuinely semi-naive: after a naive seeding round,
    each iteration runs one *delta plan* per (rule, IDB body-atom
    occurrence), joining that occurrence against the previous round's new
    tuples only.  Rules with EDB-only bodies cannot derive anything after
    the seeding round and are never revisited.

    Parameters
    ----------
    max_iterations:
        Optional safety bound; ``None`` runs to fixpoint.  The fixpoint
        always terminates because the Herbrand base over the active domain
        is finite.
    """
    source = ensure_indexed(as_fact_source(facts))
    idb_predicates = program.idb_predicates()
    idb: Dict[str, PredicateIndex] = {p: PredicateIndex() for p in idb_predicates}
    layered = _LayeredFacts(source, idb)

    naive_plans = [_JoinPlan(rule.head, rule.body) for rule in program.rules]
    delta_plans: List[Tuple[str, str, _JoinPlan]] = []
    for rule in program.rules:
        relational = [a for a in rule.body if isinstance(a, Atom)]
        for occurrence, atom in enumerate(relational):
            if atom.predicate in idb_predicates:
                delta_plans.append(
                    (
                        rule.name,
                        atom.predicate,
                        _JoinPlan(rule.head, rule.body, delta_occurrence=occurrence),
                    )
                )

    # Naive seeding round: every rule once over the EDB (IDB still empty,
    # so everything derived is new).
    delta: Dict[str, Set[Row]] = {p: set() for p in idb_predicates}
    for rule, plan in zip(program.rules, naive_plans):
        derived: Set[Row] = set()
        plan.execute(layered, derived)
        delta[rule.name].update(derived)
    for name, rows in delta.items():
        index = idb[name]
        for row in rows:
            _idb_add(index, name, row)

    iteration = 0
    while any(delta.values()):
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise EvaluationError(
                f"datalog evaluation exceeded {max_iterations} iterations"
            )
        delta_indexes = {
            name: PredicateIndex(rows) for name, rows in delta.items() if rows
        }
        new_delta: Dict[str, Set[Row]] = {p: set() for p in idb_predicates}
        for head_name, delta_predicate, plan in delta_plans:
            delta_index = delta_indexes.get(delta_predicate)
            if delta_index is None:
                continue
            derived = set()
            plan.execute(layered, derived, delta_index=delta_index)
            existing = idb[head_name]
            new_delta[head_name].update(row for row in derived if row not in existing)
        for name, rows in new_delta.items():
            index = idb[name]
            for row in rows:
                _idb_add(index, name, row)
        delta = new_delta
    return {name: set(index.rows()) for name, index in idb.items()}


def evaluate_program_query(
    program: DatalogProgram, facts: FactsLike
) -> Set[Row]:
    """Evaluate a datalog program and return the tuples of its query predicate."""
    result = evaluate_program(program, facts)
    return result.get(program.query_predicate, set())
