"""Evaluation of conjunctive queries, UCQs, and datalog programs.

Evaluation works against any *fact source*: either a plain mapping from
predicate names to collections of tuples, or an object exposing
``get_tuples(predicate) -> Iterable[tuple]`` (the
:class:`repro.database.instance.Instance` class does).  Results are sets of
Python tuples of plain values (the values held by :class:`Constant`).

Conjunctive queries are evaluated by backtracking joins with the same
most-constrained-first atom ordering used for homomorphism search.
Datalog programs are evaluated with semi-naive fixpoint iteration, which
is what the PDMS needs to materialise definitional mappings and what the
inverse-rules baseline needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Protocol, Sequence, Set, Tuple, Union

from ..errors import EvaluationError
from .atoms import Atom, BodyAtom, ComparisonAtom, compare_values
from .queries import ConjunctiveQuery, DatalogProgram, UnionQuery
from .terms import Constant, Term, Variable, is_variable

#: A row of plain Python values.
Row = Tuple[object, ...]


class FactSource(Protocol):
    """Protocol for anything that can supply tuples for a predicate."""

    def get_tuples(self, predicate: str) -> Iterable[Row]:  # pragma: no cover - protocol
        ...


FactsLike = Union[FactSource, Mapping[str, Iterable[Row]]]


class _MappingFacts:
    """Adapter presenting a plain mapping as a :class:`FactSource`."""

    def __init__(self, mapping: Mapping[str, Iterable[Row]]):
        self._mapping = {name: set(map(tuple, rows)) for name, rows in mapping.items()}

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        return self._mapping.get(predicate, ())


def as_fact_source(facts: FactsLike) -> FactSource:
    """Coerce a mapping or fact source into a :class:`FactSource`."""
    if hasattr(facts, "get_tuples"):
        return facts  # type: ignore[return-value]
    if isinstance(facts, Mapping):
        return _MappingFacts(facts)
    raise EvaluationError(f"cannot use {type(facts).__name__} as a fact source")


# ---------------------------------------------------------------------------
# Conjunctive-query evaluation
# ---------------------------------------------------------------------------

def _order_body(body: Sequence[Atom]) -> List[Atom]:
    """Order relational atoms most-constrained-first for the join search."""
    remaining = list(body)
    ordered: List[Atom] = []
    bound: set[Variable] = set()
    while remaining:
        def score(atom: Atom) -> Tuple[int, int]:
            consts = sum(1 for a in atom.args if not is_variable(a))
            shared = sum(1 for a in atom.args if is_variable(a) and a in bound)
            return (shared + consts, consts)

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variable_set())
    return ordered


def _bindings(
    body: Sequence[BodyAtom], facts: FactSource
) -> Iterator[Dict[Variable, object]]:
    """Yield every assignment of body variables satisfying the body."""
    relational = [a for a in body if isinstance(a, Atom)]
    comparisons = [a for a in body if isinstance(a, ComparisonAtom)]
    ordered = _order_body(relational)

    def comparison_ready(comp: ComparisonAtom, binding: Mapping[Variable, object]) -> bool:
        return all(v in binding for v in comp.variables())

    def comparison_holds(comp: ComparisonAtom, binding: Mapping[Variable, object]) -> bool:
        def value(term: Term) -> object:
            if isinstance(term, Constant):
                return term.value
            return binding[term]  # type: ignore[index]

        return compare_values(value(comp.left), comp.op, value(comp.right))

    def backtrack(index: int, binding: Dict[Variable, object]) -> Iterator[Dict[Variable, object]]:
        # Apply any comparison whose variables are all bound; prune eagerly.
        for comp in comparisons:
            if comparison_ready(comp, binding) and not comparison_holds(comp, binding):
                return
        if index == len(ordered):
            yield dict(binding)
            return
        atom = ordered[index]
        for row in facts.get_tuples(atom.predicate):
            if len(row) != atom.arity:
                raise EvaluationError(
                    f"arity mismatch: relation {atom.predicate} holds a row of "
                    f"width {len(row)} but the atom has arity {atom.arity}"
                )
            extended = dict(binding)
            ok = True
            for arg, value in zip(atom.args, row):
                if is_variable(arg):
                    existing = extended.get(arg)  # type: ignore[arg-type]
                    if existing is None and arg not in extended:
                        extended[arg] = value  # type: ignore[index]
                    elif existing != value:
                        ok = False
                        break
                else:
                    assert isinstance(arg, Constant)
                    if arg.value != value:
                        ok = False
                        break
            if ok:
                yield from backtrack(index + 1, extended)

    if not ordered:
        # A body with no relational atoms (only possible for ground heads).
        binding: Dict[Variable, object] = {}
        if all(
            comparison_holds(c, binding) for c in comparisons if comparison_ready(c, binding)
        ):
            yield binding
        return
    yield from backtrack(0, {})


def evaluate_query(query: ConjunctiveQuery, facts: FactsLike) -> Set[Row]:
    """Evaluate a conjunctive query over ``facts`` and return the answer set."""
    source = as_fact_source(facts)
    answers: Set[Row] = set()
    for binding in _bindings(query.body, source):
        row: List[object] = []
        for arg in query.head.args:
            if is_variable(arg):
                row.append(binding[arg])  # type: ignore[index]
            else:
                assert isinstance(arg, Constant)
                row.append(arg.value)
        answers.add(tuple(row))
    return answers


def evaluate_union(union: UnionQuery, facts: FactsLike) -> Set[Row]:
    """Evaluate a union of conjunctive queries (set semantics)."""
    source = as_fact_source(facts)
    answers: Set[Row] = set()
    for disjunct in union:
        answers |= evaluate_query(disjunct, source)
    return answers


# ---------------------------------------------------------------------------
# Datalog evaluation (semi-naive)
# ---------------------------------------------------------------------------

class _LayeredFacts:
    """Fact source that overlays derived IDB facts on top of EDB facts."""

    def __init__(self, base: FactSource, derived: Mapping[str, Set[Row]]):
        self._base = base
        self._derived = derived

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        derived = self._derived.get(predicate, set())
        base = list(self._base.get_tuples(predicate))
        if not base:
            return derived
        return set(base) | derived


def evaluate_program(
    program: DatalogProgram,
    facts: FactsLike,
    max_iterations: Optional[int] = None,
) -> Dict[str, Set[Row]]:
    """Evaluate a datalog program to fixpoint (semi-naive).

    Returns a mapping from every IDB predicate to its derived tuples.  EDB
    facts are read from ``facts`` and are *not* included in the result
    unless an IDB rule rederives them under an IDB predicate name.

    Parameters
    ----------
    max_iterations:
        Optional safety bound; ``None`` runs to fixpoint.  The fixpoint
        always terminates because the Herbrand base over the active domain
        is finite.
    """
    source = as_fact_source(facts)
    idb: Dict[str, Set[Row]] = {p: set() for p in program.idb_predicates()}
    delta: Dict[str, Set[Row]] = {p: set() for p in program.idb_predicates()}

    # Naive first round to seed the deltas.
    layered = _LayeredFacts(source, idb)
    for rule in program.rules:
        derived = evaluate_query(ConjunctiveQuery(rule.head, rule.body), layered)
        delta[rule.name] |= derived - idb[rule.name]
    for name, rows in delta.items():
        idb[name] |= rows

    iteration = 0
    while any(delta.values()):
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise EvaluationError(
                f"datalog evaluation exceeded {max_iterations} iterations"
            )
        new_delta: Dict[str, Set[Row]] = {p: set() for p in idb}
        layered = _LayeredFacts(source, idb)
        for rule in program.rules:
            # Semi-naive: only rules that mention a predicate whose delta is
            # non-empty can derive anything new this round.
            if not any(delta.get(p) for p in rule.predicates()):
                continue
            derived = evaluate_query(ConjunctiveQuery(rule.head, rule.body), layered)
            new_delta[rule.name] |= derived - idb[rule.name]
        for name, rows in new_delta.items():
            idb[name] |= rows
        delta = new_delta
    return idb


def evaluate_program_query(
    program: DatalogProgram, facts: FactsLike
) -> Set[Row]:
    """Evaluate a datalog program and return the tuples of its query predicate."""
    result = evaluate_program(program, facts)
    return result.get(program.query_predicate, set())
