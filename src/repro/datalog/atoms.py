"""Atoms: relational atoms and comparison atoms.

A *relational atom* ``R(t1, ..., tk)`` pairs a predicate name with a tuple
of terms.  Predicate names in a PDMS are qualified as
``peer_name:relation_name`` (the paper's ``H:Doctor`` syntax); the atom
itself treats the name as an opaque string, and :mod:`repro.pdms` layers
the peer/relation split on top.

A *comparison atom* ``x < 5`` or ``x = y`` relates two terms with one of
the operators ``=, !=, <, <=, >, >=``.  The paper's queries "do not contain
comparison predicates" unless explicitly allowed, but peer mappings and
storage descriptions may use them (Theorem 3.3), so the data model carries
them throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence, Tuple, Union

from .terms import Constant, Term, Variable, is_variable, term_from_python

#: Comparison operators supported in comparison atoms.
COMPARISON_OPERATORS = ("=", "!=", "<", "<=", ">", ">=")

_OPERATOR_FUNCS: Mapping[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Operator obtained by swapping the two sides of a comparison.
FLIPPED_OPERATOR: Mapping[str, str] = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}

#: Operator expressing the negation of a comparison.
NEGATED_OPERATOR: Mapping[str, str] = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


@dataclass(frozen=True)
class Atom:
    """A relational atom ``predicate(args...)``.

    Parameters
    ----------
    predicate:
        Relation name.  In a PDMS this is a fully qualified name such as
        ``"H:Doctor"`` or a stored-relation name such as ``"doc"``.
    args:
        Tuple of terms.
    """

    predicate: str
    args: Tuple[Term, ...]

    def __init__(self, predicate: str, args: Sequence[Union[Term, str, int, float]]):
        if not predicate:
            raise ValueError("atom predicate must be non-empty")
        coerced = tuple(
            arg if isinstance(arg, (Variable, Constant)) else term_from_python(arg)
            for arg in args
        )
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", coerced)
        # Atoms are hashed heavily (MCD memoization, homomorphism indexes,
        # unification tables); term hashes are themselves cached, so this
        # one-off tuple hash is cheap.
        object.__setattr__(self, "_hash", hash((predicate, coerced)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables among the arguments, left to right (with repeats)."""
        for arg in self.args:
            if is_variable(arg):
                yield arg  # type: ignore[misc]

    def variable_set(self) -> frozenset[Variable]:
        """Return the set of distinct variables in the atom."""
        return frozenset(self.variables())

    def constants(self) -> Iterator[Constant]:
        """Yield the constants among the arguments, left to right (with repeats)."""
        for arg in self.args:
            if isinstance(arg, Constant):
                yield arg

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Return a copy of the atom with variables replaced per ``mapping``.

        Variables not present in ``mapping`` are left unchanged.
        """
        return Atom(
            self.predicate,
            tuple(mapping.get(a, a) if is_variable(a) else a for a in self.args),
        )

    def rename_predicate(self, new_predicate: str) -> "Atom":
        """Return the same atom under a different predicate name."""
        return Atom(new_predicate, self.args)

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:
        return f"Atom({self})"


@dataclass(frozen=True)
class ComparisonAtom:
    """A comparison predicate ``left op right``.

    ``op`` is one of ``=, !=, <, <=, >, >=``.  Either side may be a
    variable or a constant.  A comparison between two constants is allowed
    and evaluates to a fixed truth value.
    """

    left: Term
    op: str
    right: Term

    def __init__(
        self,
        left: Union[Term, str, int, float],
        op: str,
        right: Union[Term, str, int, float],
    ):
        if op not in COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator {op!r}")
        object.__setattr__(self, "left", _coerce(left))
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "right", _coerce(right))
        object.__setattr__(self, "_hash", hash((self.left, op, self.right)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def variables(self) -> Iterator[Variable]:
        """Yield the variables occurring in the comparison."""
        for side in (self.left, self.right):
            if is_variable(side):
                yield side  # type: ignore[misc]

    def variable_set(self) -> frozenset[Variable]:
        """Return the set of distinct variables in the comparison."""
        return frozenset(self.variables())

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ComparisonAtom":
        """Return a copy with variables replaced per ``mapping``."""
        left = mapping.get(self.left, self.left) if is_variable(self.left) else self.left
        right = (
            mapping.get(self.right, self.right) if is_variable(self.right) else self.right
        )
        return ComparisonAtom(left, self.op, right)

    def flipped(self) -> "ComparisonAtom":
        """Return the equivalent comparison with sides swapped."""
        return ComparisonAtom(self.right, FLIPPED_OPERATOR[self.op], self.left)

    def negated(self) -> "ComparisonAtom":
        """Return the comparison expressing the negation of this one."""
        return ComparisonAtom(self.left, NEGATED_OPERATOR[self.op], self.right)

    def is_ground(self) -> bool:
        """Return ``True`` iff both sides are constants."""
        return isinstance(self.left, Constant) and isinstance(self.right, Constant)

    def evaluate_ground(self) -> bool:
        """Evaluate a ground comparison; raises if not ground."""
        if not self.is_ground():
            raise ValueError(f"comparison {self} is not ground")
        assert isinstance(self.left, Constant) and isinstance(self.right, Constant)
        return compare_values(self.left.value, self.op, self.right.value)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def __repr__(self) -> str:
        return f"ComparisonAtom({self})"


#: Either kind of atom can appear in a query body.
BodyAtom = Union[Atom, ComparisonAtom]


def _coerce(value: Union[Term, str, int, float]) -> Term:
    if isinstance(value, (Variable, Constant)):
        return value
    return term_from_python(value)


def compare_values(left: object, op: str, right: object) -> bool:
    """Compare two Python values under a comparison operator.

    Values of incomparable types (e.g. a string and an int under ``<``)
    are compared by type name first so that comparisons are total; for
    ``=`` / ``!=`` plain equality is used.
    """
    func = _OPERATOR_FUNCS[op]
    if op in ("=", "!="):
        return func(left, right)
    try:
        return func(left, right)
    except TypeError:
        return func((type(left).__name__, str(left)), (type(right).__name__, str(right)))


def atoms_variables(atoms: Iterable[BodyAtom]) -> frozenset[Variable]:
    """Return all distinct variables occurring in ``atoms``."""
    result: set[Variable] = set()
    for atom in atoms:
        result.update(atom.variables())
    return frozenset(result)


def relational_atoms(atoms: Iterable[BodyAtom]) -> list[Atom]:
    """Return only the relational atoms from a mixed body."""
    return [a for a in atoms if isinstance(a, Atom)]


def comparison_atoms(atoms: Iterable[BodyAtom]) -> list[ComparisonAtom]:
    """Return only the comparison atoms from a mixed body."""
    return [a for a in atoms if isinstance(a, ComparisonAtom)]
