"""Substitutions and unification over terms and atoms.

A *substitution* maps variables to terms.  Unification of two atoms finds
the most general unifier (MGU), used by the reformulation algorithm when a
goal atom is unified with the head of a definitional mapping (paper,
Section 4.2, definitional expansion: "let r' be the result of unifying
p(Y̅) with the head of r").

The module also provides one-way *matching* (only variables of the pattern
may be bound), which underlies homomorphism search and MCD construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .atoms import Atom, BodyAtom, ComparisonAtom
from .terms import Constant, Term, Variable, is_variable

#: A substitution maps variables to terms.
Substitution = Dict[Variable, Term]


def apply_substitution_term(term: Term, subst: Mapping[Variable, Term]) -> Term:
    """Apply a substitution to a single term, following chains of variables.

    The substitution is applied repeatedly while the result is a variable
    bound by the substitution, so triangular substitutions produced during
    unification resolve to their final values.
    """
    seen = set()
    current = term
    while is_variable(current) and current in subst:
        if current in seen:  # pragma: no cover - cycle guard
            break
        seen.add(current)
        current = subst[current]  # type: ignore[index]
    return current


def apply_substitution_atom(atom: Atom, subst: Mapping[Variable, Term]) -> Atom:
    """Apply a substitution to every argument of a relational atom."""
    return Atom(atom.predicate, [apply_substitution_term(a, subst) for a in atom.args])


def apply_substitution_body(
    body: Sequence[BodyAtom], subst: Mapping[Variable, Term]
) -> list[BodyAtom]:
    """Apply a substitution to a mixed body of relational and comparison atoms."""
    result: list[BodyAtom] = []
    for atom in body:
        if isinstance(atom, Atom):
            result.append(apply_substitution_atom(atom, subst))
        else:
            result.append(
                ComparisonAtom(
                    apply_substitution_term(atom.left, subst),
                    atom.op,
                    apply_substitution_term(atom.right, subst),
                )
            )
    return result


def compose(first: Mapping[Variable, Term], second: Mapping[Variable, Term]) -> Substitution:
    """Compose two substitutions: applying the result equals applying
    ``first`` then ``second``."""
    result: Substitution = {
        var: apply_substitution_term(term, second) for var, term in first.items()
    }
    for var, term in second.items():
        if var not in result:
            result[var] = term
    # Drop identity bindings for cleanliness.
    return {v: t for v, t in result.items() if t != v}


def unify_terms(
    left: Term, right: Term, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or ``None`` if unification fails
    (two distinct constants).
    """
    subst = dict(subst) if subst is not None else {}
    left = apply_substitution_term(left, subst)
    right = apply_substitution_term(right, subst)
    if left == right:
        return subst
    if is_variable(left):
        subst[left] = right  # type: ignore[index]
        return subst
    if is_variable(right):
        subst[right] = left  # type: ignore[index]
        return subst
    return None  # two different constants


def unify_atoms(
    left: Atom, right: Atom, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Compute a most general unifier of two relational atoms.

    Returns ``None`` if the predicates or arities differ or some argument
    pair cannot be unified.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    current: Optional[Substitution] = dict(subst) if subst is not None else {}
    for l_arg, r_arg in zip(left.args, right.args):
        current = unify_terms(l_arg, r_arg, current)
        if current is None:
            return None
    return current


def match_atom(
    pattern: Atom, target: Atom, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """One-way matching: bind only the *pattern's* variables.

    Succeeds iff there is a substitution ``θ`` extending ``subst`` such
    that ``pattern θ == target``.  Variables occurring in ``target`` are
    treated as constants (they may not be bound).
    """
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    result: Substitution = dict(subst) if subst is not None else {}
    for p_arg, t_arg in zip(pattern.args, target.args):
        p_val = apply_substitution_term(p_arg, result)
        if is_variable(p_val):
            result[p_val] = t_arg  # type: ignore[index]
        elif p_val != t_arg:
            return None
    return result


def rename_substitution(
    variables: Iterable[Variable], suffix: str
) -> Substitution:
    """Build a substitution renaming each variable by appending ``suffix``."""
    return {var: Variable(var.name + suffix) for var in variables}


def restrict(subst: Mapping[Variable, Term], variables: Iterable[Variable]) -> Substitution:
    """Restrict a substitution to a set of variables."""
    wanted = set(variables)
    return {v: t for v, t in subst.items() if v in wanted}


def is_variable_renaming(subst: Mapping[Variable, Term]) -> bool:
    """Return ``True`` iff the substitution is an injective map to variables."""
    values = list(subst.values())
    return all(is_variable(v) for v in values) and len(set(values)) == len(values)
