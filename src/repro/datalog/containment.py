"""Conjunctive-query containment, equivalence, and UCQ containment.

Containment is the workhorse of view-based query rewriting: a rewriting is
*contained* in the query (sound) and, for equivalent rewritings, also
contains it.  We implement the classical containment-mapping test for CQs
without comparison predicates, and a sound (complete for the common cases
exercised here) extension for CQs whose comparisons form a conjunction
over a dense order:

``Q2 ⊆ Q1`` iff there is a containment mapping ``h`` from ``Q1`` to ``Q2``
(head to head, body atoms onto body atoms) such that the constraints of
``Q2`` imply the ``h``-image of the constraints of ``Q1``.

For unions of conjunctive queries, ``U2 ⊆ U1`` iff every disjunct of
``U2`` is contained in some disjunct of ``U1`` (Sagiv–Yannakakis).
"""

from __future__ import annotations

from typing import Iterable, Optional

from .atoms import Atom, ComparisonAtom
from .constraints import ConstraintSet
from .homomorphism import find_homomorphisms, head_seed
from .queries import ConjunctiveQuery, UnionQuery
from .terms import Term, Variable, is_variable
from .unify import Substitution, apply_substitution_term


def normalise_equalities(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Apply the query's own equality atoms as a substitution.

    ``Q(x) :- R(x, y), y = 0`` becomes ``Q(x) :- R(x, 0)``: equalities with
    at least one variable side are folded into the atoms (and the head),
    which makes the homomorphism-based containment test complete for
    queries that carry such equalities (rewritings produced by MiniCon/PPL
    reformulation do).  Ground equalities are evaluated: true ones are
    dropped, false ones are kept so the caller can detect unsatisfiability.
    """
    substitution: dict[Variable, Term] = {}
    residual: list = []
    for atom in query.body:
        if isinstance(atom, ComparisonAtom) and atom.op == "=":
            left = apply_substitution_term(atom.left, substitution)
            right = apply_substitution_term(atom.right, substitution)
            if left == right:
                continue
            if is_variable(left):
                substitution[left] = right  # type: ignore[index]
                continue
            if is_variable(right):
                substitution[right] = left  # type: ignore[index]
                continue
            residual.append(atom)  # ground and false (or incomparable): keep
            continue
        residual.append(atom)
    if not substitution:
        return query
    flattened = {
        variable: apply_substitution_term(variable, substitution)
        for variable in substitution
    }
    head = query.head.substitute(flattened)
    body = [atom.substitute(flattened) for atom in residual]
    return ConjunctiveQuery(head, body)


def containment_mapping(
    container: ConjunctiveQuery, contained: ConjunctiveQuery
) -> Optional[Substitution]:
    """Find a containment mapping witnessing ``contained ⊆ container``.

    Returns a homomorphism from ``container``'s body onto ``contained``'s
    body that maps ``container``'s head onto ``contained``'s head, or
    ``None`` if none exists.  Comparison atoms are checked via constraint
    implication under the candidate mapping; equality atoms on either side
    are folded into the atoms first (see :func:`normalise_equalities`).
    """
    container = normalise_equalities(container)
    contained = normalise_equalities(contained)
    # An unsatisfiable contained query denotes the empty result, which is
    # contained in everything.
    if not ConstraintSet(contained.comparison_body()).is_satisfiable():
        return {}
    seed = head_seed(container.head, contained.head)
    if seed is None:
        return None
    contained_constraints = ConstraintSet(contained.comparison_body())
    for hom in find_homomorphisms(
        container.relational_body(), contained.relational_body(), seed
    ):
        mapped = [c.substitute(hom) for c in container.comparison_body()]
        if all(contained_constraints.implies(c) for c in mapped):
            return hom
    return None


def is_contained_in(
    contained: ConjunctiveQuery, container: ConjunctiveQuery
) -> bool:
    """Return ``True`` iff ``contained ⊆ container`` (as query results)."""
    return containment_mapping(container, contained) is not None


def are_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Return ``True`` iff the two CQs are equivalent."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def ucq_is_contained_in(
    contained: UnionQuery | Iterable[ConjunctiveQuery],
    container: UnionQuery | Iterable[ConjunctiveQuery],
) -> bool:
    """Return ``True`` iff every disjunct of ``contained`` is contained in
    some disjunct of ``container`` (Sagiv–Yannakakis criterion for UCQs
    without comparisons; sound in general)."""
    contained_cqs = list(contained)
    container_cqs = list(container)
    return all(
        any(is_contained_in(cq, other) for other in container_cqs)
        for cq in contained_cqs
    )


def cq_subsumed_by_any(
    candidate: ConjunctiveQuery, others: Iterable[ConjunctiveQuery]
) -> bool:
    """Return ``True`` iff ``candidate`` is contained in some query in ``others``.

    Used to drop redundant disjuncts from a union of rewritings: if a
    conjunctive rewriting is contained in another one we already have, it
    contributes no new certain answers.
    """
    return any(is_contained_in(candidate, other) for other in others if other is not candidate)


def remove_redundant_disjuncts(disjuncts: Iterable[ConjunctiveQuery]) -> list[ConjunctiveQuery]:
    """Remove disjuncts that are contained in another disjunct.

    Keeps the first representative of each equivalence class (stable with
    respect to input order), so the result is deterministic.
    """
    kept: list[ConjunctiveQuery] = []
    pending = list(disjuncts)
    for cq in pending:
        if not any(is_contained_in(cq, other) for other in kept):
            # Remove any already-kept disjunct subsumed by the new one.
            kept = [other for other in kept if not is_contained_in(other, cq)]
            kept.append(cq)
    return kept
