"""Conjunctive queries, unions of conjunctive queries, and datalog rules.

The paper's formal setting is select-project-join queries with set
semantics, written as conjunctive queries (CQs):

    Q(X̅) :- R1(X̅1), ..., Rn(X̅n), c1, ..., cm

where the ``ci`` are optional comparison predicates.  A union of
conjunctive queries (UCQ) is a set of CQs with identically named,
same-arity heads.  Datalog rules share the CQ structure but are
interpreted as *definitional mappings* (Section 2.1.2) when their head
relations are peer relations.

These classes are immutable value objects; transformation helpers return
new queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence, Tuple, Union

from ..errors import MalformedQueryError
from .atoms import (
    Atom,
    BodyAtom,
    ComparisonAtom,
    atoms_variables,
    comparison_atoms,
    relational_atoms,
)
from .terms import Constant, FreshVariableFactory, Term, Variable, is_variable


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``head :- body``.

    Parameters
    ----------
    head:
        The head atom.  Its predicate is the query name; its arguments are
        the distinguished terms (variables or constants).
    body:
        Relational and comparison atoms, in order.

    Raises
    ------
    MalformedQueryError
        If a head *variable* does not appear in any relational body atom
        (the classical safety condition), or the body is empty of
        relational atoms while the head contains variables.
    """

    head: Atom
    body: Tuple[BodyAtom, ...]

    def __init__(self, head: Atom, body: Sequence[BodyAtom]):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        self._check_safety()

    # -- construction helpers -------------------------------------------------

    @classmethod
    def create(
        cls,
        name: str,
        head_args: Sequence[Union[Term, str, int, float]],
        body: Sequence[BodyAtom],
    ) -> "ConjunctiveQuery":
        """Build a CQ from a head name, head arguments, and a body."""
        return cls(Atom(name, head_args), body)

    def _check_safety(self) -> None:
        body_vars = atoms_variables(self.relational_body())
        for var in self.head.variables():
            if var not in body_vars:
                raise MalformedQueryError(
                    f"unsafe query: head variable {var} of {self.head.predicate} "
                    f"does not occur in any relational body atom"
                )
        for comp in self.comparison_body():
            for var in comp.variables():
                if var not in body_vars:
                    raise MalformedQueryError(
                        f"unsafe query: comparison variable {var} in {comp} does not "
                        f"occur in any relational body atom"
                    )

    # -- accessors -------------------------------------------------------------

    @property
    def name(self) -> str:
        """The head predicate name."""
        return self.head.predicate

    @property
    def arity(self) -> int:
        """The head arity."""
        return self.head.arity

    def relational_body(self) -> list[Atom]:
        """Relational atoms of the body, in order."""
        return relational_atoms(self.body)

    def comparison_body(self) -> list[ComparisonAtom]:
        """Comparison atoms of the body, in order."""
        return comparison_atoms(self.body)

    def head_variables(self) -> list[Variable]:
        """Distinguished variables (head variables), in head order, no repeats."""
        seen: list[Variable] = []
        for var in self.head.variables():
            if var not in seen:
                seen.append(var)
        return seen

    def body_variables(self) -> frozenset[Variable]:
        """All variables occurring in the body."""
        return atoms_variables(self.body)

    def existential_variables(self) -> frozenset[Variable]:
        """Body variables that are not distinguished."""
        return self.body_variables() - frozenset(self.head_variables())

    def all_variables(self) -> frozenset[Variable]:
        """All variables occurring anywhere in the query."""
        return self.body_variables() | frozenset(self.head.variables())

    def predicates(self) -> frozenset[str]:
        """Names of relations used in the body."""
        return frozenset(a.predicate for a in self.relational_body())

    def has_comparisons(self) -> bool:
        """Return ``True`` iff the body contains comparison atoms."""
        return any(isinstance(a, ComparisonAtom) for a in self.body)

    def has_projection(self) -> bool:
        """Return ``True`` iff some body variable is not in the head.

        Theorem 3.2 of the paper distinguishes *projection-free* equality
        descriptions: those whose queries expose every body variable in
        the head.
        """
        return bool(self.existential_variables())

    def is_single_atom(self) -> bool:
        """Return ``True`` iff the body is a single relational atom and nothing else."""
        return len(self.body) == 1 and isinstance(self.body[0], Atom)

    # -- transformations -------------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to head and body (not capture-avoiding)."""
        return ConjunctiveQuery(
            self.head.substitute(mapping),
            tuple(a.substitute(mapping) for a in self.body),
        )

    def rename_apart(
        self, fresh: FreshVariableFactory, keep: Iterable[Variable] = ()
    ) -> "ConjunctiveQuery":
        """Rename all variables except ``keep`` to fresh ones.

        Used when a mapping body is inlined into a larger query and its
        existential variables must not collide with anything already
        present (paper, Section 4.2, definitional expansion).
        """
        keep_set = set(keep)
        mapping: dict[Variable, Term] = {}
        for var in sorted(self.all_variables()):
            if var not in keep_set:
                mapping[var] = fresh(var.name + "_")
        return self.substitute(mapping)

    def with_body(self, body: Sequence[BodyAtom]) -> "ConjunctiveQuery":
        """Return a copy of the query with a different body."""
        return ConjunctiveQuery(self.head, body)

    def with_head(self, head: Atom) -> "ConjunctiveQuery":
        """Return a copy of the query with a different head."""
        return ConjunctiveQuery(head, self.body)

    def add_body_atoms(self, atoms: Sequence[BodyAtom]) -> "ConjunctiveQuery":
        """Return a copy of the query with extra body atoms appended."""
        return ConjunctiveQuery(self.head, self.body + tuple(atoms))

    def freeze(self) -> "ConjunctiveQuery":
        """Return this query (CQs are already immutable); kept for API symmetry."""
        return self

    # -- display ---------------------------------------------------------------

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{self.head} :- {body}" if body else f"{self.head} :- true"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries with compatible heads.

    All disjuncts must share the same head predicate name and arity.  A
    UCQ with zero disjuncts is permitted and denotes the empty answer; its
    name/arity are recorded explicitly in that case.
    """

    name: str
    arity: int
    disjuncts: Tuple[ConjunctiveQuery, ...] = field(default=())

    def __init__(
        self,
        disjuncts: Sequence[ConjunctiveQuery] = (),
        name: str | None = None,
        arity: int | None = None,
    ):
        disjuncts = tuple(disjuncts)
        if disjuncts:
            inferred_name = disjuncts[0].name
            inferred_arity = disjuncts[0].arity
            for cq in disjuncts:
                if cq.name != inferred_name or cq.arity != inferred_arity:
                    raise MalformedQueryError(
                        "all disjuncts of a union query must share the same head "
                        f"name and arity; got {cq.name}/{cq.arity} vs "
                        f"{inferred_name}/{inferred_arity}"
                    )
            name = inferred_name if name is None else name
            arity = inferred_arity if arity is None else arity
        if name is None or arity is None:
            raise MalformedQueryError(
                "an empty union query must specify name and arity explicitly"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arity", arity)
        object.__setattr__(self, "disjuncts", disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def is_empty(self) -> bool:
        """Return ``True`` iff the union has no disjuncts."""
        return not self.disjuncts

    def predicates(self) -> frozenset[str]:
        """All body relation names used across disjuncts."""
        result: set[str] = set()
        for cq in self.disjuncts:
            result.update(cq.predicates())
        return frozenset(result)

    def add(self, cq: ConjunctiveQuery) -> "UnionQuery":
        """Return a new union with ``cq`` appended."""
        return UnionQuery(self.disjuncts + (cq,), name=self.name, arity=self.arity)

    def __str__(self) -> str:
        if not self.disjuncts:
            return f"{self.name}/{self.arity} :- false"
        return "\n".join(str(cq) for cq in self.disjuncts)

    def __repr__(self) -> str:
        return f"UnionQuery({len(self.disjuncts)} disjuncts of {self.name}/{self.arity})"


class DatalogRule(ConjunctiveQuery):
    """A datalog rule; structurally identical to a conjunctive query.

    The distinction is one of interpretation: a rule's head predicate is
    *defined* by the rule (possibly together with other rules sharing the
    head predicate), whereas a query's head predicate is the query name.
    """

    def __repr__(self) -> str:
        return f"DatalogRule({self})"


@dataclass(frozen=True)
class DatalogProgram:
    """A set of datalog rules plus a distinguished query predicate.

    The program may be recursive.  :mod:`repro.datalog.evaluation` runs
    semi-naive evaluation over an extensional database.
    """

    rules: Tuple[DatalogRule, ...]
    query_predicate: str

    def __init__(self, rules: Sequence[ConjunctiveQuery], query_predicate: str):
        converted = tuple(
            r if isinstance(r, DatalogRule) else DatalogRule(r.head, r.body)
            for r in rules
        )
        object.__setattr__(self, "rules", converted)
        object.__setattr__(self, "query_predicate", query_predicate)

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by some rule head (intensional predicates)."""
        return frozenset(r.name for r in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates used in bodies but never defined (extensional predicates)."""
        idb = self.idb_predicates()
        result: set[str] = set()
        for rule in self.rules:
            result.update(p for p in rule.predicates() if p not in idb)
        return frozenset(result)

    def rules_for(self, predicate: str) -> list[DatalogRule]:
        """All rules whose head predicate is ``predicate``."""
        return [r for r in self.rules if r.name == predicate]

    def is_recursive(self) -> bool:
        """Return ``True`` iff the predicate dependency graph has a cycle."""
        idb = self.idb_predicates()
        edges: dict[str, set[str]] = {p: set() for p in idb}
        for rule in self.rules:
            edges[rule.name].update(p for p in rule.predicates() if p in idb)
        # Depth-first cycle detection.
        WHITE, GREY, BLACK = 0, 1, 2
        color = {p: WHITE for p in idb}

        def visit(node: str) -> bool:
            color[node] = GREY
            for succ in edges[node]:
                if color[succ] == GREY:
                    return True
                if color[succ] == WHITE and visit(succ):
                    return True
            color[node] = BLACK
            return False

        return any(color[p] == WHITE and visit(p) for p in idb)

    def __iter__(self) -> Iterator[DatalogRule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)


def head_atom(name: str, variables: Sequence[str]) -> Atom:
    """Convenience: build a head atom from a name and variable names."""
    return Atom(name, [Variable(v) for v in variables])


def make_chain_query(
    name: str,
    predicates: Sequence[str],
    fresh_prefix: str = "c",
) -> ConjunctiveQuery:
    """Build a *chain query* over ``predicates``.

    Chain queries are the mapping bodies used by the paper's workload
    generator (Section 5): ``Q(x0, xn) :- P1(x0, x1), P2(x1, x2), ...``.
    Each predicate is assumed binary.
    """
    if not predicates:
        raise MalformedQueryError("a chain query needs at least one predicate")
    variables = [Variable(f"{fresh_prefix}{i}") for i in range(len(predicates) + 1)]
    body = [
        Atom(pred, [variables[i], variables[i + 1]]) for i, pred in enumerate(predicates)
    ]
    head = Atom(name, [variables[0], variables[-1]])
    return ConjunctiveQuery(head, body)
