"""Shared union-plan IR: compile a reformulation into a common-subplan DAG.

The reformulation algorithm (Section 4 of the paper) emits a union of
conjunctive rewritings assembled from *one* rule-goal tree, so rewritings
overwhelmingly share sub-conjunctions: sibling rewritings differ in the
storage description chosen for one goal while agreeing on every other
stored atom.  Evaluating each rewriting from scratch therefore recomputes
the same joins over and over.  This module compiles a
:class:`~repro.pdms.reformulation.ReformulationResult` into a **union
plan**: a DAG of hash-consed, canonically named sub-conjunction fragments
shared across rewritings, with per-rewriting selection/projection roots on
top.

Sharing model
-------------
Each rewriting's relational atoms are folded into a tree of
:class:`ScanFragment` / :class:`JoinFragment` nodes.  Every fragment is
keyed by the *canonical rendering* of its atom multiset — atoms committed
in greedy-lexicographic canonical order, variables positionally renamed,
constants and repeated-variable equalities spelled out — so
alpha-equivalent sub-conjunctions from different rewritings hash to the
same node regardless of the join tree that first built them, and each
shared fragment's result table is computed **once per execution** and
reused by every rewriting containing it.

Two tree shapes are supported.  The default is **bushy**: groups of atoms
are merged pairwise bottom-up (greedy-operator-ordering style), preferring
merges whose canonical key already exists in the plan's node table, then
the smallest estimated join output per the stats-driven
:class:`~repro.database.planner.CardinalityCostModel`.  Sub-conjunctions
of *any* shape — not just cost-order prefixes — are therefore shared
across rewritings.  ``bushy=False`` keeps the PR 3 behaviour (left-deep
cost-ordered chains, sharing restricted to common prefixes) for
comparison; both shapes produce identical answers.

Execution
---------
:func:`stream_plan_answers` evaluates fragments against any fact source
(upgraded to an :class:`~repro.datalog.indexing.IndexedFactSource` so leaf
scans probe hash indexes) with a compute-once memo; rewriting roots can be
evaluated on an optional thread pool (``max_workers``) while the answer
iterator keeps the first-k streaming contract: consuming a prefix never
forces the remaining fragments.  Compilation itself is incremental — the
plan ingests rewritings lazily from the (memoized, thread-safe) rewriting
stream, so a ``limit=k`` call compiles only the prefix it evaluates.

A :class:`~repro.pdms.materialization.FragmentCache` (optional ``cache``
argument) adds a second memo level that persists **across** calls: each
fragment's table is keyed by its canonical key plus the data-version
token of the relations it reads, so repeated queries over unchanged data
reuse materialised fragments and a write to one predicate invalidates
only the fragments that read it.

See ``docs/execution.md`` for the architecture notes.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..config import columnar_enabled, shared_executor
from ..config import shared_workers as _config_shared_workers
from ..database.algebra import Table
from ..database.columnar import ColumnTable, compare_cols_mask, compare_mask
from ..database.columnar import _mask_and as _combine_masks
from ..database.columnar import _pylist
from ..database.feedback import QErrorLog
from ..database.planner import CardinalityCostModel
from ..datalog.atoms import Atom, compare_values
from ..datalog.evaluation import FactsLike, as_fact_source
from ..datalog.indexing import WILDCARD, ensure_indexed
from ..datalog.queries import ConjunctiveQuery
from ..datalog.terms import Variable, is_variable
from ..errors import EvaluationError
from ..obs.trace import current_span
from .materialization import FragmentCache, data_version_token, result_row_count
from .reformulation import ReformulationResult, _LazySeq

Row = Tuple[object, ...]

#: A compiled comparison/head operand: ("col", canonical column name) or
#: ("const", plain value).
Operand = Tuple[str, object]


# ---------------------------------------------------------------------------
# Plan fragments (the DAG nodes)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScanFragment:
    """A leaf: one stored-relation scan in its single-atom canonical form.

    ``pattern`` holds one entry per relation position — a constant the row
    must carry there, or :data:`~repro.datalog.indexing.WILDCARD` — and is
    probed through ``get_matching`` so constants use hash indexes.
    ``equal_positions`` are repeated-variable equalities;
    ``keep_positions`` are the positions projected into ``columns`` (the
    first occurrence of each variable).
    """

    key: str
    relation: str
    pattern: Tuple[object, ...]
    equal_positions: Tuple[Tuple[int, int], ...]
    keep_positions: Tuple[int, ...]
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class JoinFragment:
    """An interior node: two child fragments joined on their shared variables.

    ``left_key``/``right_key`` name child fragments in the plan's node
    table.  Each child's columns are renamed into this node's canonical
    namespace (``left_rename``/``right_rename``: child column -> this
    namespace) before the natural join; the result is projected to
    ``columns``.  In left-deep chains the left child already shares the
    parent namespace, so ``left_rename`` stays empty (identity); bushy
    nodes rename both children.
    """

    key: str
    left_key: str
    right_key: str
    right_rename: Tuple[Tuple[str, str], ...]
    columns: Tuple[str, ...]
    left_rename: Tuple[Tuple[str, str], ...] = ()


PlanFragment = Union[ScanFragment, JoinFragment]


@dataclass(frozen=True)
class RewritingPlan:
    """The per-rewriting root: comparisons + head projection over a fragment."""

    rewriting: ConjunctiveQuery
    root_key: str
    comparisons: Tuple[Tuple[Operand, str, Operand], ...]
    head: Tuple[Operand, ...]


@dataclass
class PlanStatistics:
    """How much structure the plan shares across its compiled rewritings."""

    rewritings: int = 0
    unique_fragments: int = 0
    fragment_references: int = 0

    @property
    def reused_references(self) -> int:
        """Fragment references served by an already-built node."""
        return self.fragment_references - self.unique_fragments

    @property
    def sharing_ratio(self) -> float:
        """Fraction of fragment references that reuse a shared node."""
        if not self.fragment_references:
            return 0.0
        return self.reused_references / self.fragment_references


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

def _atom_sort_key(atom: Atom, cost: Optional[CardinalityCostModel]):
    pattern = tuple(
        ("c", repr(arg.value)) if not is_variable(arg) else ("v",)
        for arg in atom.args
    )
    estimate = cost.atom_estimate(atom) if cost is not None else 0
    return (estimate, atom.predicate, atom.arity, pattern)


def _render_atom(
    atom: Atom, namespace: Dict[Variable, str]
) -> Tuple[str, Dict[Variable, str]]:
    """Canonical rendering of ``atom`` in (a copy of) ``namespace``.

    Unseen variables are assigned the next positional names; the possibly
    extended namespace is returned alongside the rendering so callers can
    either commit it (when the atom is chosen) or discard it (when merely
    scoring a candidate).
    """
    local = dict(namespace)
    parts: List[str] = []
    for arg in atom.args:
        if is_variable(arg):
            name = local.get(arg)
            if name is None:
                name = local[arg] = f"_f{len(local)}"
            parts.append(name)
        else:
            parts.append(repr(arg.value))
    return f"{atom.predicate}({','.join(parts)})", local


#: Total extra branches one canonicalization may spend exploring rendering
#: ties.  Ties are rare outside pathologically symmetric bodies (several
#: atoms of one predicate over pairwise-fresh variables); the budget keeps
#: those worst cases linear instead of factorial while typical bodies
#: still canonicalise exactly.
_TIE_BRANCH_BUDGET = 16


def _canonical_parts(
    atoms: Sequence[Atom],
    namespace: Dict[Variable, str],
    budget: Optional[List[int]] = None,
) -> Tuple[Tuple[str, ...], Dict[Variable, str]]:
    """Order-independent canonical rendering of an atom multiset.

    Atoms are committed greedily: at each step the atom whose rendering in
    the namespace-so-far is lexicographically smallest goes next; ties —
    several atoms rendering identically — are explored and the smallest
    complete rendering wins, up to :data:`_TIE_BRANCH_BUDGET` extra
    branches per top-level call (beyond the budget the first tied atom is
    taken, trading a little sharing on symmetric bodies for bounded
    work).  Alpha-equivalent multisets therefore produce the same parts
    tuple whatever order the atoms arrived in, which is what lets bushy
    merge trees built along different paths hash-cons to one node.  The
    returned namespace maps every variable of ``atoms`` to its canonical
    column name.
    """
    if not atoms:
        return (), dict(namespace)
    if budget is None:
        budget = [_TIE_BRANCH_BUDGET]
    rendered = [
        (_render_atom(atom, namespace), index) for index, atom in enumerate(atoms)
    ]
    best = min(entry[0][0] for entry in rendered)
    tied = [
        (extended, index)
        for (rendering, extended), index in rendered
        if rendering == best
    ]
    if len(tied) > 1:
        affordable = 1 + max(budget[0], 0)
        tied = tied[:affordable]
        budget[0] -= len(tied) - 1
    options = []
    for extended, index in tied:
        rest = tuple(atoms[:index]) + tuple(atoms[index + 1:])
        rest_parts, final = _canonical_parts(rest, extended, budget)
        options.append(((best,) + rest_parts, final))
    return min(options, key=lambda option: option[0])


def _conjunction_key(parts: Sequence[str]) -> str:
    return " & ".join(parts)


class _Group:
    """One sub-conjunction being assembled during bushy compilation.

    Tracks the committed fragment (``key``), the mapping from the
    rewriting's variables to the fragment's canonical columns
    (``varmap``), the atom multiset, and cheap cost-model summaries: the
    estimated row count and an estimated distinct count per variable
    (both 0 when no cost model steers compilation).  ``shared`` records
    whether the fragment already existed before this group touched it —
    i.e. another rewriting (or an earlier occurrence) referenced it — the
    signal the merge ordering uses to build join pairs that recur across
    the union instead of pairs involving a rewriting-unique atom.
    """

    __slots__ = (
        "key", "columns", "varmap", "atoms", "estimate", "distinct", "shared",
    )

    def __init__(self, key, columns, varmap, atoms, estimate, distinct, shared):
        self.key = key
        self.columns = columns
        self.varmap = varmap
        self.atoms = atoms
        self.estimate = estimate
        self.distinct = distinct
        self.shared = shared


class UnionPlan:
    """A shared execution plan for the union of rewritings of one result.

    Rewritings are compiled incrementally from ``result.rewritings()`` the
    first time :meth:`fragments` reaches them, each into a left-deep chain
    over the hash-consed node table ``nodes``; already-compiled prefixes
    are reused across rewritings and across calls.  Thread-safe: several
    executions may iterate :meth:`fragments` concurrently.
    """

    def __init__(
        self,
        result: ReformulationResult,
        cost: Optional[CardinalityCostModel] = None,
        bushy: bool = True,
        feedback: Optional[QErrorLog] = None,
    ):
        self.result = result
        self.nodes: Dict[str, PlanFragment] = {}
        self.stats = PlanStatistics()
        self.bushy = bushy
        self.feedback = feedback
        #: Per-fragment estimated row counts as used by this compilation —
        #: after any feedback corrections, so executors can score the plan
        #: against reality and a converged plan measures q-errors near 1.
        self.estimates: Dict[str, float] = {}
        self._cost = cost
        self._relations_cache: Dict[str, FrozenSet[str]] = {}
        self._scans_cache: Dict[str, Tuple[Tuple[str, Tuple[object, ...]], ...]] = {}
        # _LazySeq serialises advancement under its lock, so node-table
        # mutation inside _compile_rewriting is single-threaded even when
        # several executions iterate fragments() concurrently.
        self._compiled = _LazySeq(
            self._compile_rewriting(rewriting)
            for rewriting in result.rewritings()
        )

    # -- compilation (incremental) ---------------------------------------------

    def fragments(self) -> Iterator[RewritingPlan]:
        """Yield one :class:`RewritingPlan` per rewriting, compiling lazily.

        Backed by the same thread-safe memoized-stream machinery as the
        rewriting enumeration itself; each rewriting is compiled exactly
        once, on first reach.
        """
        return iter(self._compiled)

    def _scan_fragment(self, atom: Atom) -> ScanFragment:
        """The hash-consed leaf for one atom (single-atom canonical form)."""
        first_position: Dict[Variable, int] = {}
        pattern: List[object] = []
        equal_positions: List[Tuple[int, int]] = []
        keep_positions: List[int] = []
        for position, arg in enumerate(atom.args):
            if is_variable(arg):
                earlier = first_position.get(arg)
                if earlier is None:
                    first_position[arg] = position
                    keep_positions.append(position)
                else:
                    equal_positions.append((earlier, position))
                pattern.append(WILDCARD)
            else:
                pattern.append(arg.value)
        # The key comes from the one canonical renderer, so the
        # reuse-aware ordering's key previews always match committed keys.
        key, _ = _render_atom(atom, {})
        node = self.nodes.get(key)
        if node is None:
            node = ScanFragment(
                key=key,
                relation=atom.predicate,
                pattern=tuple(pattern),
                equal_positions=tuple(equal_positions),
                keep_positions=tuple(keep_positions),
                columns=tuple(f"_f{i}" for i in range(len(keep_positions))),
            )
            self.nodes[key] = node
            self.stats.unique_fragments += 1
        self.stats.fragment_references += 1
        return node

    def fragment_relations(self, key: str) -> FrozenSet[str]:
        """The base relations fragment ``key`` reads (transitively).

        This is the fragment's invalidation footprint: its cached table is
        stale exactly when one of these relations' data versions moved.
        """
        cached = self._relations_cache.get(key)
        if cached is None:
            node = self.nodes[key]
            if isinstance(node, ScanFragment):
                cached = frozenset((node.relation,))
            else:
                cached = self.fragment_relations(node.left_key) | (
                    self.fragment_relations(node.right_key)
                )
            self._relations_cache[key] = cached
        return cached

    def scan_requests(
        self, key: str, shard_map: Optional[object] = None
    ) -> Tuple[Tuple[object, ...], ...]:
        """The stored-relation scans under fragment ``key`` (transitively).

        One ``(relation, pattern)`` pair per distinct
        :class:`ScanFragment` leaf, in DAG order.  This is the fragment's
        *wire footprint*: a distributed executor can issue exactly these
        scans — batched per owning peer, concurrently — before evaluating
        the fragment, so the joins above never block on a remote probe.

        With a ``shard_map`` (see :mod:`repro.pdms.distributed.sharding`)
        each request becomes ``(relation, pattern, owners)`` where
        ``owners`` is the peer group a constant bound on the partition
        column prunes the scan to, or ``None`` when the relation is
        unsharded or the pattern leaves the partition column unbound —
        those scans must still fan out to every shard to stay sound.
        """
        cached = self._scans_cache.get(key)
        if cached is None:
            node = self.nodes[key]
            if isinstance(node, ScanFragment):
                cached = ((node.relation, node.pattern),)
            else:
                merged = list(self.scan_requests(node.left_key))
                seen = set(merged)
                for request in self.scan_requests(node.right_key):
                    if request not in seen:
                        seen.add(request)
                        merged.append(request)
                cached = tuple(merged)
            self._scans_cache[key] = cached
        if shard_map is None:
            return cached
        return tuple(
            (relation, pattern, shard_map.owners_for_pattern(relation, pattern))
            for relation, pattern in cached
        )

    # -- feedback corrections ----------------------------------------------

    def _apply_correction(
        self,
        key: str,
        relations: FrozenSet[str],
        fallback: float,
        count: bool = True,
    ) -> float:
        """``key``'s observed cardinality if a valid correction is held.

        Falls back to the model's ``fallback`` estimate whenever the
        feedback log holds nothing for the fragment, the correction was
        observed at a different data version, or no current version token
        can be computed (frozen/source-less cost model, unversioned
        source).  ``count=False`` suppresses the corrections-applied
        counter for speculative lookups (candidate scoring previews).
        """
        feedback = self.feedback
        if feedback is None or self._cost is None:
            return fallback
        source = self._cost.live_source()
        if source is None:
            return fallback
        token = data_version_token(source, relations)
        if token is None:
            return fallback
        actual = feedback.correction(key, token)
        if actual is None:
            return fallback
        if count:
            feedback.note_applied()
        return float(actual)

    def estimated_cost(self) -> float:
        """The plan's total estimated fragment output, corrections applied.

        Forces full compilation, then sums one (corrected) row estimate
        per unique fragment node.  Because corrections are keyed by
        canonical fragment key, a champion whose blown fragment has since
        been measured re-costs *high* here while a challenger avoiding
        that fragment does not — which is exactly the comparison the
        racing policy needs.  Every fragment contributes at least 1.
        """
        for _ in self.fragments():
            pass
        total = 0.0
        for key in self.nodes:
            fallback = self.estimates.get(key, 1.0)
            corrected = self._apply_correction(
                key, self.fragment_relations(key), fallback, count=False
            )
            total += max(corrected, 1.0)
        return total

    def _compile_rewriting(self, rewriting: ConjunctiveQuery) -> RewritingPlan:
        atoms = rewriting.relational_body()
        if not atoms:
            raise EvaluationError(
                "cannot compile a rewriting with no relational atoms"
            )
        if self.bushy:
            root = self._compile_bushy(atoms)
            return self._finish_rewriting(rewriting, root.key, root.varmap)
        return self._compile_left_deep(rewriting)

    # -- bushy compilation -------------------------------------------------

    def _leaf_group(self, atom: Atom) -> _Group:
        """A single-atom group over the (hash-consed) scan fragment."""
        key, varmap = _render_atom(atom, {})
        shared = key in self.nodes
        node = self._scan_fragment(atom)
        estimate = 0.0
        distinct: Dict[Variable, float] = {}
        if self._cost is not None:
            estimate = float(self._cost.atom_estimate(atom))
            estimate = self._apply_correction(
                node.key, frozenset((atom.predicate,)), estimate
            )
            first_position: Dict[Variable, int] = {}
            for position, arg in enumerate(atom.args):
                if is_variable(arg) and arg not in first_position:
                    first_position[arg] = position
            for variable, position in first_position.items():
                distinct[variable] = min(
                    float(self._cost.column_distinct(atom.predicate, position)),
                    max(estimate, 1.0),
                )
        self.estimates[node.key] = estimate
        return _Group(
            key=node.key,
            columns=node.columns,
            varmap=varmap,
            atoms=(atom,),
            estimate=estimate,
            distinct=distinct,
            shared=shared,
        )

    def _join_estimate(self, left: _Group, right: _Group) -> float:
        """Estimated output rows of joining two groups (0 without a model)."""
        if self._cost is None:
            return 0.0
        estimate = max(left.estimate, 1.0) * max(right.estimate, 1.0)
        for variable in left.varmap.keys() & right.varmap.keys():
            estimate /= max(
                left.distinct.get(variable, 1.0),
                right.distinct.get(variable, 1.0),
                1.0,
            )
        return estimate

    def _merge_groups(
        self,
        left: _Group,
        right: _Group,
        key: str,
        namespace: Dict[Variable, str],
    ) -> _Group:
        """Commit the join of two groups as a (hash-consed) fragment node."""
        columns = tuple(f"_f{i}" for i in range(len(namespace)))
        node = self.nodes.get(key)
        shared = node is not None
        if node is None:
            node = JoinFragment(
                key=key,
                left_key=left.key,
                right_key=right.key,
                left_rename=tuple(
                    sorted((left.varmap[v], namespace[v]) for v in left.varmap)
                ),
                right_rename=tuple(
                    sorted((right.varmap[v], namespace[v]) for v in right.varmap)
                ),
                columns=columns,
            )
            self.nodes[key] = node
            self.stats.unique_fragments += 1
        self.stats.fragment_references += 1
        estimate = self._join_estimate(left, right)
        if self._cost is not None:
            estimate = self._apply_correction(
                key,
                frozenset(a.predicate for a in left.atoms + right.atoms),
                estimate,
            )
        self.estimates[key] = estimate
        distinct: Dict[Variable, float] = {}
        if self._cost is not None:
            for variable in namespace:
                candidates = [
                    group.distinct[variable]
                    for group in (left, right)
                    if variable in group.distinct
                ]
                distinct[variable] = min(min(candidates), max(estimate, 1.0))
        return _Group(
            key=key,
            columns=node.columns,
            varmap=dict(namespace),
            atoms=left.atoms + right.atoms,
            estimate=estimate,
            distinct=distinct,
            shared=shared,
        )

    def _compile_bushy(self, atoms: Sequence[Atom]) -> _Group:
        """Fold a rewriting's atoms into a bushy tree of shared fragments.

        Greedy-operator-ordering over groups: repeatedly merge the pair of
        connected groups (falling back to a cross product only when
        nothing is connected) preferring, in order: a pair whose merged
        canonical key already exists in the node table (its table will
        come from the memo or the cross-call cache); a pair of two
        *shared* groups — fragments other rewritings already referenced,
        so the merge is likely to recur across the union; then the
        smallest estimated join output.  The first rewriting merges in
        pure cost order; later rewritings snap to the shared groups it
        (and the cost ties) established, which is what turns shared
        sub-conjunctions of *any* shape into shared fragments.
        """
        groups = [self._leaf_group(atom) for atom in atoms]
        # Pair previews survive across merge rounds, so each surviving
        # pair is canonicalised once per rewriting, not once per round.
        # Keyed by group identity (not fragment key — two groups may share
        # a key yet bind different rewriting variables); `created` pins
        # every group so ids stay unique for the compile's duration.
        previews: Dict[Tuple[int, int], Tuple[str, Dict[Variable, str]]] = {}
        created = list(groups)

        def preview(left: _Group, right: _Group):
            pair_key = (id(left), id(right))
            cached = previews.get(pair_key)
            if cached is None:
                parts, namespace = _canonical_parts(left.atoms + right.atoms, {})
                cached = previews[pair_key] = (_conjunction_key(parts), namespace)
            return cached

        while len(groups) > 1:
            connected = [
                (i, j)
                for i in range(len(groups))
                for j in range(i + 1, len(groups))
                if groups[i].varmap.keys() & groups[j].varmap.keys()
            ]
            candidates = connected or [
                (i, j)
                for i in range(len(groups))
                for j in range(i + 1, len(groups))
            ]

            def score(pair: Tuple[int, int]):
                i, j = pair
                key, _ = preview(groups[i], groups[j])
                exists = 0 if key in self.nodes else 1
                both_shared = 0 if groups[i].shared and groups[j].shared else 1
                estimate = self._join_estimate(groups[i], groups[j])
                if self.feedback is not None:
                    estimate = self._apply_correction(
                        key,
                        frozenset(
                            a.predicate
                            for a in groups[i].atoms + groups[j].atoms
                        ),
                        estimate,
                        count=False,
                    )
                return (
                    exists,
                    both_shared,
                    estimate,
                    key,
                    pair,
                )

            i, j = min(candidates, key=score)
            merged = self._merge_groups(
                groups[i], groups[j], *preview(groups[i], groups[j])
            )
            created.append(merged)
            groups = [g for k, g in enumerate(groups) if k not in (i, j)]
            groups.append(merged)
        return groups[0]

    def _finish_rewriting(
        self,
        rewriting: ConjunctiveQuery,
        root_key: str,
        canonical: Dict[Variable, str],
    ) -> RewritingPlan:
        """Wrap a compiled root fragment in the per-rewriting plan."""

        def operand(term) -> Operand:
            if is_variable(term):
                return ("col", canonical[term])
            return ("const", term.value)

        comparisons = tuple(
            (operand(comp.left), comp.op, operand(comp.right))
            for comp in rewriting.comparison_body()
        )
        head = tuple(operand(term) for term in rewriting.head.args)
        self.stats.rewritings += 1
        return RewritingPlan(
            rewriting=rewriting,
            root_key=root_key,
            comparisons=comparisons,
            head=head,
        )

    # -- left-deep compilation (the PR 3 shape, kept for comparison) --------

    def _compile_left_deep(self, rewriting: ConjunctiveQuery) -> RewritingPlan:
        remaining = list(enumerate(rewriting.relational_body()))
        # Canonical names in the rewriting's prefix namespace, assigned at
        # first occurrence along the chosen atom order.  Because first
        # occurrences over a prefix do not change when the prefix grows,
        # these names are stable across prefix extension — shared prefixes
        # of different rewritings render (and hash) identically.
        canonical: Dict[Variable, str] = {}
        root_key: Optional[str] = None
        prefix_columns: Tuple[str, ...] = ()

        while remaining:
            # Reuse-aware cost ordering: among connected candidates, prefer
            # the extension whose prefix fragment already exists in the
            # node table (its sub-result will come from the memo), then the
            # smallest estimated scan.  The first rewriting thus compiles
            # in pure cost order and later rewritings follow the prefixes
            # it (and the cost ties) established — this is what turns
            # shared subgoals into shared plan fragments.
            def score(pair):
                index, atom = pair
                rendered, _ = _render_atom(atom, canonical)
                key = rendered if root_key is None else f"{root_key} & {rendered}"
                exists = 0 if key in self.nodes else 1
                return (exists,) + _atom_sort_key(atom, self._cost) + (index,)

            if root_key is not None:
                bound = set(canonical)
                connected = [p for p in remaining if p[1].variable_set() & bound]
                pool = connected or remaining
            else:
                pool = remaining
            chosen = min(pool, key=score)
            remaining.remove(chosen)
            atom = chosen[1]

            leaf = self._scan_fragment(atom)
            rendered, extended = _render_atom(atom, canonical)
            if root_key is None:
                # For the first atom the prefix namespace coincides with
                # the leaf's single-atom namespace.
                canonical = extended
                root_key = leaf.key
                prefix_columns = leaf.columns
                continue
            targets = tuple(
                extended[atom.args[position]] for position in leaf.keep_positions
            )
            canonical = extended
            key = f"{root_key} & {rendered}"
            node = self.nodes.get(key)
            if node is None:
                columns = prefix_columns + tuple(
                    t for t in targets if t not in prefix_columns
                )
                node = JoinFragment(
                    key=key,
                    left_key=root_key,
                    right_key=leaf.key,
                    right_rename=tuple(zip(leaf.columns, targets)),
                    columns=columns,
                )
                self.nodes[key] = node
                self.stats.unique_fragments += 1
            self.stats.fragment_references += 1
            root_key = key
            prefix_columns = node.columns

        return self._finish_rewriting(rewriting, root_key, canonical)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"UnionPlan({s.rewritings} rewritings, {s.unique_fragments} fragments, "
            f"{s.reused_references} reused refs)"
        )


def compile_reformulation(
    result: ReformulationResult,
    data: Optional[FactsLike] = None,
    cost: Optional[CardinalityCostModel] = None,
    bushy: bool = True,
    feedback: Optional[QErrorLog] = None,
) -> UnionPlan:
    """Compile ``result`` into a (lazily populated) shared union plan.

    ``data`` (or a prebuilt ``cost`` model) steers the cost-based join
    order; without either the canonical atom order is used.  The plan stays
    correct if the data later changes — only join-order quality is tied to
    the statistics seen at compile time.  ``bushy=False`` restricts
    sharing to left-deep cost-order prefixes (the PR 3 shape, kept for
    comparison benchmarks).  ``feedback`` (optional) supplies a
    :class:`~repro.database.feedback.QErrorLog` whose version-scoped
    cardinality corrections override the model's estimates during join
    ordering (see ``docs/adaptivity.md``).
    """
    if cost is None and data is not None:
        cost = CardinalityCostModel(data)
    return UnionPlan(result, cost, bushy=bushy, feedback=feedback)


_ENSURE_LOCK = threading.Lock()


def ensure_plan(
    result: ReformulationResult, data: Optional[FactsLike] = None
) -> UnionPlan:
    """The compiled plan for ``result``, built once and cached on it.

    The plan is attached to the result object itself, so its lifetime —
    and therefore its invalidation — exactly tracks the result's: a
    service cache that evicts the reformulation on a provenance signal
    drops the compiled plan with it.
    """
    plan = result._shared_plan
    if plan is None:
        with _ENSURE_LOCK:
            plan = result._shared_plan
            if plan is None:
                # Pinless cost model: the plan outlives this call, and it
                # must neither pin the data source (removed peers'
                # instances, one-off overrides) in memory for the cache
                # entry's lifetime nor pay an eager full-relation scan —
                # stats are read lazily through a weak reference while the
                # source lives.
                cost = (
                    CardinalityCostModel.pinless(data) if data is not None else None
                )
                plan = UnionPlan(result, cost)
                result._shared_plan = plan
    return plan  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

class _OnceMap:
    """A compute-once table memo safe under concurrent fragment evaluation.

    The first caller of a key computes it; concurrent callers block on an
    event and read the stored value (or re-raise the stored error).  Waits
    only ever go *down* the fragment DAG, so there is no deadlock.
    """

    __slots__ = ("_lock", "_values", "_pending")

    def __init__(self):
        self._lock = threading.Lock()
        self._values: Dict[str, Tuple[str, object]] = {}
        self._pending: Dict[str, threading.Event] = {}

    def get_or_compute(self, key: str, compute) -> Table:
        while True:
            with self._lock:
                entry = self._values.get(key)
                if entry is not None:
                    kind, value = entry
                    break
                event = self._pending.get(key)
                if event is None:
                    self._pending[key] = threading.Event()
                    event = None
            if event is None:
                entry = None
                try:
                    value = compute()
                    entry = ("table", value)
                except Exception as exc:
                    entry = ("error", exc)
                except BaseException:
                    # Mirror _LazySeq: an interrupt must not be cached and
                    # re-raised at sibling waiters as a stale Ctrl-C; they
                    # get a fresh, diagnosable error instead while the
                    # interrupt propagates to the interrupted thread.
                    entry = ("error", EvaluationError(
                        "fragment evaluation was interrupted before completing"
                    ))
                    raise
                finally:
                    with self._lock:
                        self._values[key] = entry
                        self._pending.pop(key).set()
                kind, value = entry
                break
            event.wait()
        if kind == "error":
            raise value  # type: ignore[misc]
        return value  # type: ignore[return-value]


def _scan_table(node: ScanFragment, source) -> Table:
    try:
        candidates = source.get_matching(node.relation, node.pattern)
    except ValueError as exc:
        raise EvaluationError(f"relation {node.relation!r}: {exc}") from exc
    rows: List[Row] = []
    for row in candidates:
        if any(row[i] != row[j] for i, j in node.equal_positions):
            continue
        rows.append(tuple(row[p] for p in node.keep_positions))
    return Table(node.columns, rows)


def _scan_columnar(node: ScanFragment, source) -> ColumnTable:
    """Columnar scan: transpose matching rows once, filter and project in
    batch.  This is the only transpose of the columnar fragment pipeline —
    everything above stays column-wise."""
    try:
        candidates = source.get_matching(node.relation, node.pattern)
    except ValueError as exc:
        raise EvaluationError(f"relation {node.relation!r}: {exc}") from exc
    # Dedup like the row path's frozenset (federated sources may serve the
    # same fact from several peers); fragments above preserve distinctness.
    rows = list(dict.fromkeys(candidates))
    width = len(node.pattern)
    ct = ColumnTable.from_rows(tuple(f"__p{i}" for i in range(width)), rows)
    ct = ct.fused_select(equal_pairs=node.equal_positions)
    return ct.project_positions(node.keep_positions, node.columns)


def _as_row_table(value) -> Table:
    return value.to_table() if isinstance(value, ColumnTable) else value


def _as_columnar(value) -> ColumnTable:
    return value if isinstance(value, ColumnTable) else ColumnTable.from_table(value)


def _worth_caching(node: PlanFragment) -> bool:
    """Is a fragment's table worth offering to the cross-call cache?

    Joins always are.  Unrestricted scans are not: their "table" is a bare
    copy of rows the base index already serves in O(1), so materialising
    them only burns budget.  Selective scans (constants or repeated-
    variable equalities) do real filtering work and qualify.
    """
    if isinstance(node, JoinFragment):
        return True
    return bool(node.equal_positions) or any(
        value is not WILDCARD for value in node.pattern
    )


def _join_fragment_tables(node: JoinFragment, left, right):
    """Rename/join/project two child tables under a join fragment.

    ``left``/``right`` are either both :class:`Table` or both
    :class:`ColumnTable` — the operator surface is identical, so one
    helper serves the row path, the columnar path, and the process-pool
    workers."""
    if node.left_rename:
        left = left.rename(dict(node.left_rename))
    joined = left.natural_join(right.rename(dict(node.right_rename)))
    return joined.project(node.columns)


def _fragment_table(
    plan: UnionPlan,
    key: str,
    source,
    memo: _OnceMap,
    cache: Optional[FragmentCache] = None,
    columnar: bool = False,
    feedback: Optional[QErrorLog] = None,
):
    """The table of fragment ``key``: a :class:`ColumnTable` in columnar
    mode, a row :class:`Table` otherwise.

    Memo and cross-call cache entries store whichever representation the
    computing call ran in; readers coerce on the way out, so a cache
    shared between modes stays correct (at a one-off conversion cost).

    ``feedback`` (optional) receives one ``(estimated, actual)``
    observation per fragment *freshly computed* here — memo and
    cross-call cache hits are reuses of an already-measured evaluation,
    not new evidence, so they do not record."""
    node = plan.nodes[key]

    def build():
        span = current_span().child(
            "fragment.eval",
            key=key[:80],
            kind="scan" if isinstance(node, ScanFragment) else "join",
        )
        with span:
            if isinstance(node, ScanFragment):
                if columnar:
                    value = _scan_columnar(node, source)
                else:
                    value = _scan_table(node, source)
            else:
                left = _fragment_table(
                    plan, node.left_key, source, memo, cache, columnar, feedback
                )
                right = _fragment_table(
                    plan, node.right_key, source, memo, cache, columnar, feedback
                )
                value = _join_fragment_tables(node, left, right)
            if span.recording:
                span.set("rows", result_row_count(value))
        if feedback is not None:
            relations = plan.fragment_relations(key)
            columns: Tuple[Tuple[str, int], ...] = ()
            if isinstance(node, ScanFragment):
                columns = tuple(
                    (node.relation, position)
                    for position, constant in enumerate(node.pattern)
                    if constant is not WILDCARD
                )
            feedback.record(
                key,
                relations,
                data_version_token(source, relations),
                plan.estimates.get(key),
                result_row_count(value),
                columns,
            )
        return value

    def compute():
        if cache is not None and _worth_caching(node):
            relations = plan.fragment_relations(key)
            token = data_version_token(source, relations)
            if token is not None:
                return cache.get_or_compute(key, token, relations, build)
        return build()

    value = memo.get_or_compute(key, compute)
    return _as_columnar(value) if columnar else _as_row_table(value)


_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _columnar_root_answers(
    ct: ColumnTable, rewriting_plan: RewritingPlan
) -> Set[Row]:
    """Comparisons + head projection of one rewriting root, in batch."""
    mask = None
    for left, op, right in rewriting_plan.comparisons:
        (lkind, lpayload), (rkind, rpayload) = left, right
        if lkind == "col" and rkind == "col":
            part = compare_cols_mask(
                ct.column(lpayload), op, ct.column(rpayload), len(ct)
            )
        elif lkind == "col":
            part = compare_mask(ct.column(lpayload), op, rpayload, len(ct))
        elif rkind == "col":
            part = compare_mask(
                ct.column(rpayload), _FLIPPED_OPS.get(op, op), lpayload, len(ct)
            )
        else:
            if compare_values(lpayload, op, rpayload):
                continue
            return set()
        mask = _combine_masks(mask, part)
    if mask is not None:
        ct = ct.select_mask(mask)
    if not rewriting_plan.head:
        return {()} if len(ct) else set()
    out_cols = []
    for kind, payload in rewriting_plan.head:
        if kind == "col":
            out_cols.append(_pylist(ct.column(payload)))
        else:
            out_cols.append([payload] * len(ct))
    return set(zip(*out_cols))


def _row_root_answers(table: Table, rewriting_plan: RewritingPlan) -> Set[Row]:
    index = {column: i for i, column in enumerate(table.columns)}

    def value(row: Row, operand: Operand) -> object:
        kind, payload = operand
        return row[index[payload]] if kind == "col" else payload

    answers: Set[Row] = set()
    for row in table.rows:
        if all(
            compare_values(value(row, left), op, value(row, right))
            for left, op, right in rewriting_plan.comparisons
        ):
            answers.add(tuple(value(row, operand) for operand in rewriting_plan.head))
    return answers


def _evaluate_rewriting_plan(
    plan: UnionPlan,
    rewriting_plan: RewritingPlan,
    source,
    memo: _OnceMap,
    cache: Optional[FragmentCache] = None,
    columnar: Optional[bool] = None,
    feedback: Optional[QErrorLog] = None,
) -> Set[Row]:
    if columnar is None:
        columnar = columnar_enabled()
    table = _fragment_table(
        plan, rewriting_plan.root_key, source, memo, cache, columnar, feedback
    )
    if columnar:
        return _columnar_root_answers(table, rewriting_plan)
    return _row_root_answers(table, rewriting_plan)


def shared_workers_from_env() -> int:
    """Worker count for the shared engine from ``REPRO_SHARED_WORKERS``.

    ``0`` (the default) means sequential in-thread execution; a
    non-integer or negative value raises :class:`EvaluationError` at call
    time (fail fast, like an unknown engine name).  Delegates to the
    consolidated knob module (:func:`repro.config.shared_workers`), which
    gives every ``REPRO_*`` knob the same treatment.
    """
    return _config_shared_workers()


def _collect_subplan(plan: UnionPlan, root_key: str) -> Dict[str, PlanFragment]:
    """The fragment nodes reachable from ``root_key`` (a picklable dict)."""
    nodes: Dict[str, PlanFragment] = {}
    stack = [root_key]
    while stack:
        key = stack.pop()
        if key in nodes:
            continue
        node = plan.nodes[key]
        nodes[key] = node
        if isinstance(node, JoinFragment):
            stack.append(node.left_key)
            stack.append(node.right_key)
    return nodes


def _evaluate_payload(payload) -> Set[Row]:
    """Process-pool worker: joins + comparisons + head for one root.

    ``payload`` carries the root's fragment subgraph, the pre-evaluated
    scan tables (the parent evaluates scans against the live source, which
    never crosses the process boundary), the rewriting root, and the
    representation flag.  Runs in a worker process — everything it touches
    must stay picklable, which :class:`ColumnTable` (``__reduce__``) and
    the frozen fragment dataclasses are.
    """
    nodes, rewriting_plan, scans, columnar = payload
    memo: Dict[str, object] = dict(scans)

    def table_of(key: str):
        value = memo.get(key)
        if value is None:
            node = nodes[key]
            value = memo[key] = _join_fragment_tables(
                node, table_of(node.left_key), table_of(node.right_key)
            )
        return value

    root = table_of(rewriting_plan.root_key)
    if columnar:
        return _columnar_root_answers(_as_columnar(root), rewriting_plan)
    return _row_root_answers(_as_row_table(root), rewriting_plan)


def stream_plan_answers(
    plan: UnionPlan,
    data: FactsLike,
    max_workers: Optional[int] = None,
    cache: Optional[FragmentCache] = None,
    columnar: Optional[bool] = None,
    executor: Optional[str] = None,
    feedback: Optional[QErrorLog] = None,
) -> Iterator[Row]:
    """Yield distinct answer rows of the union plan as fragments evaluate.

    Sequentially (``max_workers`` 0/None/1), rewriting roots are evaluated
    in enumeration order and shared fragments are served from the per-call
    memo.  With ``max_workers`` > 1, up to that many rewriting roots are
    evaluated concurrently (a bounded window keeps the first-k contract:
    abandoning the iterator cancels unstarted work).  Answers are
    identical either way — only completion order differs, and the dedup
    set makes the yielded row set equal.

    ``columnar`` selects the fragment representation (``None`` follows
    ``REPRO_COLUMNAR``): column-wise batches run the
    :mod:`repro.database.columnar` kernels, whose NumPy ops release the
    GIL — the thread-pooled path then scales on multicore.  ``executor``
    (``"thread"``/``"process"``; ``None`` follows ``REPRO_SHARED_EXECUTOR``)
    picks the worker pool: with ``"process"``, the parent evaluates each
    root's *scans* (they need the live source) and ships the join tree to
    worker processes, so even the pure-Python kernel fallback scales with
    cores — at the price of per-task serialisation and no cross-root join
    sharing (join fragments are rebuilt per task; scans still share the
    parent-side memo and cache).

    ``cache`` (optional) is a cross-call
    :class:`~repro.pdms.materialization.FragmentCache`: fragment tables
    are then served from (and offered to) it under their data-version
    tokens, on top of the per-call memo.  Sources without per-relation
    data versions bypass the cache automatically.

    ``feedback`` (optional) is a :class:`~repro.database.feedback.QErrorLog`
    measuring every freshly computed fragment.  On the sequential path a
    *blown* estimate (actual ≫ estimated, per the log's ``blowup_factor``)
    additionally triggers mid-union re-optimization: the remaining
    rewritings are recompiled against the just-learned corrections
    (bounded to two re-plans per call; shared fragments already computed
    are served from the per-call memo, so no work is repeated).
    """
    source = ensure_indexed(as_fact_source(data))
    memo = _OnceMap()
    seen: Set[Row] = set()
    if columnar is None:
        columnar = columnar_enabled()
    if not max_workers or max_workers <= 1:
        replanning = (
            feedback is not None and feedback.replan and plan._cost is not None
        )
        blown_seen = feedback.blown_events if feedback is not None else 0
        replans_left = 2
        fragment_iter = plan.fragments()
        consumed = 0
        while True:
            try:
                rewriting_plan = next(fragment_iter)
            except StopIteration:
                return
            consumed += 1
            for row in _evaluate_rewriting_plan(
                plan, rewriting_plan, source, memo, cache, columnar, feedback
            ):
                if row not in seen:
                    seen.add(row)
                    yield row
            if (
                replanning
                and replans_left > 0
                and feedback.blown_events > blown_seen
            ):
                # An estimate just blew up: the corrections recorded for it
                # may reorder the joins of everything not yet evaluated.
                blown_seen = feedback.blown_events
                replans_left -= 1
                feedback.stats.replans += 1
                plan = UnionPlan(
                    plan.result, plan._cost, bushy=plan.bushy, feedback=feedback
                )
                fragment_iter = islice(plan.fragments(), consumed, None)

    if executor is None:
        executor = shared_executor()
    if executor == "process":
        from concurrent.futures import ProcessPoolExecutor

        def submit_process(pool, rewriting_plan):
            nodes = _collect_subplan(plan, rewriting_plan.root_key)
            # Only the parent-side scans are measured: join fragments run
            # in worker processes where the feedback log cannot reach.
            scans = {
                key: _fragment_table(
                    plan, key, source, memo, cache, columnar, feedback
                )
                for key, node in nodes.items()
                if isinstance(node, ScanFragment)
            }
            return pool.submit(
                _evaluate_payload, (nodes, rewriting_plan, scans, columnar)
            )

        pool = ProcessPoolExecutor(max_workers=max_workers)
        submit = submit_process
    else:
        from concurrent.futures import ThreadPoolExecutor

        def submit_thread(pool, rewriting_plan):
            return pool.submit(
                _evaluate_rewriting_plan,
                plan,
                rewriting_plan,
                source,
                memo,
                cache,
                columnar,
                feedback,
            )

        pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-shared"
        )
        submit = submit_thread
    try:
        window: deque = deque()
        fragment_iter = plan.fragments()
        pending_limit = 2 * max_workers
        exhausted = False
        while True:
            while not exhausted and len(window) < pending_limit:
                try:
                    rewriting_plan = next(fragment_iter)
                except StopIteration:
                    exhausted = True
                    break
                window.append(submit(pool, rewriting_plan))
            if not window:
                return
            for row in window.popleft().result():
                if row not in seen:
                    seen.add(row)
                    yield row
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def evaluate_plan(
    plan: UnionPlan,
    data: FactsLike,
    limit: Optional[int] = None,
    max_workers: Optional[int] = None,
    cache: Optional[FragmentCache] = None,
    columnar: Optional[bool] = None,
    executor: Optional[str] = None,
    feedback: Optional[QErrorLog] = None,
) -> Set[Row]:
    """Evaluate the whole union plan (or the first ``limit`` answers)."""
    if limit is not None and limit < 0:
        raise EvaluationError(f"limit must be non-negative, got {limit}")
    answers: Set[Row] = set()
    if limit == 0:
        return answers
    for row in stream_plan_answers(
        plan,
        data,
        max_workers=max_workers,
        cache=cache,
        columnar=columnar,
        executor=executor,
        feedback=feedback,
    ):
        answers.add(row)
        if limit is not None and len(answers) >= limit:
            break
    return answers
