"""Certain-answer semantics for PPL: consistency checking and a chase oracle.

Two pieces live here:

* :func:`is_consistent` implements Definition 2.1 literally: given a data
  instance assigning tuples to *every* relation (peer and stored), check
  that each storage description and peer mapping holds.

* :func:`certain_answers` is a ground-truth oracle used to validate the
  reformulation algorithm on small inputs.  It builds a canonical instance
  by chasing the storage descriptions and peer mappings with labelled
  nulls (Skolem values), evaluates the query over it, and keeps the
  null-free answers.  For the tractable PPL fragment of Theorem 3.2 — the
  fragment on which the paper's algorithm is complete — this yields
  exactly the certain answers of Definition 2.2; for cyclic mappings with
  existential variables the chase may be cut off by ``max_rounds`` and the
  result is then a sound under-approximation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..database.instance import Instance
from ..datalog.atoms import Atom
from ..datalog.evaluation import FactsLike, as_fact_source, evaluate_query
from ..datalog.queries import ConjunctiveQuery
from ..datalog.terms import Constant, Variable, is_variable
from ..errors import EvaluationError
from ..integration.inverse_rules import SkolemValue, contains_skolem
from .mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
)
from .system import PDMS

Row = Tuple[object, ...]


# ---------------------------------------------------------------------------
# Definition 2.1: consistency of a data instance
# ---------------------------------------------------------------------------

def is_consistent(pdms: PDMS, instance: FactsLike) -> bool:
    """Check Definition 2.1: is ``instance`` consistent with the PDMS?

    ``instance`` must assign tuples to both stored and peer relations
    (peer relations it does not mention are treated as empty).
    """
    source = as_fact_source(instance)

    def rows(query: ConjunctiveQuery) -> Set[Row]:
        return evaluate_query(query, source)

    for description in pdms.storage_descriptions():
        stored_rows = set(map(tuple, source.get_tuples(description.relation)))
        query_rows = rows(description.query)
        if description.exact:
            if stored_rows != query_rows:
                return False
        else:
            if not stored_rows <= query_rows:
                return False

    definitional_by_head: Dict[str, List[DefinitionalMapping]] = {}
    for mapping in pdms.peer_mappings():
        if isinstance(mapping, InclusionMapping):
            if not rows(mapping.left) <= rows(mapping.right):
                return False
        elif isinstance(mapping, EqualityMapping):
            if rows(mapping.left) != rows(mapping.right):
                return False
        elif isinstance(mapping, DefinitionalMapping):
            definitional_by_head.setdefault(mapping.head_predicate, []).append(mapping)

    for head_predicate, mappings in definitional_by_head.items():
        derived: Set[Row] = set()
        for mapping in mappings:
            derived |= rows(
                ConjunctiveQuery(mapping.rule.head, mapping.rule.body)
            )
        actual = set(map(tuple, source.get_tuples(head_predicate)))
        if actual != derived:
            return False
    return True


# ---------------------------------------------------------------------------
# Chase-based certain-answer oracle
# ---------------------------------------------------------------------------

def _instantiate(
    atom: Atom, binding: Mapping[Variable, object]
) -> Optional[Tuple[str, Row]]:
    """Ground an atom under a binding; returns ``None`` on a constant clash."""
    values: List[object] = []
    for arg in atom.args:
        if is_variable(arg):
            values.append(binding[arg])  # type: ignore[index]
        else:
            assert isinstance(arg, Constant)
            values.append(arg.value)
    return atom.predicate, tuple(values)


def _chase_step_from_view(
    target_query: ConjunctiveQuery,
    head_row: Row,
    skolem_prefix: str,
    instance: Instance,
) -> bool:
    """Add ``target_query``'s body facts for one head row; returns True if new facts appeared."""
    binding: Dict[Variable, object] = {}
    for arg, value in zip(target_query.head.args, head_row):
        if is_variable(arg):
            existing = binding.get(arg)  # type: ignore[arg-type]
            if existing is not None and existing != value:
                return False
            binding[arg] = value  # type: ignore[index]
        else:
            assert isinstance(arg, Constant)
            if arg.value != value:
                return False
    for existential in sorted(target_query.existential_variables()):
        binding[existential] = SkolemValue(
            f"{skolem_prefix}_{existential.name}", head_row
        )
    added = False
    for atom in target_query.relational_body():
        grounded = _instantiate(atom, binding)
        if grounded is None:
            continue
        predicate, row = grounded
        if row not in set(instance.get_tuples(predicate)):
            instance.add(predicate, row)
            added = True
    return added


def build_canonical_instance(
    pdms: PDMS, stored_data: FactsLike, max_rounds: int = 64
) -> Instance:
    """Chase the PDMS descriptions over the stored data.

    Returns an instance over stored *and* peer relations whose unknown
    values are labelled nulls.  The chase fires every storage description
    once per stored tuple and every inclusion/equality/definitional
    mapping to fixpoint (bounded by ``max_rounds``).
    """
    source = as_fact_source(stored_data)
    canonical = Instance()

    # Copy the stored data itself.
    for relation in pdms.stored_relation_names():
        for row in source.get_tuples(relation):
            canonical.add(relation, row)

    # Storage descriptions: D(R) ⊆ Q(I) — every stored tuple implies the
    # existence of matching peer-relation facts.
    for description in pdms.storage_descriptions():
        for row in source.get_tuples(description.relation):
            _chase_step_from_view(
                description.query, tuple(row), f"sk_{description.name}", canonical
            )

    # Peer mappings, to fixpoint.
    inclusion_like: List[Tuple[str, ConjunctiveQuery, ConjunctiveQuery]] = []
    definitional: List[DefinitionalMapping] = []
    for mapping in pdms.peer_mappings():
        if isinstance(mapping, InclusionMapping):
            inclusion_like.append((mapping.name, mapping.left, mapping.right))
        elif isinstance(mapping, EqualityMapping):
            forward, backward = mapping.as_inclusions()
            inclusion_like.append((forward.name, forward.left, forward.right))
            inclusion_like.append((backward.name, backward.left, backward.right))
        elif isinstance(mapping, DefinitionalMapping):
            definitional.append(mapping)

    fired: Dict[str, Set[Row]] = {name: set() for name, _, _ in inclusion_like}

    for _ in range(max_rounds):
        changed = False

        # Definitional mappings: body(I) ⊆ head(I).
        for mapping in definitional:
            head_atom = mapping.rule.head
            derived = evaluate_query(
                ConjunctiveQuery(head_atom, mapping.rule.body), canonical
            )
            existing = set(canonical.get_tuples(head_atom.predicate))
            for row in derived - existing:
                canonical.add(head_atom.predicate, row)
                changed = True

        # Inclusion mappings: Q1(I) ⊆ Q2(I) — fire a TGD-style chase step
        # once per (mapping, head-row) pair.
        for name, left, right in inclusion_like:
            left_rows = evaluate_query(left, canonical)
            for row in left_rows:
                if row in fired[name]:
                    continue
                fired[name].add(row)
                if _chase_step_from_view(right, row, f"sk_{name}", canonical):
                    changed = True

        if not changed:
            break
    return canonical


def certain_answers(
    pdms: PDMS,
    query: ConjunctiveQuery,
    stored_data: FactsLike,
    max_rounds: int = 64,
) -> Set[Row]:
    """Certain answers of ``query`` (Definition 2.2) via the canonical chase.

    Exact for the tractable fragment (acyclic inclusions, projection-free
    equalities, definitional mappings, comparisons only in storage
    descriptions / definitional bodies); a sound under-approximation
    otherwise (the chase is cut off after ``max_rounds`` rounds).
    """
    canonical = build_canonical_instance(pdms, stored_data, max_rounds=max_rounds)
    answers = evaluate_query(query, canonical)
    return {row for row in answers if not contains_skolem(row)}
