"""Cross-call fragment materialization with data-version invalidation.

The shared union plan (:mod:`repro.pdms.planning`) computes every hash-
consed sub-conjunction fragment once *per execution* and throws the table
away when the call returns.  Repeated query traffic over slowly changing
peer data therefore re-executes the same joins on every call.  This module
adds the missing cache level:

* a :class:`FragmentCache` holds fragment tables **across calls**, keyed
  by ``(canonical fragment key, data-version token)`` — the token is the
  sorted vector of per-relation data versions under the fragment (see
  :meth:`repro.database.instance.Instance.data_version` and the federated
  :meth:`repro.pdms.execution.PeerFactSource.data_version`), so a write to
  one predicate silently invalidates exactly the fragments that read it
  while every other entry stays warm, and peer join/leave churns the token
  through the owner set;
* an :class:`AdmissionPolicy` decides which computed fragments are worth
  keeping (cost/benefit: measured compute time vs estimated footprint),
  and a byte-budgeted LRU bounds total memory;
* :class:`FragmentCacheStats` counts hits/misses/admissions/rejections/
  evictions/invalidations for the service layer's reporting.

The cache stores whatever result object the caller hands it (fragment
:class:`~repro.database.algebra.Table` objects from the shared engine,
frozen row sets from the per-rewriting engines) — all of them immutable,
so entries can be shared freely across calls and threads.

Correctness does not depend on explicit invalidation: a stale entry can
never be *returned* (its token no longer matches), only linger until the
next request for its key replaces it or the LRU evicts it.  Explicit
invalidation (:meth:`FragmentCache.invalidate_relations`, wired to the
service layer's provenance signals) is memory hygiene, not correctness.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..database.algebra import Table
from ..database.columnar import ColumnTable
from ..database.statistics import source_data_version
from ..errors import EvaluationError
from ..obs.metrics import METRICS_SCHEMA_VERSION
from ..obs.trace import current_span

#: Default byte budget for a service-level fragment cache (64 MiB).
DEFAULT_FRAGMENT_CACHE_BYTES = 64 * 1024 * 1024

#: Most distinct keys whose miss counts are remembered for admission
#: decisions; oldest-touched keys are forgotten beyond it.
_MISS_TRACKING_LIMIT = 4096


# ---------------------------------------------------------------------------
# Environment handling (fail fast on malformed values)
# ---------------------------------------------------------------------------

# Re-exported from the consolidated knob module (every subsystem used to
# carry its own drifting copy of this parser); existing importers of
# ``repro.pdms.materialization.int_from_env`` keep working.
from ..config import int_from_env  # noqa: E402  (re-export)


def fragment_cache_from_env() -> Optional["FragmentCache"]:
    """A fragment cache sized by ``REPRO_FRAGMENT_CACHE_BYTES``.

    Unset uses :data:`DEFAULT_FRAGMENT_CACHE_BYTES`; ``0`` disables
    cross-call fragment caching entirely (returns ``None``); malformed
    values raise :class:`EvaluationError` (see
    :func:`repro.config.int_from_env`).
    """
    budget = int_from_env(
        "REPRO_FRAGMENT_CACHE_BYTES", DEFAULT_FRAGMENT_CACHE_BYTES
    )
    return FragmentCache(max_bytes=budget) if budget > 0 else None


# ---------------------------------------------------------------------------
# Version tokens and size estimates
# ---------------------------------------------------------------------------

def data_version_token(
    source: object, relations: Iterable[str]
) -> Optional[Tuple[Tuple[str, object], ...]]:
    """The combined data-version token of ``relations`` in ``source``.

    ``None`` when the source exposes no per-relation versions (plain
    mappings, one-off snapshots) — the caller must then bypass the cache,
    because staleness would be undetectable.  The per-relation probe is
    :func:`repro.database.statistics.source_data_version`, the one
    protocol check shared with the statistics layer.
    """
    tokens = []
    for relation in sorted(relations):
        token = source_data_version(source, relation)
        if token is None:
            return None
        tokens.append((relation, token))
    return tuple(tokens)


def result_row_count(value: object) -> int:
    """The row count of a fragment result, whatever shape it took.

    Fragment evaluation produces :class:`Table` objects on the row path,
    :class:`~repro.database.columnar.ColumnTable` batches on the
    vectorized path, and frozen row sets from the per-rewriting engines —
    all sized, but ``Table`` keeps its rows one attribute down.
    """
    if isinstance(value, Table):
        return len(value.rows)
    return len(value)  # type: ignore[arg-type]


def estimate_result_bytes(value: object) -> int:
    """A deterministic O(1) footprint estimate of a cached result.

    Accepts a :class:`Table`, a
    :class:`~repro.database.columnar.ColumnTable` (which knows its own
    column-storage footprint), or any sized collection of equal-width row
    tuples.  Charges the tuple skeleton plus one pointer per cell; cell
    payloads are shared with the base data, so they are deliberately not
    charged twice.
    """
    if isinstance(value, ColumnTable):
        return value.estimated_bytes()
    rows = value.rows if isinstance(value, Table) else value
    count = len(rows)  # type: ignore[arg-type]
    width = len(next(iter(rows))) if count else 0  # type: ignore[arg-type]
    return 128 + count * (56 + 16 * width)


# ---------------------------------------------------------------------------
# Statistics and admission
# ---------------------------------------------------------------------------

@dataclass
class FragmentCacheStats:
    """Counters describing how the fragment cache behaved so far."""

    hits: int = 0
    misses: int = 0
    #: Computed results the admission policy decided to keep.
    admissions: int = 0
    #: Computed results the admission policy declined.
    rejections: int = 0
    #: Entries dropped to stay within the byte budget (LRU order).
    evictions: int = 0
    #: Entries dropped because their data version moved or an explicit
    #: invalidation (peer leave, mapping change, clear) named them.
    invalidations: int = 0
    #: Local misses served from the shared cache tier (see
    #: :mod:`repro.pdms.distributed.cache_tier`); all tier counters stay
    #: zero when no tier is attached.
    tier_hits: int = 0
    #: Tier consultations that found no matching (key, token) entry.
    tier_misses: int = 0
    #: Computed fragments offered to (and accepted by) the tier.
    tier_puts: int = 0
    #: Tier operations lost to a transport fault (or a tripped breaker):
    #: each one degraded to a local compute, never to a wrong answer.
    tier_degraded: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """A flat snapshot of every counter (status endpoints, examples)."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "admissions": self.admissions,
            "rejections": self.rejections,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "tier_hits": self.tier_hits,
            "tier_misses": self.tier_misses,
            "tier_puts": self.tier_puts,
            "tier_degraded": self.tier_degraded,
        }


@dataclass(frozen=True)
class AdmissionPolicy:
    """Cost/benefit gate deciding which computed fragments to keep.

    A fragment is admitted when it is *worth its memory*: it must fit
    (``max_entry_fraction`` of the budget), it must have cost enough to
    compute (``min_benefit_seconds`` of measured wall clock — the benefit
    a future hit buys back), and it must have been requested often enough
    (``min_misses``; 2 admits only on the second miss, i.e. proven repeat
    traffic).  The defaults admit everything that fits: with a byte-
    budgeted LRU behind it, optimistic admission loses only to workloads
    that stream many large one-shot fragments — exactly what raising
    ``min_misses`` to 2 is for.
    """

    min_benefit_seconds: float = 0.0
    max_entry_fraction: float = 0.5
    min_misses: int = 1

    def admit(
        self,
        key: str,
        byte_size: int,
        compute_seconds: float,
        misses: int,
        budget_bytes: int,
    ) -> bool:
        """Should a result just computed for ``key`` be materialised?"""
        if byte_size > self.max_entry_fraction * budget_bytes:
            return False
        if compute_seconds < self.min_benefit_seconds:
            return False
        return misses >= self.min_misses


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

class _Entry:
    __slots__ = ("key", "token", "relations", "value", "nbytes")

    def __init__(self, key, token, relations, value, nbytes):
        self.key = key
        self.token = token
        self.relations = relations
        self.value = value
        self.nbytes = nbytes


class FragmentCache:
    """Cross-call fragment tables keyed by ``(fragment key, data version)``.

    One entry per fragment key: a lookup whose token no longer matches
    drops the stale entry and recomputes, so versions churn in place
    instead of accumulating.  All operations are thread-safe; ``compute``
    callbacks run outside the lock (two racing misses on one key may both
    compute — both results are identical, the second insert wins — which
    keeps fragment evaluation deadlock-free under the per-call memo).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_FRAGMENT_CACHE_BYTES,
        policy: Optional[AdmissionPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
        tier: Optional[object] = None,
    ):
        if max_bytes < 1:
            raise EvaluationError("FragmentCache max_bytes must be at least 1")
        self._max_bytes = max_bytes
        self._policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._current_bytes = 0
        self._miss_counts: Dict[str, int] = {}
        self._tier = tier
        self.stats = FragmentCacheStats()

    # -- introspection -----------------------------------------------------

    @property
    def max_bytes(self) -> int:
        """The byte budget entries are evicted to stay within."""
        return self._max_bytes

    @property
    def current_bytes(self) -> int:
        """Estimated bytes currently held."""
        return self._current_bytes

    @property
    def policy(self) -> AdmissionPolicy:
        """The admission policy in force."""
        return self._policy

    @property
    def tier(self) -> Optional[object]:
        """The shared cache tier consulted between the LRU and a compute
        (``None`` when this cache is purely local).  See
        :class:`repro.pdms.distributed.cache_tier.CacheTierClient` for the
        get/put/invalidate surface a tier must provide.
        """
        return self._tier

    def attach_tier(self, tier: Optional[object]) -> None:
        """Attach (or detach, with ``None``) the shared cache tier."""
        self._tier = tier

    def __len__(self) -> int:
        return len(self._entries)

    def cached_keys(self) -> Tuple[str, ...]:
        """Fragment keys currently cached (LRU order, oldest first)."""
        with self._lock:
            return tuple(self._entries)

    # -- the lookup --------------------------------------------------------

    def _admit(
        self,
        key: str,
        token: object,
        relations: Iterable[str],
        value: object,
        elapsed: float,
        misses: int,
    ) -> bool:
        """Offer a freshly obtained result to the local LRU (policy gated)."""
        nbytes = estimate_result_bytes(value)
        with self._lock:
            if self._policy.admit(key, nbytes, elapsed, misses, self._max_bytes):
                if key in self._entries:
                    self._remove_locked(key)
                self._entries[key] = _Entry(
                    key, token, frozenset(relations), value, nbytes
                )
                self._current_bytes += nbytes
                self.stats.admissions += 1
                self._miss_counts.pop(key, None)
                while self._current_bytes > self._max_bytes and self._entries:
                    evicted, _ = next(iter(self._entries.items()))
                    self._remove_locked(evicted)
                    self.stats.evictions += 1
                return True
            self.stats.rejections += 1
            return False

    def _tier_get(
        self, key: str, token: object, relations: Iterable[str], misses: int
    ):
        """Consult the shared tier; ``(True, value)`` on an accepted hit.

        A tier hit is admitted into the local LRU (charged at its fetch
        cost) so repeats stay local; a transport fault counts as
        ``tier_degraded`` and behaves exactly like a miss — the caller
        computes locally.  Runs outside the lock: tier RPCs must never
        stall concurrent local hits.
        """
        tier = self._tier
        if tier is None or token is None:
            return False, None
        started = self._clock()
        status, value = tier.get(key, token)
        elapsed = self._clock() - started
        with self._lock:
            if status == "hit":
                self.stats.tier_hits += 1
            elif status == "miss":
                self.stats.tier_misses += 1
            else:
                self.stats.tier_degraded += 1
        if status != "hit":
            return False, None
        self._admit(key, token, relations, value, elapsed, misses)
        return True, value

    def get_or_compute(
        self,
        key: str,
        token: object,
        relations: Iterable[str],
        compute: Callable[[], object],
    ):
        """The cached result for ``key`` at ``token``, computing on miss.

        ``relations`` names the base relations the result reads (for
        explicit invalidation); ``token`` is the caller's data-version
        token for exactly those relations (see :func:`data_version_token`).
        On a local miss the shared tier (when attached) is consulted
        before computing; a freshly computed result that the local policy
        admitted is offered back to the tier, so the *next* process asking
        for this fragment at this version skips the compute too.
        """
        with current_span().child(
            "fragment.cache", key=key[:80], tier=self._tier is not None
        ) as span:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    if entry.token == token:
                        self.stats.hits += 1
                        self._entries.move_to_end(key)
                        span.set("outcome", "hit")
                        return entry.value
                    # The data moved underneath: drop the stale version now so
                    # it stops occupying budget while we recompute.
                    self._remove_locked(key)
                    self.stats.invalidations += 1
                self.stats.misses += 1
                misses = self._miss_counts.get(key, 0) + 1
                self._miss_counts.pop(key, None)  # re-insert as most recent
                self._miss_counts[key] = misses
                # Miss tracking only informs admission (min_misses); bound it
                # so keys whose results are never admitted — one-shot traffic
                # under a picky policy — cannot accumulate forever.
                while len(self._miss_counts) > _MISS_TRACKING_LIMIT:
                    self._miss_counts.pop(next(iter(self._miss_counts)))
            tier_hit, tier_value = self._tier_get(key, token, relations, misses)
            if tier_hit:
                span.set("outcome", "tier_hit")
                return tier_value
            span.set("outcome", "miss")
            started = self._clock()
            value = compute()
            elapsed = self._clock() - started
            admitted = self._admit(key, token, relations, value, elapsed, misses)
            if span.recording:
                span.set("admitted", admitted)
            tier = self._tier
            if admitted and tier is not None and token is not None:
                # Only locally admitted results are offered on: the admission
                # policy already judged them worth memory, and the tier's own
                # LRU bounds what it keeps.
                if tier.put(key, token, relations, value):
                    with self._lock:
                        self.stats.tier_puts += 1
                else:
                    with self._lock:
                        self.stats.tier_degraded += 1
            return value

    def peek(self, key: str, token: object, relations: Iterable[str]) -> bool:
        """Would :meth:`get_or_compute` for ``key`` avoid computing?

        Checks the local LRU (without touching the hit/miss counters —
        this is a planning probe, not a lookup) and then the shared tier;
        a tier hit is promoted into the local LRU on the way, so a
        subsequent :meth:`get_or_compute` is a local hit.  The distributed
        engine uses this to skip a rewriting's scatter-gather round
        entirely when its root fragment is already warm somewhere.
        """
        with current_span().child(
            "fragment.cache", key=key[:80], probe=True
        ) as span:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and entry.token == token:
                    span.set("outcome", "hit")
                    return True
            tier_hit, _ = self._tier_get(key, token, relations, misses=1)
            span.set("outcome", "tier_hit" if tier_hit else "miss")
            return tier_hit

    # -- invalidation ------------------------------------------------------

    def _remove_locked(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._current_bytes -= entry.nbytes

    def invalidate_relations(self, relations: Iterable[str]) -> int:
        """Drop every entry reading any of ``relations``; returns the count.

        The version-token check already guarantees stale entries are never
        *served*; this reclaims their memory eagerly when the caller knows
        a whole relation went away (peer leave) or a catalogue change made
        a family of fragments unreachable.  The shared tier (when attached)
        is told too, so every process's next lookup misses remotely exactly
        as it would locally; a tier fault only costs the eager reclaim.
        """
        doomed = frozenset(relations)
        if not doomed:
            return 0
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.relations & doomed
            ]
            for key in stale:
                self._remove_locked(key)
            self.stats.invalidations += len(stale)
            count = len(stale)
        tier = self._tier
        if tier is not None and not tier.invalidate_relations(doomed):
            with self._lock:
                self.stats.tier_degraded += 1
        return count

    def clear(self) -> int:
        """Drop every entry (counters are preserved); returns the count.

        Local only by design: ``clear`` is a this-process reset (tests,
        memory pressure), not a statement that data changed, so the shared
        tier keeps its entries for everyone else.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._miss_counts.clear()
            self._current_bytes = 0
            self.stats.invalidations += dropped
            return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentCache({len(self._entries)} entries, "
            f"{self._current_bytes}/{self._max_bytes} bytes, "
            f"{self.stats.hits}h/{self.stats.misses}m)"
        )
