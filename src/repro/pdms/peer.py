"""Peers, peer schemas, and stored relations.

Section 2 of the paper: each peer defines a relational *peer schema*
(virtual relations queries are posed over) and may contribute *stored
relations* (actual data, "analogous to data sources in a data integration
system").  Relation names are qualified as ``peer:relation`` so they are
globally unique; stored-relation names must be distinct from peer-relation
names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from ..database.schema import RelationSchema
from ..errors import PDMSConfigurationError


def qualified_name(peer_name: str, relation_name: str) -> str:
    """Return the fully qualified ``peer:relation`` name.

    If ``relation_name`` is already qualified with this peer's name it is
    returned unchanged; qualification with a *different* peer name is an
    error (a peer cannot declare another peer's relations).
    """
    if ":" in relation_name:
        prefix, _, _ = relation_name.partition(":")
        if prefix != peer_name:
            raise PDMSConfigurationError(
                f"relation {relation_name!r} is qualified with peer {prefix!r}, "
                f"not {peer_name!r}"
            )
        return relation_name
    return f"{peer_name}:{relation_name}"


@dataclass(frozen=True)
class StoredRelation:
    """A stored relation contributed by a peer.

    Stored relations hold actual data; every reformulated query refers
    only to stored relations.  Their names are *not* peer-qualified in the
    paper's examples (``doc``, ``sched``, ``S1``); we keep them unqualified
    but remember the owning peer.
    """

    name: str
    peer: str
    schema: RelationSchema

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self.schema.arity

    def __str__(self) -> str:
        return f"{self.name}@{self.peer}({', '.join(self.schema.attributes)})"


class Peer:
    """A peer: a named schema of peer relations plus optional stored relations.

    Parameters
    ----------
    name:
        Peer name (``H``, ``9DC``, ``FS``, ...).  Used as the qualification
        prefix of its peer relations.
    """

    def __init__(self, name: str):
        if not name or ":" in name:
            raise PDMSConfigurationError(f"invalid peer name {name!r}")
        self.name = name
        self._peer_relations: Dict[str, RelationSchema] = {}
        self._stored_relations: Dict[str, StoredRelation] = {}

    # -- peer relations ----------------------------------------------------------

    def add_relation(self, name: str, attributes: Sequence[str]) -> RelationSchema:
        """Declare a peer relation; returns its schema (with qualified name)."""
        full_name = qualified_name(self.name, name)
        if full_name in self._peer_relations:
            raise PDMSConfigurationError(
                f"peer {self.name} already declares relation {full_name}"
            )
        schema = RelationSchema(full_name, attributes)
        self._peer_relations[full_name] = schema
        return schema

    def relation(self, name: str) -> RelationSchema:
        """Look up a peer relation by (qualified or unqualified) name."""
        full_name = qualified_name(self.name, name)
        try:
            return self._peer_relations[full_name]
        except KeyError as exc:
            raise PDMSConfigurationError(
                f"peer {self.name} has no relation {full_name!r}"
            ) from exc

    def peer_relations(self) -> Tuple[RelationSchema, ...]:
        """All declared peer relations."""
        return tuple(self._peer_relations.values())

    def peer_relation_names(self) -> Tuple[str, ...]:
        """Qualified names of all declared peer relations."""
        return tuple(self._peer_relations)

    def has_relation(self, name: str) -> bool:
        """Does this peer declare the given (qualified or unqualified) relation?"""
        try:
            return qualified_name(self.name, name) in self._peer_relations
        except PDMSConfigurationError:
            return False

    # -- stored relations ----------------------------------------------------------

    def add_stored_relation(
        self, name: str, attributes: Sequence[str]
    ) -> StoredRelation:
        """Declare a stored relation contributed by this peer."""
        if name in self._stored_relations:
            raise PDMSConfigurationError(
                f"peer {self.name} already stores relation {name!r}"
            )
        if ":" in name:
            raise PDMSConfigurationError(
                f"stored relation names must not be peer-qualified: {name!r}"
            )
        stored = StoredRelation(name, self.name, RelationSchema(name, attributes))
        self._stored_relations[name] = stored
        return stored

    def remove_stored_relation(self, name: str) -> StoredRelation:
        """Undeclare a stored relation (e.g. when its last description goes)."""
        try:
            return self._stored_relations.pop(name)
        except KeyError as exc:
            raise PDMSConfigurationError(
                f"peer {self.name} stores no relation {name!r}"
            ) from exc

    def stored_relations(self) -> Tuple[StoredRelation, ...]:
        """All stored relations contributed by this peer."""
        return tuple(self._stored_relations.values())

    def stored_relation_names(self) -> Tuple[str, ...]:
        """Names of this peer's stored relations."""
        return tuple(self._stored_relations)

    def __str__(self) -> str:
        return (
            f"peer {self.name}: {len(self._peer_relations)} peer relations, "
            f"{len(self._stored_relations)} stored relations"
        )

    def __repr__(self) -> str:
        return f"Peer({self.name!r})"
